//! # hoce — Higher-Order Counterexamples
//!
//! Umbrella crate re-exporting the pieces of this workspace, which together
//! reproduce *“Relatively Complete Counterexamples for Higher-Order
//! Programs”* (Nguyễn & Van Horn, PLDI 2015):
//!
//! * [`folic`] — the first-order constraint solver used for base-type
//!   reasoning (the role Z3 plays in the paper).
//! * [`spcf`] — Symbolic PCF, the typed core model (§3 of the paper).
//! * [`cpcf`] — Contract PCF, the untyped extension with contracts, structs
//!   and mutable state backing the soft-contract-verification tool (§4–5).
//! * [`randtest`] — a QuickCheck-style random-testing baseline used for the
//!   paper's qualitative comparison (§5.2).
//!
//! See the crate-level documentation of each member for details, and the
//! `examples/` directory for end-to-end walkthroughs (the §2 worked example
//! is `examples/quickstart.rs`).

pub use cpcf;
pub use folic;
pub use randtest;
pub use spcf;
