//! End-to-end integration tests spanning the workspace crates, centred on
//! the paper's worked examples.

use spcf::{analyze, parse, Analysis, AnalysisOptions, Engine, StepOptions};

/// The §2 worked example in the SPCF surface syntax.
fn worked_example() -> spcf::Expr {
    parse::parse(
        "((• (-> (-> (-> int int) int int) int))
          (lambda (g : (-> int int)) (lambda (n : int)
            (div 1 (- 100 (g n))))))",
    )
    .expect("the worked example parses")
}

#[test]
fn spcf_worked_example_produces_validated_higher_order_counterexample() {
    match analyze(&worked_example()) {
        Analysis::Counterexample(cex) => {
            assert!(
                cex.validated,
                "Theorem 1 made operational: the counterexample re-runs"
            );
            // The unknown context is the single opaque value of the program.
            assert_eq!(cex.bindings.len(), 1);
        }
        other => panic!("expected a counterexample, got {other:?}"),
    }
}

#[test]
fn spcf_counterexample_reproduces_blame_when_re_executed() {
    // Soundness, checked explicitly at the integration level: instantiate
    // the program with the counterexample and run it concretely.
    let program = worked_example();
    let Analysis::Counterexample(cex) = analyze(&program) else {
        panic!("expected a counterexample");
    };
    let instantiated = cex.instantiate(&program);
    assert!(instantiated.is_concrete());
    let outcome = spcf::concrete::eval(&instantiated, 200_000);
    assert!(outcome.is_error_with(&cex.blame), "got {outcome:?}");
}

#[test]
fn case_maps_keep_the_path_condition_complete() {
    // f g = 1 / (100 - ((g 0) - (g 0))) never crashes: equal inputs give
    // equal outputs, so the denominator is always 100. With the case-map
    // device the zero-denominator branch is refuted outright and the program
    // verifies; without it (the original SCPCF semantics) the two
    // applications of `g` are unrelated, the spurious branch survives, and
    // its "counterexample" fails validation, leaving only a probable-error
    // report. This is exactly the completeness/precision gap §3.2 motivates.
    let program = parse::parse(
        "((• (-> (-> (-> int int) int) int))
          (lambda (g : (-> int int))
            (div 1 (- 100 (- (g 0) (g 0))))))",
    )
    .expect("parses");

    let with_maps = Engine::with_options(AnalysisOptions::default()).analyze(&program);
    assert_eq!(
        with_maps,
        Analysis::Verified,
        "with case maps the zero branch is refuted"
    );

    let without = Engine::with_options(AnalysisOptions {
        step: StepOptions {
            use_case_maps: false,
        },
        ..AnalysisOptions::default()
    })
    .analyze(&program);
    assert!(
        without.counterexample().is_none() && without != Analysis::Verified,
        "without case maps the spurious path cannot be validated away, got {without:?}"
    );
}

#[test]
fn cpcf_and_spcf_agree_on_the_division_example() {
    // The same bug expressed in both languages is found by both engines.
    let spcf_program =
        parse::parse("((lambda (n : int) (div 1 (- 100 n))) (• int))").expect("parses");
    let spcf_result = analyze(&spcf_program);
    assert!(matches!(spcf_result, Analysis::Counterexample(_)));

    let report = cpcf::analyze_source(
        r#"
        (module div100
          (provide [f (-> integer? integer?)])
          (define (f n) (/ 1 (- 100 n))))
        "#,
    )
    .expect("parses");
    let cex = report.first_counterexample().expect("counterexample");
    assert!(cex.validated);
    assert!(cex.bindings.iter().any(|(_, e)| *e == cpcf::Expr::Int(100)));
}
