//! Corpus-wide differential test for the sharded analysis scheduler: for
//! every program in every corpus group, analyzing with `workers = 1` and
//! `workers = 4` under the pop-to-write-point retraction engine must produce
//! identical per-export verdicts in identical report order, for both the
//! correct and the faulty variant — and every counterexample the analysis
//! reports must carry a concrete, re-run-confirmed validation.
//!
//! The equivalence compares verdict *classifications* (plus blame and
//! validation status), not counterexample bindings: bindings come from a
//! solver model, and which of several equally valid models the search lands
//! on is the one thing scheduling is allowed to influence.

use cpcf::{analyze_module, AnalyzeOptions, ExportAnalysis, ModuleReport};
use scv_bench::corpus::all_programs;
use scv_bench::harness::BenchOptions;

/// The harness's reduced `quick` budget, small enough that walking the whole
/// corpus four times stays fast, with a private (non-shared) cache so the
/// two worker counts start from identical state, and the retraction engine
/// pinned explicitly so the corpus equivalence covers it regardless of what
/// `CPCF_PROVE_MODE` makes the default.
fn quick_options(workers: usize) -> AnalyzeOptions {
    let mut options = BenchOptions::quick()
        .retraction()
        .with_workers(workers)
        .analyze;
    options.shared_cache = None;
    options
}

/// Asserts the invariant the analyzer promises for `validate: true` runs:
/// a `Counterexample` verdict is only ever reported after the concrete
/// re-run confirmed the blame, so `validated` must be set on every row.
fn assert_counterexamples_validated(report: &ModuleReport, program: &str, variant: &str) {
    for (export, analysis) in &report.exports {
        if let ExportAnalysis::Counterexample(cex) = analysis {
            assert!(
                cex.validated,
                "{program} ({variant} variant), export {export}: \
                 unvalidated counterexample reported: {cex:?}"
            );
        }
    }
}

/// The scheduling-independent portion of an export verdict.
fn signature(analysis: &ExportAnalysis) -> String {
    match analysis {
        ExportAnalysis::Verified => "verified".to_string(),
        ExportAnalysis::Counterexample(cex) => format!(
            "counterexample[{}@{:?} validated={}]",
            cex.blame.party, cex.blame.label, cex.validated
        ),
        ExportAnalysis::ProbableError(blame) => {
            format!("probable[{}@{:?}]", blame.party, blame.label)
        }
        ExportAnalysis::Exhausted => "exhausted".to_string(),
    }
}

fn report_signature(report: &ModuleReport) -> Vec<(String, String)> {
    report
        .exports
        .iter()
        .map(|(name, analysis)| (name.clone(), signature(analysis)))
        .collect()
}

fn analyze_with_workers(source: &str, workers: usize) -> ModuleReport {
    let (program, _) = cpcf::parse_program(source).expect("corpus programs parse");
    let module = program
        .modules
        .last()
        .map(|m| m.name.clone())
        .expect("corpus programs have a module");
    analyze_module(&program, &module, &quick_options(workers))
}

#[test]
fn sequential_and_sharded_analyses_agree_corpus_wide() {
    let mut checked = 0usize;
    for program in all_programs() {
        for (variant, source) in [("correct", program.correct), ("faulty", program.faulty)] {
            let sequential = analyze_with_workers(source, 1);
            let sharded = analyze_with_workers(source, 4);
            assert_eq!(
                report_signature(&sequential),
                report_signature(&sharded),
                "{} ({variant} variant): workers=1 and workers=4 disagree",
                program.name,
            );
            assert_counterexamples_validated(&sequential, program.name, variant);
            assert_counterexamples_validated(&sharded, program.name, variant);
            checked += 1;
        }
    }
    assert!(
        checked >= 50,
        "expected to cover the whole corpus, checked only {checked} variants"
    );
}

#[test]
fn sharded_analysis_is_deterministic_across_repeat_runs() {
    // Two sharded runs of the same multi-export program must agree with each
    // other, not just with the sequential run — the work-claiming order may
    // differ, the verdicts must not.
    let source = r#"
        (module multi
          (provide [safe (-> integer? integer?)]
                   [crash (-> integer? integer?)]
                   [cmp (-> number? boolean?)]
                   [guarded (-> integer? integer?)])
          (define (safe x) (+ x 1))
          (define (crash n) (/ 1 (- 100 n)))
          (define (cmp x) (< x 0))
          (define (guarded n) (if (zero? n) 0 (/ 100 n))))
    "#;
    let first = analyze_with_workers(source, 4);
    let second = analyze_with_workers(source, 4);
    assert_eq!(report_signature(&first), report_signature(&second));
    assert_eq!(
        first.exports.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        vec!["safe", "crash", "cmp", "guarded"],
        "report order must follow the module declaration"
    );
}
