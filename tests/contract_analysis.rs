//! Integration tests for the CPCF soft-contract analysis across a range of
//! language features, including the property that every reported
//! counterexample has been validated by concrete re-execution.

use cpcf::{analyze_source, analyze_source_with, AnalyzeOptions, EvalOptions, ExportAnalysis};

fn first_verdict(source: &str) -> ExportAnalysis {
    analyze_source(source)
        .expect("parses")
        .exports
        .into_iter()
        .next()
        .expect("at least one export")
        .1
}

#[test]
fn all_reported_counterexamples_are_validated() {
    let faulty_programs = [
        r#"(module a (provide [f (-> integer? integer?)]) (define (f n) (/ 1 n)))"#,
        r#"(module b (provide [f (-> integer? integer?)]) (define (f n) (/ 1 (- 100 n))))"#,
        r#"(module c (provide [f (-> (listof integer?) integer?)]) (define (f xs) (car xs)))"#,
        r#"(module d (provide [f (-> (-> integer? integer?) integer?)]) (define (f g) (/ 1 (g 5))))"#,
        r#"(module e (provide [f (-> integer? (and/c integer? (lambda (r) (> r 0))))]) (define (f x) x))"#,
    ];
    for source in faulty_programs {
        let report = analyze_source(source).expect("parses");
        let cex = report
            .first_counterexample()
            .unwrap_or_else(|| panic!("no counterexample for {source}"));
        assert!(cex.validated, "unvalidated counterexample for {source}");
    }
}

#[test]
fn correct_programs_are_not_blamed() {
    let correct_programs = [
        r#"(module a (provide [f (-> integer? integer?)]) (define (f n) (+ n 1)))"#,
        r#"(module b (provide [f (-> integer? integer?)]) (define (f n) (if (zero? n) 0 (/ 1 n))))"#,
        r#"(module c (provide [f (-> (and/c (listof integer?) pair?) integer?)]) (define (f xs) (car xs)))"#,
        r#"(module d (provide [f (-> boolean? integer?)]) (define (f b) (if b 1 0)))"#,
    ];
    for source in correct_programs {
        let report = analyze_source(source).expect("parses");
        assert!(
            report.first_counterexample().is_none(),
            "unexpected counterexample for {source}: {report:?}"
        );
    }
}

#[test]
fn higher_order_counterexamples_reconstruct_functions() {
    let report = analyze_source(
        r#"
        (module ho
          (provide [f (-> (-> integer? integer?) integer? integer?)])
          (define (f g n) (/ 1 (- 100 (g n)))))
        "#,
    )
    .expect("parses");
    let cex = report.first_counterexample().expect("counterexample");
    assert!(cex.validated);
    assert!(
        cex.bindings
            .iter()
            .any(|(_, e)| matches!(e, cpcf::Expr::Lam { .. })),
        "the breaking context must contain a function: {:?}",
        cex.bindings
    );
}

#[test]
fn multi_module_programs_blame_the_right_module() {
    // The helper module is correct; the client misuses it.
    let report = analyze_source(
        r#"
        (module helper
          (provide [half (-> integer? integer?)])
          (define (half n) (/ n 2)))
        (module client
          (provide [risky (-> integer? integer?)])
          (define (risky n) (/ 100 n)))
        "#,
    )
    .expect("parses");
    assert_eq!(report.module, "client");
    let cex = report.first_counterexample().expect("counterexample");
    assert_eq!(cex.blame.party, "client");
}

#[test]
fn mutable_state_protocols_are_checked() {
    let report = analyze_source(
        r#"
        (module lockmod
          (provide [run (-> integer? integer?)])
          (define lock (box 0))
          (define (acquire) (begin (assert (zero? (unbox lock))) (set-box! lock 1)))
          (define (release) (begin (assert (= (unbox lock) 1)) (set-box! lock 0)))
          (define (run n) (begin (acquire) (acquire) 0)))
        "#,
    )
    .expect("parses");
    let cex = report
        .first_counterexample()
        .expect("double acquire is caught");
    assert!(cex.validated);
}

#[test]
fn or_contracts_accept_both_branches() {
    let verdict = first_verdict(
        r#"
        (module disj
          (provide [f (-> (or/c integer? string?) integer?)])
          (define (f x) (if (integer? x) (+ x 1) (string-length x))))
        "#,
    );
    assert!(
        matches!(verdict, ExportAnalysis::Verified),
        "got {verdict:?}"
    );
}

#[test]
fn disabling_validation_still_reports_candidates() {
    let options = AnalyzeOptions {
        validate: false,
        ..AnalyzeOptions::default()
    };
    let report = analyze_source_with(
        r#"(module a (provide [f (-> integer? integer?)]) (define (f n) (/ 1 n)))"#,
        &options,
    )
    .expect("parses");
    let cex = report.first_counterexample().expect("counterexample");
    assert!(!cex.validated, "validation was disabled");
}

#[test]
fn tight_budgets_degrade_gracefully() {
    let options = AnalyzeOptions {
        eval: EvalOptions {
            fuel: 50,
            ..EvalOptions::default()
        },
        ..AnalyzeOptions::default()
    };
    let report = analyze_source_with(
        r#"
        (module slow
          (provide [f (-> integer? integer?)])
          (define (loop n) (if (<= n 0) 0 (loop (- n 1))))
          (define (f n) (begin (loop n) (/ 1 n))))
        "#,
        &options,
    )
    .expect("parses");
    // With such a small budget the analysis must not claim verification.
    for (_, verdict) in &report.exports {
        assert!(
            !matches!(verdict, ExportAnalysis::Verified),
            "a 50-step budget cannot verify this module: {verdict:?}"
        );
    }
}
