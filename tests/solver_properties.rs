//! Property-based integration tests, driven by a seeded [`StdRng`] so runs
//! are reproducible without any external property-testing framework.
//!
//! Three families of properties:
//!
//! 1. **Solver soundness** — every model the first-order solver reports
//!    satisfies the asserted formulas, UNSAT answers agree with brute-force
//!    search on bounded instances, and validity answers are never
//!    contradicted by a witness.
//! 2. **Prover-session equivalence** — over randomized symbolic heaps and
//!    query sequences (including branch-cloned sibling heaps and
//!    non-monotone overwrites), the incremental [`cpcf::ProverSession`]
//!    returns exactly the verdicts of the `fresh_per_query` baseline that
//!    re-encodes the heap on every query.
//! 3. **Engine-equivalence fuzzing** — replaying seeded
//!    [`randtest::HeapTrace`]s through the pop-to-write-point retraction
//!    engine, the whole-journal rebase ablation and the
//!    fresh-solver-per-query baseline produces bit-identical verdict
//!    sequences, and retraction performs strictly fewer whole-heap
//!    re-encodings than rebase over the corpus. These prove-layer
//!    differentials pin the **scratch** solver core so all their engines
//!    share one satisfiability oracle — the axis under test is the prove
//!    layer's bookkeeping, not the solver core.
//! 4. **Solver-core refinement fuzzing** — replaying the same traces
//!    through the persistent core (hash-consed atoms, retained clauses,
//!    cone slicing) and the scratch core must *refine* verdicts: whenever
//!    scratch decides (`Proved`/`Refuted`), persistent returns the same
//!    verdict, and persistent decides at least as often. Exact equality is
//!    deliberately not asserted: both cores degrade to `Unknown` only on
//!    budget exhaustion, and the sliced persistent pipeline legitimately
//!    decides queries whose full-instance cube-blocking loop runs out of
//!    iterations — decisive answers can never conflict, because `Sat` is
//!    witness-verified against every live formula and `Unsat` follows from
//!    sound clauses alone (the persistent core falls back to the scratch
//!    engine on any `Unknown` of its own). A companion property checks
//!    that clause retention respects frame pops: a constraint asserted in
//!    a popped frame never influences later verdicts.
//! 5. **Theory-module refinement fuzzing** — replaying traces whose
//!    generator emits native difference-constraint chains and cycles
//!    (`TraceConfig::with_diff_chains`), the engine with the
//!    difference-logic module enabled must refine the LIA-only ablation:
//!    identical verdicts wherever LIA decides, at least as many decisions
//!    overall, and witness-checked models at `Sat`.

use folic::{CmpOp, Formula, Model, SmtResult, Solver, Term, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 64;

fn random_cmp(rng: &mut StdRng) -> CmpOp {
    match rng.gen_range(0..6) {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        _ => CmpOp::Ge,
    }
}

/// A random linear atom `k·xᵢ op c` over three variables with small
/// coefficients and constants.
fn random_atom(rng: &mut StdRng) -> Formula {
    let var = Term::var(Var::new(rng.gen_range(0u32..3)));
    let coeff = rng.gen_range(-3i64..=3);
    let constant = rng.gen_range(-10i64..=10);
    Formula::atom(
        Term::mul(Term::int(coeff), var),
        random_cmp(rng),
        Term::int(constant),
    )
}

fn random_conjunction(rng: &mut StdRng) -> Vec<Formula> {
    let len = rng.gen_range(1usize..6);
    (0..len).map(|_| random_atom(rng)).collect()
}

/// Brute force: is the conjunction satisfiable with all variables in
/// `-15..=15`? (Coefficients and constants are small, so any satisfiable
/// instance in this fragment has a witness in that box.)
fn brute_force_sat(formulas: &[Formula]) -> bool {
    for x0 in -15i64..=15 {
        for x1 in -15i64..=15 {
            for x2 in -15i64..=15 {
                let model: Model = vec![(Var::new(0), x0), (Var::new(1), x1), (Var::new(2), x2)]
                    .into_iter()
                    .collect();
                if formulas
                    .iter()
                    .all(|f| model.eval_formula(f).unwrap_or(false))
                {
                    return true;
                }
            }
        }
    }
    false
}

#[test]
fn models_satisfy_their_formulas() {
    let mut rng = StdRng::seed_from_u64(0xF011C);
    for _ in 0..CASES {
        let formulas = random_conjunction(&mut rng);
        let mut solver = Solver::new();
        for f in &formulas {
            solver.assert(f.clone());
        }
        if let SmtResult::Sat(model) = solver.check() {
            assert!(
                model.satisfies_all(&formulas),
                "model {model} does not satisfy {formulas:?}"
            );
        }
    }
}

#[test]
fn sat_answers_agree_with_brute_force() {
    let mut rng = StdRng::seed_from_u64(0xB055);
    for _ in 0..CASES {
        let formulas = random_conjunction(&mut rng);
        let mut solver = Solver::new();
        for f in &formulas {
            solver.assert(f.clone());
        }
        match solver.check() {
            SmtResult::Sat(_) => {
                // Soundness of SAT answers is covered by the previous test;
                // here we only require agreement when the solver says UNSAT.
            }
            SmtResult::Unsat => {
                assert!(
                    !brute_force_sat(&formulas),
                    "solver said unsat but {formulas:?} has a model"
                );
            }
            SmtResult::Unknown => {}
        }
    }
}

#[test]
fn validity_is_never_contradicted_by_a_witness() {
    let mut rng = StdRng::seed_from_u64(0xDEC1DE);
    for _ in 0..CASES {
        let formulas = random_conjunction(&mut rng);
        let goal = random_atom(&mut rng);
        let mut solver = Solver::new();
        for f in &formulas {
            solver.assert(f.clone());
        }
        if solver.check_valid(&goal) == folic::Validity::Valid {
            // Then asserting the negation must be unsatisfiable — double-check
            // by asking for a model.
            let result = solver.check_assuming(&[Formula::not(goal.clone())]);
            assert!(
                !result.is_sat(),
                "valid goal {goal} has a countermodel under {formulas:?}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Prover-session equivalence
// ---------------------------------------------------------------------------

mod session_equivalence {
    use super::*;
    use cpcf::heap::{CRefinement, CSymExpr, Heap, SVal, Tag};
    use cpcf::{Loc, Number, ProveConfig, ProverSession};

    /// The given prove-engine configuration pinned to the scratch solver
    /// core, so prove-layer differentials compare engines over a single
    /// satisfiability oracle regardless of `CPCF_SOLVER_CORE`.
    fn on_scratch_core(mut config: ProveConfig) -> ProveConfig {
        config.solver.core = folic::CoreMode::Scratch;
        config
    }

    /// A random atomic operand: a location or a small constant.
    fn random_operand(rng: &mut StdRng, locs: &[Loc]) -> CSymExpr {
        if rng.gen_bool(0.5) && !locs.is_empty() {
            CSymExpr::loc(locs[rng.gen_range(0..locs.len())])
        } else {
            CSymExpr::int(rng.gen_range(-20i64..=20))
        }
    }

    /// A random symbolic expression over the heap's locations, kept inside
    /// the *linear* fragment (multiplication and division only by constants)
    /// so the bounded LIA search decides every instance quickly — the
    /// property under test is the incremental encoding bookkeeping, not
    /// solver completeness on nonlinear arithmetic.
    fn random_sym_expr(rng: &mut StdRng, locs: &[Loc], depth: u32) -> CSymExpr {
        if depth == 0 {
            return random_operand(rng, locs);
        }
        match rng.gen_range(0..8) {
            0..=2 => random_operand(rng, locs),
            3 => CSymExpr::Add(
                Box::new(random_operand(rng, locs)),
                Box::new(random_operand(rng, locs)),
            ),
            4 => CSymExpr::Sub(
                Box::new(random_operand(rng, locs)),
                Box::new(random_operand(rng, locs)),
            ),
            5 => CSymExpr::Mul(
                Box::new(CSymExpr::int(rng.gen_range(-3i64..=3))),
                Box::new(random_operand(rng, locs)),
            ),
            6 => {
                let divisor = [-3i64, -2, 2, 3][rng.gen_range(0..4usize)];
                CSymExpr::Div(
                    Box::new(random_operand(rng, locs)),
                    Box::new(CSymExpr::int(divisor)),
                )
            }
            _ => {
                let divisor = [-3i64, -2, 2, 3][rng.gen_range(0..4usize)];
                CSymExpr::Mod(
                    Box::new(random_operand(rng, locs)),
                    Box::new(CSymExpr::int(divisor)),
                )
            }
        }
    }

    /// Applies one random mutation to the heap, exercising monotone growth
    /// (refinements, allocations, memo entries) as well as the non-monotone
    /// overwrites that force the incremental engine to re-encode.
    fn random_mutation(rng: &mut StdRng, heap: &mut Heap, locs: &mut Vec<Loc>) {
        match rng.gen_range(0..10) {
            // Most often: a numeric refinement, the evaluator's bread and
            // butter along a path condition.
            0..=4 => {
                let loc = locs[rng.gen_range(0..locs.len())];
                if matches!(heap.get(loc), SVal::Opaque { .. }) {
                    let rhs = random_sym_expr(rng, locs, 1);
                    heap.refine(loc, CRefinement::NumCmp(random_cmp(rng), rhs));
                }
            }
            // A fresh opaque or concrete integer allocation.
            5 | 6 => {
                let loc = if rng.gen_bool(0.5) {
                    heap.alloc_fresh_opaque()
                } else {
                    heap.alloc(SVal::Num(Number::Int(rng.gen_range(-20i64..=20))))
                };
                locs.push(loc);
            }
            // A tag refinement (cache-key relevant, encoding-irrelevant).
            7 => {
                let loc = locs[rng.gen_range(0..locs.len())];
                if matches!(heap.get(loc), SVal::Opaque { .. }) {
                    heap.refine(loc, CRefinement::Is(Tag::Integer));
                }
            }
            // A memo-table entry on an opaque function (functionality).
            8 => {
                let f = locs[rng.gen_range(0..locs.len())];
                let arg = locs[rng.gen_range(0..locs.len())];
                let res = locs[rng.gen_range(0..locs.len())];
                if let SVal::Opaque {
                    refinements,
                    entries,
                } = heap.get(f).clone()
                {
                    let mut entries = entries;
                    if !entries.iter().any(|(a, _)| *a == arg) {
                        entries.push((arg, res));
                        heap.set(
                            f,
                            SVal::Opaque {
                                refinements,
                                entries,
                            },
                        );
                    }
                }
            }
            // A non-monotone overwrite: structural refinement to a pair.
            _ => {
                let loc = locs[rng.gen_range(0..locs.len())];
                if matches!(heap.get(loc), SVal::Opaque { .. }) {
                    let car = heap.alloc_fresh_opaque();
                    let cdr = heap.alloc_fresh_opaque();
                    locs.push(car);
                    locs.push(cdr);
                    heap.set(loc, SVal::Pair(car, cdr));
                }
            }
        }
    }

    #[test]
    fn incremental_session_matches_fresh_baseline() {
        let mut rng = StdRng::seed_from_u64(0x5E55_1011);
        for case in 0..CASES / 2 {
            let mut incremental =
                ProverSession::with_config(on_scratch_core(ProveConfig::default()));
            let mut fresh = ProverSession::with_config(on_scratch_core(ProveConfig {
                fresh_per_query: true,
                ..ProveConfig::default()
            }));
            // A pool of heaps: mutations sometimes fork a branch (cloning a
            // pool member), sometimes extend one, so the incremental session
            // sees the evaluator's real access pattern — interleaved queries
            // on diverging sibling heaps.
            let mut base = Heap::new();
            let locs: Vec<Loc> = (0..rng.gen_range(2usize..5))
                .map(|_| base.alloc_fresh_opaque())
                .collect();
            let mut pool: Vec<(Heap, Vec<Loc>)> = vec![(base, locs)];

            for step in 0..rng.gen_range(4usize..10) {
                let index = rng.gen_range(0..pool.len());
                if pool.len() < 4 && rng.gen_bool(0.3) {
                    let fork = pool[index].clone();
                    pool.push(fork);
                }
                let (heap, locs) = &mut pool[index];
                random_mutation(&mut rng, heap, locs);

                // Query both engines on a random pool member (not
                // necessarily the one just mutated).
                let (query_heap, query_locs) = &pool[rng.gen_range(0..pool.len())];
                let loc = query_locs[rng.gen_range(0..query_locs.len())];
                let op = random_cmp(&mut rng);
                let rhs = random_sym_expr(&mut rng, query_locs, 1);
                let a = incremental.prove_num(query_heap, loc, op, &rhs);
                let b = fresh.prove_num(query_heap, loc, op, &rhs);
                assert_eq!(
                    a, b,
                    "case {case} step {step}: incremental {a:?} != fresh {b:?} \
                     for {loc} {op:?} {rhs} on heap {query_heap}"
                );
                // Asking again must be stable (and exercises the cache).
                let again = incremental.prove_num(query_heap, loc, op, &rhs);
                assert_eq!(a, again, "case {case} step {step}: unstable cached verdict");
            }
            // Every step asked the same question twice on an unchanged heap,
            // so at least half the numeric queries must be cache hits.
            let stats = incremental.stats();
            assert!(
                stats.cache_hits * 2 >= stats.num_queries,
                "case {case}: too few cache hits: {stats:?}"
            );
        }
    }

    #[test]
    fn shared_cache_across_runs_preserves_verdicts_and_grows_hits() {
        use cpcf::SharedVerdictCache;

        // Property: replaying the same query sequence over randomized
        // branching heaps through a *shared* cross-run verdict cache gives
        // exactly the verdicts of a cold-cache run, and the second replay's
        // cache hits are at least the first's (monotone non-decrease: the
        // second run inherits every verdict the first computed).
        let mut rng = StdRng::seed_from_u64(0x5AFE_CAFE);
        for case in 0..CASES / 2 {
            // Build a pool of branching heaps and a query trace over them.
            let mut base = Heap::new();
            let locs: Vec<Loc> = (0..rng.gen_range(2usize..5))
                .map(|_| base.alloc_fresh_opaque())
                .collect();
            let mut pool: Vec<(Heap, Vec<Loc>)> = vec![(base, locs)];
            let mut trace: Vec<(usize, Loc, CmpOp, CSymExpr)> = Vec::new();
            for _ in 0..rng.gen_range(4usize..10) {
                let index = rng.gen_range(0..pool.len());
                if pool.len() < 4 && rng.gen_bool(0.3) {
                    let fork = pool[index].clone();
                    pool.push(fork);
                }
                let (heap, locs) = &mut pool[index];
                random_mutation(&mut rng, heap, locs);
                let query_index = rng.gen_range(0..pool.len());
                let (_, query_locs) = &pool[query_index];
                let loc = query_locs[rng.gen_range(0..query_locs.len())];
                let op = random_cmp(&mut rng);
                let rhs = random_sym_expr(&mut rng, query_locs, 1);
                trace.push((query_index, loc, op, rhs));
            }

            let replay = |session: &mut ProverSession| -> Vec<folic::Proof> {
                trace
                    .iter()
                    .map(|(heap_index, loc, op, rhs)| {
                        session.prove_num(&pool[*heap_index].0, *loc, *op, rhs)
                    })
                    .collect()
            };

            // Control: a cold session with a private cache only.
            let mut cold = ProverSession::new();
            let cold_verdicts = replay(&mut cold);

            // First run against the shared cache (populates it) ...
            let cache = SharedVerdictCache::new();
            let mut first =
                ProverSession::with_config_and_cache(ProveConfig::default(), cache.clone());
            let first_verdicts = replay(&mut first);
            let first_hits = first.stats().cache_hits;
            cache.advance_epoch();
            // ... then a second, fresh session replaying through the now
            // warm cache.
            let mut second =
                ProverSession::with_config_and_cache(ProveConfig::default(), cache.clone());
            let second_verdicts = replay(&mut second);
            let second_stats = second.stats();

            assert_eq!(
                cold_verdicts, first_verdicts,
                "case {case}: shared-cache run diverges from the cold run"
            );
            assert_eq!(
                cold_verdicts, second_verdicts,
                "case {case}: warm-cache replay diverges from the cold run"
            );
            assert!(
                second_stats.cache_hits >= first_hits,
                "case {case}: cache hits decreased across the second run \
                 ({} < {first_hits})",
                second_stats.cache_hits
            );
            assert_eq!(
                second_stats.cache_hits, second_stats.queries,
                "case {case}: the warm replay must answer every query from \
                 the cache: {second_stats:?}"
            );
            assert!(
                cache.cross_epoch_hits() >= second_stats.shared_cache_hits,
                "case {case}: every shared hit of the second run crosses the \
                 epoch boundary"
            );
        }
    }

    #[test]
    fn retraction_rebase_and_fresh_engines_agree_on_seeded_traces() {
        use cpcf::SessionStats;
        use randtest::{HeapTrace, TraceConfig};

        // The differential oracle for pop-to-write-point retraction, in the
        // spirit of the paper's QuickCheck baseline (§5.2): over seeded
        // random heap traces, all three prover engines must return exactly
        // the same verdicts. Engines are configured explicitly so the
        // property holds regardless of the CPCF_PROVE_MODE default, and all
        // three share the scratch solver core so the only axis varying is
        // the prove layer's retraction bookkeeping.
        let engine = |fresh_per_query: bool, retraction: bool| {
            on_scratch_core(ProveConfig {
                fresh_per_query,
                retraction,
                ..ProveConfig::default()
            })
        };
        const TRACES: u64 = 200;
        let config = TraceConfig::default();
        let mut retraction_total = SessionStats::default();
        let mut rebase_total = SessionStats::default();
        let mut traces_with_rebases = 0usize;
        for seed in 0..TRACES {
            let trace = HeapTrace::generate(seed, &config);
            if trace.rebases() > 0 {
                traces_with_rebases += 1;
            }
            let mut retraction = ProverSession::with_config(engine(false, true));
            let mut rebase = ProverSession::with_config(engine(false, false));
            let mut fresh = ProverSession::with_config(engine(true, false));
            let retraction_verdicts = trace.replay(&mut retraction);
            let rebase_verdicts = trace.replay(&mut rebase);
            let fresh_verdicts = trace.replay(&mut fresh);
            assert_eq!(
                retraction_verdicts, rebase_verdicts,
                "seed {seed}: retraction and rebase engines disagree"
            );
            assert_eq!(
                rebase_verdicts, fresh_verdicts,
                "seed {seed}: rebase and fresh-per-query engines disagree"
            );
            retraction_total.merge(&retraction.stats());
            rebase_total.merge(&rebase.stats());
        }
        // The corpus must actually exercise the machinery under test …
        assert!(
            traces_with_rebases >= TRACES as usize / 10,
            "only {traces_with_rebases}/{TRACES} traces journalled a rebase"
        );
        assert!(
            retraction_total.retractions > 0,
            "no trace triggered a retraction: {retraction_total:?}"
        );
        assert_eq!(
            rebase_total.retractions, 0,
            "the ablation must never retract: {rebase_total:?}"
        );
        // … and retraction must beat rebase where it counts: strictly fewer
        // whole-heap re-encodings for the same queries.
        assert!(
            retraction_total.full_encodings < rebase_total.full_encodings,
            "retraction ({}) did not reduce full re-encodings versus rebase ({})",
            retraction_total.full_encodings,
            rebase_total.full_encodings
        );
    }

    #[test]
    fn persistent_heap_matches_the_deep_clone_shadow_over_200_seeds() {
        use randtest::{HeapTrace, TraceConfig};

        // The representation-differential oracle for the copy-on-write heap:
        // `generate_checked` replays every mutation on both the persistent
        // heap and the deep-clone `ShadowHeap` (the seed semantics), and
        // panics unless journals, fingerprints, stored values and
        // write-points stay bit-identical after every single step. On top of
        // the representation check, the persistent trace's verdicts must
        // agree between the incremental engine and the fresh-per-query
        // baseline — i.e. the cheaper snapshots change no answer.
        const TRACES: u64 = 200;
        let config = TraceConfig::default();
        let engine = |fresh_per_query: bool, retraction: bool| {
            on_scratch_core(ProveConfig {
                fresh_per_query,
                retraction,
                ..ProveConfig::default()
            })
        };
        let mut traces_with_rebases = 0usize;
        for seed in 0..TRACES {
            let trace = HeapTrace::generate_checked(seed, &config);
            if trace.rebases() > 0 {
                traces_with_rebases += 1;
            }
            let mut incremental = ProverSession::with_config(engine(false, true));
            let mut fresh = ProverSession::with_config(engine(true, false));
            assert_eq!(
                trace.replay(&mut incremental),
                trace.replay(&mut fresh),
                "seed {seed}: verdicts diverge on the persistent heap"
            );
        }
        assert!(
            traces_with_rebases >= TRACES as usize / 10,
            "only {traces_with_rebases}/{TRACES} traces journalled a rebase; \
             the differential no longer covers the non-monotone path"
        );
    }

    #[test]
    fn persistent_core_refines_scratch_over_200_seeds() {
        use cpcf::SessionStats;
        use folic::CoreMode;
        use randtest::{HeapTrace, TraceConfig};

        // The differential oracle for the persistent solver core: replaying
        // seeded heap traces through two identically-configured incremental
        // sessions that differ only in `SolverConfig::core`, the persistent
        // core must return exactly the scratch verdict on every query the
        // scratch core decides. (It may — and does — decide queries scratch
        // returns Ambiguous on: cone slicing answers from the query's own
        // component where the full-instance SMT loop exhausts its iteration
        // budget blocking propositional cubes one by one. Decisive verdicts
        // can never conflict, since Sat answers are witness-checked against
        // every live formula and Unsat answers rest on sound clauses only.)
        const TRACES: u64 = 200;
        let config = TraceConfig::default();
        let engine = |core: CoreMode| {
            let mut config = ProveConfig {
                fresh_per_query: false,
                retraction: true,
                ..ProveConfig::default()
            };
            config.solver.core = core;
            config
        };
        let decided = |proof: folic::Proof| proof != folic::Proof::Ambiguous;
        let mut persistent_decided = 0usize;
        let mut scratch_decided = 0usize;
        let mut persistent_total = SessionStats::default();
        for seed in 0..TRACES {
            let trace = HeapTrace::generate(seed, &config);
            let mut persistent = ProverSession::with_config(engine(CoreMode::Persistent));
            let mut scratch = ProverSession::with_config(engine(CoreMode::Scratch));
            let persistent_verdicts = trace.replay(&mut persistent);
            let scratch_verdicts = trace.replay(&mut scratch);
            assert_eq!(persistent_verdicts.len(), scratch_verdicts.len());
            for (index, (p, s)) in persistent_verdicts
                .iter()
                .zip(&scratch_verdicts)
                .enumerate()
            {
                if decided(*s) {
                    assert_eq!(
                        p, s,
                        "seed {seed} query {index}: persistent {p:?} does not refine \
                         scratch {s:?}"
                    );
                }
                persistent_decided += usize::from(decided(*p));
                scratch_decided += usize::from(decided(*s));
            }
            // Model validity at Sat: the persistent core must produce a heap
            // model whenever the scratch core does, and its models must
            // satisfy the heap's translation.
            let last = trace.steps.last().expect("traces are non-empty");
            let persistent_model = persistent.heap_model(&last.heap);
            let scratch_model = scratch.heap_model(&last.heap);
            if scratch_model.is_some() {
                assert!(
                    persistent_model.is_some(),
                    "seed {seed}: the persistent core lost a heap model"
                );
            }
            if let Some(model) = &persistent_model {
                let translation = cpcf::prove::translate_heap(&last.heap);
                // Division/modulo witness variables are numbered differently
                // per engine; the cross-check applies to witness-free
                // translations.
                if translation.next_aux() == last.heap.next_index() {
                    assert!(
                        model.satisfies_all(&translation.formulas),
                        "seed {seed}: persistent model {model} violates the translation"
                    );
                }
            }
            persistent_total.merge(&persistent.stats());
        }
        assert!(
            persistent_decided >= scratch_decided,
            "the persistent core decided fewer queries ({persistent_decided}) than \
             scratch ({scratch_decided})"
        );
        assert!(
            persistent_total.solver.atoms_interned > 0,
            "no atoms interned: {persistent_total:?}"
        );
        assert!(
            persistent_total.solver.cone_vars_pruned > 0,
            "cone slicing never pruned a variable: {persistent_total:?}"
        );
    }

    #[test]
    fn difference_logic_refines_the_lia_only_engine_over_200_seeds() {
        use cpcf::SessionStats;
        use folic::CoreMode;
        use randtest::{HeapTrace, TraceConfig};

        // The differential oracle for the difference-logic theory module:
        // replaying seeded heap traces (whose generator now emits native
        // difference-constraint chains and cycles) through two
        // identically-configured sessions that differ only in
        // `TheoryConfig::theory_dl`, the DL-enabled engine must *refine* the
        // LIA-only engine — it returns exactly the LIA verdict on every
        // query LIA decides, and decides at least as many queries overall.
        // The DL module only claims conjunctions wholly inside its fragment
        // (where it is complete), so a decided answer can never flip:
        // DL-side Sat models are witness-checked against the full heap
        // translation below, and DL-side Unsat rests on a sound negative
        // constraint cycle.
        const TRACES: u64 = 200;
        let config = TraceConfig::with_diff_chains();
        let engine = |theory_dl: bool| {
            let mut config = ProveConfig {
                fresh_per_query: false,
                retraction: true,
                ..ProveConfig::default()
            };
            config.solver.core = CoreMode::Persistent;
            config.solver.theory.theory_dl = theory_dl;
            config
        };
        let decided = |proof: folic::Proof| proof != folic::Proof::Ambiguous;
        let mut dl_decided = 0usize;
        let mut lia_decided = 0usize;
        let mut dl_total = SessionStats::default();
        for seed in 0..TRACES {
            let trace = HeapTrace::generate(seed, &config);
            let mut with_dl = ProverSession::with_config(engine(true));
            let mut without_dl = ProverSession::with_config(engine(false));
            let dl_verdicts = trace.replay(&mut with_dl);
            let lia_verdicts = trace.replay(&mut without_dl);
            assert_eq!(dl_verdicts.len(), lia_verdicts.len());
            for (index, (d, l)) in dl_verdicts.iter().zip(&lia_verdicts).enumerate() {
                if decided(*l) {
                    assert_eq!(
                        d, l,
                        "seed {seed} query {index}: DL-enabled {d:?} does not refine \
                         LIA-only {l:?}"
                    );
                }
                dl_decided += usize::from(decided(*d));
                lia_decided += usize::from(decided(*l));
            }
            // Witness validity at Sat: whenever the DL-enabled session can
            // produce a heap model, it must satisfy the heap's translation —
            // difference atoms included — so a DL potential function never
            // smuggles in a bogus witness.
            let last = trace.steps.last().expect("traces are non-empty");
            if let Some(model) = with_dl.heap_model(&last.heap) {
                let translation = cpcf::prove::translate_heap(&last.heap);
                if translation.next_aux() == last.heap.next_index() {
                    assert!(
                        model.satisfies_all(&translation.formulas),
                        "seed {seed}: DL-enabled model {model} violates the translation"
                    );
                }
            }
            dl_total.merge(&with_dl.stats());
            let lia_stats = without_dl.stats();
            assert_eq!(
                lia_stats.solver.dl_checks, 0,
                "seed {seed}: the gated-off leg ran the DL module: {lia_stats:?}"
            );
        }
        assert!(
            dl_decided >= lia_decided,
            "the DL-enabled engine decided fewer queries ({dl_decided}) than the \
             LIA-only engine ({lia_decided})"
        );
        assert!(
            dl_total.solver.dl_checks > 0,
            "no query was routed to the DL module: {dl_total:?}"
        );
        assert!(
            dl_total.solver.dl_conflicts > 0,
            "the corpus never produced a contradictory difference cycle: {dl_total:?}"
        );
    }

    #[test]
    fn lemma_sharing_and_clause_reduction_change_no_verdict_over_200_seeds() {
        use cpcf::{SessionStats, SharedLemmaPool};
        use folic::CoreMode;
        use randtest::{HeapTrace, TraceConfig};

        // The differential oracle for the modernized CDCL search, with one
        // pool-less, default-limit persistent-core session as the baseline:
        //
        // * forcing learnt-clause reduction on every check (reduce limit 1)
        //   must leave every verdict bit-identical — deletion only forgets
        //   derived clauses, it cannot steer the theory loop elsewhere;
        // * *publishing* lemmas to a pool must leave every verdict
        //   bit-identical — publication never touches the search;
        // * *importing* sibling lemmas changes the search trajectory, so a
        //   budget-limited query may cross the `max_iterations` line in
        //   either direction (usually Ambiguous → decided). What can never
        //   happen is a contradiction between two decided answers: Sat is
        //   witness-verified against every live formula and Unsat rests on
        //   sound clauses only, imported lemmas included.
        //
        // Sharing is exercised the way the analysis scheduler uses it — two
        // sessions attached to one pool, standing in for two workers.
        const TRACES: u64 = 200;
        let config = TraceConfig::default();
        let engine = |reduce_limit: Option<usize>| {
            let mut config = ProveConfig {
                fresh_per_query: false,
                retraction: true,
                ..ProveConfig::default()
            };
            config.solver.core = CoreMode::Persistent;
            config.solver.theory.sat_reduce_limit = reduce_limit;
            config
        };
        let mut pooled_total = SessionStats::default();
        for seed in 0..TRACES {
            let trace = HeapTrace::generate(seed, &config);
            let mut baseline = ProverSession::with_config(engine(None));
            let pool = SharedLemmaPool::new();
            let mut publisher =
                ProverSession::with_config(engine(None)).with_lemma_pool(pool.clone());
            let mut importer =
                ProverSession::with_config(engine(None)).with_lemma_pool(pool.clone());
            let mut reducing = ProverSession::with_config(engine(Some(1)));
            let baseline_verdicts = trace.replay(&mut baseline);
            // The importer replays the same trace after the publisher, so
            // every lemma it could need is already in the pool — the worst
            // case for divergence, and the best case for import coverage.
            let publisher_verdicts = trace.replay(&mut publisher);
            let importer_verdicts = trace.replay(&mut importer);
            let reducing_verdicts = trace.replay(&mut reducing);
            assert_eq!(
                baseline_verdicts, publisher_verdicts,
                "seed {seed}: publishing lemmas changed a verdict"
            );
            assert_eq!(baseline_verdicts.len(), importer_verdicts.len());
            for (index, (b, i)) in baseline_verdicts.iter().zip(&importer_verdicts).enumerate() {
                let decided = |p: &folic::Proof| *p != folic::Proof::Ambiguous;
                if decided(b) && decided(i) {
                    assert_eq!(
                        b, i,
                        "seed {seed} query {index}: imported lemmas contradicted a \
                         decided verdict"
                    );
                }
            }
            assert_eq!(
                baseline_verdicts, reducing_verdicts,
                "seed {seed}: clause-DB reduction changed a verdict"
            );
            pooled_total.merge(&publisher.stats());
            pooled_total.merge(&importer.stats());
        }
        // The corpus must actually exercise both mechanisms: lemmas flow
        // into the pool, and sibling sessions pick them up as clauses.
        assert!(
            pooled_total.solver.lemmas_published > 0,
            "no session published a lemma: {pooled_total:?}"
        );
        assert!(
            pooled_total.solver.lemmas_imported > 0,
            "no session imported a sibling lemma: {pooled_total:?}"
        );
    }

    #[test]
    fn popped_frames_never_leak_into_later_checks() {
        use folic::{CoreMode, Proof, Solver, SolverConfig};

        let persistent = || {
            Solver::with_config(SolverConfig {
                core: CoreMode::Persistent,
                ..SolverConfig::default()
            })
        };
        // Deterministic leak check: a frame whose boolean structure forces
        // the CDCL loop to learn theory lemmas is popped; everything the
        // frame implied must revert, while the retained lemmas stay.
        let x0 = || Term::var(Var::new(0));
        let mut solver = persistent();
        solver.assert(Formula::or(vec![
            Formula::eq(x0(), Term::int(0)),
            Formula::eq(x0(), Term::int(1)),
        ]));
        solver.push();
        solver.assert(Formula::ge(x0(), Term::int(5)));
        assert!(solver.check().is_unsat(), "x0 ∈ {{0,1}} ∧ x0 ≥ 5");
        solver.pop();
        let model = solver.check().model().cloned().expect("sat after the pop");
        assert!(
            matches!(model.value(Var::new(0)), Some(0) | Some(1)),
            "popped bound leaked: {model}"
        );
        // A new frame with a different bound decides differently than the
        // popped one would have — nothing of the old frame survives.
        solver.push();
        solver.assert(Formula::ge(x0(), Term::int(1)));
        assert_eq!(
            solver.prove(&Formula::eq(x0(), Term::int(1))),
            Proof::Proved
        );
        solver.pop();
        assert_eq!(
            solver.prove(&Formula::eq(x0(), Term::int(1))),
            Proof::Ambiguous,
            "the popped x0 ≥ 1 frame still proves through retained state"
        );

        // Randomized version: interleave asserts, pushes, pops and proof
        // queries on one persistent solver, and compare every query against
        // a scratch solver rebuilt from just the live assertions — popped
        // frames must never make the persistent solver answer differently
        // on anything the scratch rebuild decides.
        let mut rng = StdRng::seed_from_u64(0xC0DE_F8A3);
        for case in 0..CASES {
            let mut solver = persistent();
            let mut live: Vec<Formula> = Vec::new();
            let mut marks: Vec<usize> = Vec::new();
            for step in 0..rng.gen_range(6usize..14) {
                match rng.gen_range(0u32..8) {
                    0..=2 => {
                        let formula = if rng.gen_bool(0.4) {
                            Formula::or(vec![random_atom(&mut rng), random_atom(&mut rng)])
                        } else {
                            random_atom(&mut rng)
                        };
                        solver.assert(formula.clone());
                        live.push(formula);
                    }
                    3 | 4 => {
                        solver.push();
                        marks.push(live.len());
                    }
                    5 => {
                        if let Some(mark) = marks.pop() {
                            solver.pop();
                            live.truncate(mark);
                        }
                    }
                    _ => {
                        let goal = random_atom(&mut rng);
                        let answer = solver.prove(&goal);
                        let mut scratch = Solver::with_config(SolverConfig {
                            core: CoreMode::Scratch,
                            ..SolverConfig::default()
                        });
                        for formula in &live {
                            scratch.assert(formula.clone());
                        }
                        let expected = scratch.prove(&goal);
                        if expected != Proof::Ambiguous {
                            assert_eq!(
                                answer, expected,
                                "case {case} step {step}: persistent {answer:?} vs \
                                 scratch-rebuild {expected:?} on {goal} under {live:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn session_heap_models_satisfy_the_translation() {
        let mut rng = StdRng::seed_from_u64(0x40DE15);
        for _ in 0..CASES / 2 {
            let mut heap = Heap::new();
            let mut locs: Vec<Loc> = (0..3).map(|_| heap.alloc_fresh_opaque()).collect();
            for _ in 0..rng.gen_range(2usize..8) {
                random_mutation(&mut rng, &mut heap, &mut locs);
            }
            let mut incremental = ProverSession::new();
            let mut fresh = ProverSession::with_config(ProveConfig {
                fresh_per_query: true,
                ..ProveConfig::default()
            });
            let a = incremental.heap_model(&heap);
            let b = fresh.heap_model(&heap);
            assert_eq!(
                a.is_some(),
                b.is_some(),
                "model existence diverges on heap {heap}"
            );
            if let Some(model) = a {
                let translation = cpcf::prove::translate_heap(&heap);
                // Division/modulo introduce existential witness variables
                // whose numbering differs between the session and baseline
                // encodings, so the cross-check only applies when the
                // translation is witness-free.
                if translation.next_aux() == heap.next_index() {
                    assert!(
                        model.satisfies_all(&translation.formulas),
                        "incremental model {model} does not satisfy the heap translation {heap}"
                    );
                }
            }
        }
    }
}
