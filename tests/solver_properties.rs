//! Property-based integration tests for the first-order solver: every model
//! it reports satisfies the asserted formulas, and validity answers agree
//! with brute-force evaluation on bounded instances.

use folic::{CmpOp, Formula, Model, Solver, SmtResult, Term, Var};
use proptest::prelude::*;

/// A small strategy for linear atoms over three variables with small
/// coefficients and constants.
fn atom_strategy() -> impl Strategy<Value = Formula> {
    let var = (0u32..3).prop_map(|i| Term::var(Var::new(i)));
    let coeff = -3i64..=3;
    let constant = -10i64..=10;
    (var, coeff, constant, 0usize..6).prop_map(|(v, k, c, op)| {
        let lhs = Term::mul(Term::int(k), v);
        let rhs = Term::int(c);
        let op = match op {
            0 => CmpOp::Eq,
            1 => CmpOp::Ne,
            2 => CmpOp::Lt,
            3 => CmpOp::Le,
            4 => CmpOp::Gt,
            _ => CmpOp::Ge,
        };
        Formula::atom(lhs, op, rhs)
    })
}

fn conjunction_strategy() -> impl Strategy<Value = Vec<Formula>> {
    prop::collection::vec(atom_strategy(), 1..6)
}

/// Brute force: is the conjunction satisfiable with all variables in
/// `-15..=15`? (Coefficients and constants are small, so any satisfiable
/// instance in this fragment has a witness in that box.)
fn brute_force_sat(formulas: &[Formula]) -> bool {
    for x0 in -15i64..=15 {
        for x1 in -15i64..=15 {
            for x2 in -15i64..=15 {
                let model: Model = vec![
                    (Var::new(0), x0),
                    (Var::new(1), x1),
                    (Var::new(2), x2),
                ]
                .into_iter()
                .collect();
                if formulas
                    .iter()
                    .all(|f| model.eval_formula(f).unwrap_or(false))
                {
                    return true;
                }
            }
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn models_satisfy_their_formulas(formulas in conjunction_strategy()) {
        let mut solver = Solver::new();
        for f in &formulas {
            solver.assert(f.clone());
        }
        if let SmtResult::Sat(model) = solver.check() {
            prop_assert!(model.satisfies_all(&formulas), "model {model} does not satisfy {formulas:?}");
        }
    }

    #[test]
    fn sat_answers_agree_with_brute_force(formulas in conjunction_strategy()) {
        let mut solver = Solver::new();
        for f in &formulas {
            solver.assert(f.clone());
        }
        match solver.check() {
            SmtResult::Sat(_) => {
                // Soundness of SAT answers is covered by the previous test;
                // here we only require agreement when the solver says UNSAT.
            }
            SmtResult::Unsat => {
                prop_assert!(!brute_force_sat(&formulas), "solver said unsat but {formulas:?} has a model");
            }
            SmtResult::Unknown => {}
        }
    }

    #[test]
    fn validity_is_never_contradicted_by_a_witness(formulas in conjunction_strategy(), goal in atom_strategy()) {
        let mut solver = Solver::new();
        for f in &formulas {
            solver.assert(f.clone());
        }
        if solver.check_valid(&goal) == folic::Validity::Valid {
            // Then asserting the negation must be unsatisfiable — double-check
            // by asking for a model.
            let result = solver.check_with(&[Formula::not(goal.clone())]);
            prop_assert!(!result.is_sat(), "valid goal {goal} has a countermodel under {formulas:?}");
        }
    }
}
