//! The §4.3/§5.2 `argmin` example: a contract that is too weak.
//!
//! `argmin` requires a number-producing key function and a non-empty list,
//! and compares keys with `<`. Racket's `number?` accepts complex numbers,
//! which `<` rejects — so a key function that (legitimately, per the
//! contract) answers `0+1i` crashes `argmin` from inside. The analysis
//! produces exactly that higher-order counterexample.
//!
//! Run with `cargo run --example argmin`.

use cpcf::{analyze_source, ExportAnalysis, Expr};

const PROGRAM: &str = r#"
(module argmin
  (provide [argmin (-> (-> any/c number?) (and/c (listof integer?) pair?) any/c)])
  (define (argmin/acc f b a xs)
    (cond [(null? xs) a]
          [(< b (f (car xs))) (argmin/acc f a b (cdr xs))]
          [else (argmin/acc f (car xs) (f (car xs)) (cdr xs))]))
  (define (argmin f xs)
    (argmin/acc f (car xs) (f (car xs)) (cdr xs))))
"#;

fn main() {
    println!("argmin with contract (-> (-> any/c number?) (and/c (listof any/c) pair?) any/c)\n");
    let report = analyze_source(PROGRAM).expect("parses");
    match &report.exports[0].1 {
        ExportAnalysis::Counterexample(cex) => {
            println!("the contract is too weak — counterexample ({}):", cex.blame);
            for (label, expr) in &cex.bindings {
                println!("  {label} = {expr:?}");
            }
            let has_complex = cex.bindings.iter().any(|(_, e)| {
                let mut found = false;
                e.walk(&mut |sub| {
                    if matches!(sub, Expr::Complex(_, _)) {
                        found = true;
                    }
                });
                found
            });
            println!(
                "\nthe breaking key function answers with a complex number: {}",
                if has_complex {
                    "yes (as in the paper: f = (λ (x) 0+1i))"
                } else {
                    "no"
                }
            );
            println!("validated by concrete re-execution: {}", cex.validated);
        }
        other => {
            eprintln!("expected a counterexample, got {other:?}");
            std::process::exit(1);
        }
    }
}
