//! The §5.2 comparison with random testing: `f n = 1 / (100 - n)`.
//!
//! QuickCheck's default integer generator draws from a small range
//! (the paper quotes −99..=99), so it never tries `n = 100`; symbolic
//! execution reads the `100` out of the program's own arithmetic.
//!
//! Run with `cargo run --example division_search`.

use cpcf::{analyze_source, ExportAnalysis};
use randtest::{test_source, RandTestConfig};

const PROGRAM: &str = r#"
(module div100
  (provide [f (-> integer? integer?)])
  (define (f n) (/ 1 (- 100 n))))
"#;

fn main() {
    println!("program: f n = 1 / (100 - n)\n");

    // 1. Symbolic analysis.
    let report = analyze_source(PROGRAM).expect("parses");
    match &report.exports[0].1 {
        ExportAnalysis::Counterexample(cex) => {
            println!("symbolic analysis found a counterexample:");
            for (label, expr) in &cex.bindings {
                println!("  {label} = {expr:?}");
            }
            println!("  (validated: {})\n", cex.validated);
        }
        other => println!("symbolic analysis: {other:?}\n"),
    }

    // 2. Random testing with the default small-integer generator.
    let result = test_source(PROGRAM, RandTestConfig::default()).expect("parses");
    println!(
        "random testing with integers in -99..=99: {}",
        if result.found_bug() {
            "found the bug (unexpected!)"
        } else {
            "did NOT find the bug — n = 100 is outside the generator's range"
        }
    );

    // 3. Random testing again with a widened generator.
    let widened = RandTestConfig {
        int_range: (-1000, 1000),
        num_tests: 50_000,
        ..RandTestConfig::default()
    };
    let result = test_source(PROGRAM, widened).expect("parses");
    match result {
        randtest::RandTestResult::Failed { tests, inputs } => println!(
            "random testing with integers in -1000..=1000: found the bug after {tests} tests: {inputs:?}"
        ),
        randtest::RandTestResult::Passed { tests } => println!(
            "random testing with integers in -1000..=1000: still nothing after {tests} tests"
        ),
    }
}
