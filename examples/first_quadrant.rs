//! The §5.2 object-encoding example: `posn/c` and `first-quadrant?`.
//!
//! Positions are encoded as message-passing functions accepting `"x"` and
//! `"y"`. With the interface only promising `number?` answers, a conforming
//! implementation may answer `0+1i`, which crashes the comparison inside
//! `first-quadrant?`. The counterexample the analysis produces is itself an
//! object: a function from messages to values — a first step towards
//! generating classes and objects as counterexamples, as the paper puts it.
//!
//! Run with `cargo run --example first_quadrant`.

use cpcf::{analyze_source, ExportAnalysis};

const WEAK: &str = r#"
(module first-quadrant
  (provide [first-quadrant? (-> (-> (one-of/c "x" "y") number?) boolean?)])
  (define (first-quadrant? p)
    (and (>= (p "x") 0) (>= (p "y") 0))))
"#;

const STRONG: &str = r#"
(module first-quadrant
  (provide [first-quadrant? (-> (-> (one-of/c "x" "y") integer?) boolean?)])
  (define (first-quadrant? p)
    (and (>= (p "x") 0) (>= (p "y") 0))))
"#;

fn main() {
    println!("-- interface answering number? (too weak) --");
    let report = analyze_source(WEAK).expect("parses");
    match &report.exports[0].1 {
        ExportAnalysis::Counterexample(cex) => {
            println!("counterexample found ({}):", cex.blame);
            for (label, expr) in &cex.bindings {
                println!("  {label} = {expr:?}");
            }
            println!("validated: {}\n", cex.validated);
        }
        other => println!("unexpected: {other:?}\n"),
    }

    println!("-- interface answering integer? (strong enough) --");
    let report = analyze_source(STRONG).expect("parses");
    match &report.exports[0].1 {
        ExportAnalysis::Verified => println!("verified: no counterexample exists"),
        other => println!("unexpected: {other:?}"),
    }
}
