//! Quickstart: the paper's §2 worked example, end to end.
//!
//! ```text
//! let f (g : int → int) (n : int) : int = 1 / (100 - (g n)) in (• f)
//! ```
//!
//! The unknown context `•` receives the higher-order function `f`. Symbolic
//! execution decomposes the unknown context as it interacts with `f`,
//! accumulates a first-order path condition, and — at the division error —
//! asks the solver for a model, reconstructing a concrete higher-order
//! counterexample: a context that calls `f` with a function returning 100.
//!
//! Run with `cargo run --example quickstart`.

use spcf::{analyze, parse, Analysis};

fn main() {
    let source = "((• (-> (-> (-> int int) int int) int))
                   (lambda (g : (-> int int))
                     (lambda (n : int)
                       (div 1 (- 100 (g n))))))";
    let program = parse::parse(source).expect("the worked example parses");

    println!("program:\n  {source}\n");
    match analyze(&program) {
        Analysis::Counterexample(cex) => {
            println!(
                "found a counterexample (validated by concrete re-execution: {}):",
                cex.validated
            );
            println!("{cex}");
            println!("instantiated program:");
            println!("  {}", cex.instantiate(&program));
        }
        other => {
            eprintln!("expected a counterexample, but the analysis returned {other:?}");
            std::process::exit(1);
        }
    }
}
