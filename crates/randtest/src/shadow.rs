//! The **shadow heap**: a deliberately naive, deep-clone reimplementation of
//! `cpcf::Heap`'s journal algebra, kept as the differential oracle (and
//! microbenchmark baseline) for the persistent copy-on-write representation.
//!
//! [`ShadowHeap`] stores its state in plain `BTreeMap`s/`BTreeSet`s and its
//! journal in a single `Vec` — exactly the pre-persistent representation,
//! whose `Clone` deep-copies everything including the O(path-length)
//! journal. Its mutation logic mirrors `cpcf::heap` operation for operation
//! (reusing the crate's own `content_hash`/`encodes_formulas` so the
//! fingerprint chains cannot drift apart), which gives two guarantees worth
//! testing against:
//!
//! * **semantic**: replaying any mutation sequence on both heaps must
//!   produce bit-identical journals, fingerprints and write-points (the
//!   entire interface the incremental prover engines consume) — fuzzed by
//!   [`crate::heaptrace::HeapTrace::generate_checked`] over hundreds of
//!   seeds;
//! * **performance**: the shadow's `Clone` is the old cost model, so the
//!   `heap` microbenchmark can report old-vs-new snapshot cost side by
//!   side.

use std::collections::{BTreeMap, BTreeSet};
use std::hash::{Hash, Hasher};

use cpcf::heap::{content_hash, encodes_formulas, JournalEntry, JournalEvent};
use cpcf::{CRefinement, Loc, SVal};

/// The deep-clone heap: `BTreeMap` state plus a `Vec` journal, cloned in
/// full at every snapshot. Mirrors the journal/fingerprint/write-point
/// semantics of [`cpcf::Heap`] bit for bit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShadowHeap {
    entries: BTreeMap<Loc, SVal>,
    next: u32,
    journal: Vec<JournalEntry>,
    fingerprint: u64,
    memo_refs: BTreeSet<Loc>,
    write_points: BTreeMap<Loc, usize>,
}

impl ShadowHeap {
    /// Creates an empty shadow heap.
    pub fn new() -> Self {
        ShadowHeap::default()
    }

    /// Allocates a fresh location (mirrors `Heap::alloc`).
    pub fn alloc(&mut self, value: SVal) -> Loc {
        let loc = Loc::new(self.next);
        self.next += 1;
        let hash = content_hash(&value);
        self.note_memo_refs(&value);
        self.entries.insert(loc, value);
        self.record(JournalEvent::Touched(loc), hash);
        loc
    }

    /// Allocates a fresh anonymous opaque value.
    pub fn alloc_fresh_opaque(&mut self) -> Loc {
        self.alloc(SVal::opaque())
    }

    /// Looks up a location.
    ///
    /// # Panics
    ///
    /// Panics on a dangling location, like `Heap::get`.
    pub fn get(&self, loc: Loc) -> &SVal {
        self.entries
            .get(&loc)
            .unwrap_or_else(|| panic!("dangling shadow location {loc}"))
    }

    /// Replaces the value at a location (mirrors `Heap::set`).
    pub fn set(&mut self, loc: Loc, value: SVal) {
        enum Change {
            Monotone(Vec<JournalEvent>),
            Touched,
            Rebase,
        }
        let change = match (self.entries.get(&loc), &value) {
            (
                Some(SVal::Opaque {
                    refinements: old_r,
                    entries: old_e,
                }),
                SVal::Opaque {
                    refinements: new_r,
                    entries: new_e,
                },
            ) if new_r.len() >= old_r.len()
                && new_r[..old_r.len()] == old_r[..]
                && new_e.len() >= old_e.len()
                && new_e[..old_e.len()] == old_e[..] =>
            {
                let mut events = Vec::new();
                for index in old_r.len()..new_r.len() {
                    events.push(JournalEvent::Refined(loc, index));
                }
                for index in old_e.len()..new_e.len() {
                    events.push(JournalEvent::EntryAdded(loc, index));
                }
                Change::Monotone(events)
            }
            (Some(old), _) if encodes_formulas(old) => Change::Rebase,
            (Some(_), new)
                if self.memo_refs.contains(&loc)
                    && !matches!(new, SVal::Num(_) | SVal::Opaque { .. }) =>
            {
                Change::Rebase
            }
            _ => Change::Touched,
        };
        let hash = content_hash(&value);
        let retract_to = self.write_points.get(&loc).copied().unwrap_or(0);
        self.note_memo_refs(&value);
        self.entries.insert(loc, value);
        match change {
            Change::Monotone(events) => {
                for event in events {
                    self.record(event, hash);
                }
            }
            Change::Touched => self.record(JournalEvent::Touched(loc), hash),
            Change::Rebase => self.record(JournalEvent::Rebase { loc, retract_to }, hash),
        }
    }

    /// Adds a refinement to the opaque value at `loc` (mirrors
    /// `Heap::refine`).
    ///
    /// # Panics
    ///
    /// Panics if the location does not hold an opaque value.
    pub fn refine(&mut self, loc: Loc, refinement: CRefinement) {
        let appended = match self.entries.get_mut(&loc) {
            Some(SVal::Opaque { refinements, .. }) => {
                if refinements.contains(&refinement) {
                    None
                } else {
                    let mut hasher = std::collections::hash_map::DefaultHasher::new();
                    refinement.hash(&mut hasher);
                    refinements.push(refinement);
                    Some((refinements.len() - 1, hasher.finish()))
                }
            }
            other => panic!("refining non-opaque shadow location {loc}: {other:?}"),
        };
        if let Some((index, hash)) = appended {
            self.record(JournalEvent::Refined(loc, index), hash);
        }
    }

    fn note_memo_refs(&mut self, value: &SVal) {
        if let SVal::Opaque { entries, .. } = value {
            for &(arg, res) in entries {
                self.memo_refs.insert(arg);
                self.memo_refs.insert(res);
            }
        }
    }

    fn record(&mut self, event: JournalEvent, content: u64) {
        self.note_write_points(&event);
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        self.fingerprint.hash(&mut hasher);
        std::mem::discriminant(&event).hash(&mut hasher);
        match event {
            JournalEvent::Touched(loc) | JournalEvent::Rebase { loc, .. } => loc.hash(&mut hasher),
            JournalEvent::Refined(loc, index) | JournalEvent::EntryAdded(loc, index) => {
                (loc, index).hash(&mut hasher)
            }
        }
        content.hash(&mut hasher);
        self.fingerprint = hasher.finish();
        self.journal.push(JournalEntry {
            event,
            fingerprint: self.fingerprint,
        });
    }

    fn note_write_points(&mut self, event: &JournalEvent) {
        let position = self.journal.len();
        match *event {
            JournalEvent::Touched(loc) => {
                self.note_value_write_points(loc, position, false);
            }
            JournalEvent::Rebase { loc, .. } => {
                self.write_points.insert(loc, position);
                self.note_value_write_points(loc, position, true);
            }
            JournalEvent::Refined(loc, index) => {
                let numeric = matches!(
                    self.entries.get(&loc),
                    Some(SVal::Opaque { refinements, .. })
                        if matches!(refinements.get(index), Some(CRefinement::NumCmp(_, _)))
                );
                if numeric {
                    self.write_points.entry(loc).or_insert(position);
                }
            }
            JournalEvent::EntryAdded(loc, index) => {
                let entry = match self.entries.get(&loc) {
                    Some(SVal::Opaque { entries, .. }) => entries.get(index).copied(),
                    _ => None,
                };
                self.write_points.entry(loc).or_insert(position);
                if let Some((arg, res)) = entry {
                    self.write_points.entry(arg).or_insert(position);
                    self.write_points.entry(res).or_insert(position);
                }
            }
        }
    }

    fn note_value_write_points(&mut self, loc: Loc, position: usize, skip_self: bool) {
        let Some(value) = self.entries.get(&loc) else {
            return;
        };
        let encodes = encodes_formulas(value);
        let memo: Vec<(Loc, Loc)> = match value {
            SVal::Opaque { entries, .. } => entries.clone(),
            _ => Vec::new(),
        };
        if !skip_self && encodes {
            self.write_points.entry(loc).or_insert(position);
        }
        for (arg, res) in memo {
            self.write_points.entry(arg).or_insert(position);
            self.write_points.entry(res).or_insert(position);
        }
    }

    /// The journal, oldest event first.
    pub fn journal(&self) -> &[JournalEntry] {
        &self.journal
    }

    /// The fingerprint after the last journalled event.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The write-point of `loc`, if any formula depends on it.
    pub fn write_point(&self, loc: Loc) -> Option<usize> {
        self.write_points.get(&loc).copied()
    }

    /// Index of the next allocation.
    pub fn next_index(&self) -> u32 {
        self.next
    }

    /// Iterates over allocated locations in order.
    pub fn iter(&self) -> impl Iterator<Item = (Loc, &SVal)> + '_ {
        self.entries.iter().map(|(l, v)| (*l, v))
    }
}

/// Asserts that a [`cpcf::Heap`] and a [`ShadowHeap`] that replayed the same
/// mutation sequence agree on every observable the prover engines consume:
/// allocation counter, value store (content and iteration order), journal
/// (events *and* fingerprint chain), final fingerprint, and the write-point
/// of every allocated location.
///
/// # Panics
///
/// Panics with a description of the first divergence.
pub fn assert_heaps_agree(heap: &cpcf::Heap, shadow: &ShadowHeap, context: &str) {
    assert_eq!(
        heap.next_index(),
        shadow.next_index(),
        "{context}: allocation counters diverge"
    );
    assert_eq!(
        heap.fingerprint(),
        shadow.fingerprint(),
        "{context}: fingerprints diverge"
    );
    assert_eq!(
        heap.journal_len(),
        shadow.journal().len(),
        "{context}: journal lengths diverge"
    );
    for (position, (persistent, naive)) in heap
        .journal_suffix(0)
        .zip(shadow.journal().iter().copied())
        .enumerate()
    {
        assert_eq!(
            persistent, naive,
            "{context}: journals diverge at position {position}"
        );
    }
    assert!(
        heap.iter()
            .map(|(l, v)| (l, v.clone()))
            .eq(shadow.iter().map(|(l, v)| (l, v.clone()))),
        "{context}: stored values or their iteration order diverge"
    );
    for index in 0..heap.next_index() {
        let loc = Loc::new(index);
        assert_eq!(
            heap.write_point(loc),
            shadow.write_point(loc),
            "{context}: write-points diverge at {loc}"
        );
    }
}
