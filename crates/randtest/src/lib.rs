//! # randtest — a QuickCheck-style random-testing baseline
//!
//! The paper positions symbolic counterexample generation as a complement to
//! random testing (§5.2, §6): random testers such as QuickCheck draw inputs
//! from a bounded distribution (integers in `-99..=99` by default, per the
//! paper's discussion with the QuickCheck authors) and therefore miss bugs
//! that require specific values such as `n = 100` in `1/(100 - n)`.
//!
//! This crate implements exactly that baseline for CPCF modules: for each
//! contracted export it generates random concrete inputs whose shape is
//! derived from the contract (integers, booleans, lists, pairs and constant
//! random functions), runs the module concretely, and reports the first
//! input on which the module itself is blamed.
//!
//! The [`heaptrace`] module applies the same methodology one level down: a
//! seeded generator of random symbolic-heap mutation/query traces, used as
//! the differential oracle proving the prover engines (pop-to-write-point
//! retraction, whole-journal rebase, fresh-solver-per-query) observationally
//! equivalent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod heaptrace;
pub mod shadow;

pub use heaptrace::{HeapTrace, TraceConfig, TraceStep};
pub use shadow::ShadowHeap;

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cpcf::analyze::{instantiate, CONTEXT_PARTY};
use cpcf::eval::{eval, Ctx, EvalOptions, Outcome};
use cpcf::heap::{empty_env, Heap};
use cpcf::syntax::{Expr, Label, Prim, Program};

/// Configuration of the random tester.
#[derive(Debug, Clone, Copy)]
pub struct RandTestConfig {
    /// Number of random inputs tried per export.
    pub num_tests: u32,
    /// Inclusive range integers are drawn from. The QuickCheck default the
    /// paper quotes is `-99..=99`.
    pub int_range: (i64, i64),
    /// RNG seed, for reproducibility.
    pub seed: u64,
    /// Fuel for each concrete run.
    pub fuel: u64,
}

impl Default for RandTestConfig {
    fn default() -> Self {
        RandTestConfig {
            num_tests: 200,
            int_range: (-99, 99),
            seed: 0xC0FFEE,
            fuel: 40_000,
        }
    }
}

/// The verdict of random testing one export.
#[derive(Debug, Clone, PartialEq)]
pub enum RandTestResult {
    /// No failing input was found within the budget.
    Passed {
        /// Number of tests executed.
        tests: u32,
    },
    /// A failing input was found.
    Failed {
        /// Number of tests executed up to and including the failure.
        tests: u32,
        /// The failing concrete inputs, in argument order.
        inputs: Vec<Expr>,
    },
}

impl RandTestResult {
    /// True if a failing input was found.
    pub fn found_bug(&self) -> bool {
        matches!(self, RandTestResult::Failed { .. })
    }
}

/// The random tester.
#[derive(Debug)]
pub struct RandTester {
    config: RandTestConfig,
    rng: StdRng,
}

impl RandTester {
    /// Creates a tester with the given configuration.
    pub fn new(config: RandTestConfig) -> Self {
        RandTester {
            rng: StdRng::seed_from_u64(config.seed),
            config,
        }
    }

    /// Randomly tests the named export of the program's named module.
    pub fn test_export(
        &mut self,
        program: &Program,
        module_name: &str,
        export: &str,
    ) -> RandTestResult {
        let Some(module) = program.module(module_name) else {
            return RandTestResult::Passed { tests: 0 };
        };
        let Some(provide) = module.provides.iter().find(|p| p.name == export) else {
            return RandTestResult::Passed { tests: 0 };
        };
        // The same most-general-context expression the symbolic analysis
        // uses, instantiated with random values instead of opaque ones.
        let mut next_label = 500_000;
        let mut fresh = || {
            let label = Label(next_label);
            next_label += 1;
            label
        };
        let mut context = Expr::Mon {
            contract: Box::new(provide.contract.clone()),
            value: Box::new(Expr::var(export)),
            pos: module_name.to_string(),
            neg: CONTEXT_PARTY.to_string(),
            label: fresh(),
        };
        let mut labelled_domains: Vec<(Label, Expr)> = Vec::new();
        let mut contract = &provide.contract;
        while let Expr::CArrow(doms, rng) = contract {
            let args: Vec<Expr> = doms
                .iter()
                .map(|dom| {
                    let label = fresh();
                    labelled_domains.push((label, dom.clone()));
                    Expr::Opaque(label)
                })
                .collect();
            context = Expr::app(context, args);
            contract = rng;
        }

        for test in 1..=self.config.num_tests {
            let bindings: HashMap<Label, Expr> = labelled_domains
                .iter()
                .map(|(label, dom)| (*label, self.random_value(dom, 2)))
                .collect();
            let concrete = instantiate(&context, &bindings);
            if self.run_once(program, &concrete, module_name) {
                let inputs = labelled_domains
                    .iter()
                    .map(|(label, _)| bindings[label].clone())
                    .collect();
                return RandTestResult::Failed {
                    tests: test,
                    inputs,
                };
            }
        }
        RandTestResult::Passed {
            tests: self.config.num_tests,
        }
    }

    /// Runs the program once with a fully concrete context expression,
    /// returning true if the module is blamed.
    fn run_once(&mut self, program: &Program, context: &Expr, module_name: &str) -> bool {
        let options = EvalOptions {
            fuel: self.config.fuel,
            ..EvalOptions::default()
        };
        let mut ctx = Ctx::new(options);
        for module in &program.modules {
            for def in &module.structs {
                ctx.structs.insert(def.name.clone(), def.clone());
            }
        }
        let mut heap = Heap::new();
        let env = empty_env();
        for module in &program.modules {
            for definition in &module.definitions {
                let outcomes = eval(&mut ctx, &env, &module.name, &definition.body, &heap);
                match outcomes
                    .into_iter()
                    .find_map(|(o, h)| o.value().map(|l| (l, h)))
                {
                    Some((loc, new_heap)) => {
                        heap = new_heap;
                        ctx.globals.insert(definition.name.clone(), loc);
                    }
                    None => return false,
                }
            }
        }
        let outcomes = eval(&mut ctx, &env, CONTEXT_PARTY, context, &heap);
        outcomes
            .iter()
            .any(|(o, _)| matches!(o, Outcome::Err(blame) if blame.party == module_name))
    }

    /// Generates a random concrete value whose shape fits the contract.
    fn random_value(&mut self, contract: &Expr, depth: u32) -> Expr {
        let (lo, hi) = self.config.int_range;
        match contract {
            Expr::CArrow(doms, _) => {
                // A random constant function of the right arity.
                let params: Vec<String> = (0..doms.len()).map(|i| format!("x{i}")).collect();
                let result = Expr::Int(self.rng.gen_range(lo..=hi));
                Expr::lam(params, result)
            }
            Expr::CAnd(parts) => parts
                .first()
                .map(|p| self.random_value(p, depth))
                .unwrap_or_else(|| Expr::Int(self.rng.gen_range(lo..=hi))),
            Expr::COr(parts) => {
                if parts.is_empty() {
                    Expr::Int(self.rng.gen_range(lo..=hi))
                } else {
                    let index = self.rng.gen_range(0..parts.len());
                    self.random_value(&parts[index].clone(), depth)
                }
            }
            Expr::CCons(car, cdr) => Expr::Prim(
                Prim::Cons,
                vec![
                    self.random_value(car, depth.saturating_sub(1)),
                    self.random_value(cdr, depth.saturating_sub(1)),
                ],
                Label(u32::MAX),
            ),
            Expr::CListOf(element) => {
                let length = self.rng.gen_range(0..4);
                let mut list = Expr::Nil;
                for _ in 0..length {
                    list = Expr::Prim(
                        Prim::Cons,
                        vec![self.random_value(element, depth.saturating_sub(1)), list],
                        Label(u32::MAX),
                    );
                }
                list
            }
            Expr::COneOf(options) => {
                if options.is_empty() {
                    Expr::Int(self.rng.gen_range(lo..=hi))
                } else {
                    options[self.rng.gen_range(0..options.len())].clone()
                }
            }
            Expr::Var(name) if name.contains("boolean") => Expr::Bool(self.rng.gen_bool(0.5)),
            // Flat contracts (Lam, Var, any/c) and everything else: mostly
            // integers, with the occasional boolean to exercise type-test
            // branches.
            _ => {
                if self.rng.gen_range(0..10) == 0 {
                    Expr::Bool(self.rng.gen_bool(0.5))
                } else {
                    Expr::Int(self.rng.gen_range(lo..=hi))
                }
            }
        }
    }
}

/// Convenience: random-test the first export of the last module.
///
/// # Errors
///
/// Returns an error string when the source fails to parse or has no exports.
pub fn test_source(source: &str, config: RandTestConfig) -> Result<RandTestResult, String> {
    let (program, _) = cpcf::parse_program(source).map_err(|e| e.to_string())?;
    let module = program
        .modules
        .last()
        .map(|m| m.name.clone())
        .ok_or_else(|| "empty program".to_string())?;
    let export = program
        .module(&module)
        .and_then(|m| m.provides.first())
        .map(|p| p.name.clone())
        .ok_or_else(|| "module has no exports".to_string())?;
    let mut tester = RandTester::new(config);
    Ok(tester.test_export(&program, &module, &export))
}

#[cfg(test)]
mod tests {
    use super::*;

    const DIV100: &str = r#"
    (module div100
      (provide [f (-> integer? integer?)])
      (define (f n) (/ 1 (- 100 n))))
    "#;

    const DIV_ANY: &str = r#"
    (module divany
      (provide [f (-> integer? integer?)])
      (define (f n) (/ 1 n)))
    "#;

    const SAFE: &str = r#"
    (module safe
      (provide [f (-> integer? integer?)])
      (define (f n) (+ n 1)))
    "#;

    #[test]
    fn default_range_misses_the_boundary_bug() {
        // The paper's point: with integers drawn from -99..=99, n = 100 is
        // never generated, so random testing misses the bug.
        let result = test_source(DIV100, RandTestConfig::default()).expect("parses");
        assert!(!result.found_bug());
    }

    #[test]
    fn widened_range_eventually_finds_it() {
        let config = RandTestConfig {
            int_range: (-200, 200),
            num_tests: 5_000,
            ..RandTestConfig::default()
        };
        let result = test_source(DIV100, config).expect("parses");
        assert!(result.found_bug(), "a wide enough generator hits n = 100");
    }

    #[test]
    fn easy_bugs_are_found_quickly() {
        // 1/n fails for n = 0, which the generator produces with probability
        // ~1/200 per test; 2000 tests make the hit near-certain for any seed.
        let config = RandTestConfig {
            num_tests: 2_000,
            ..RandTestConfig::default()
        };
        let result = test_source(DIV_ANY, config).expect("parses");
        assert!(result.found_bug());
    }

    #[test]
    fn safe_modules_pass() {
        let result = test_source(SAFE, RandTestConfig::default()).expect("parses");
        assert!(!result.found_bug());
        assert_eq!(result, RandTestResult::Passed { tests: 200 });
    }

    #[test]
    fn higher_order_arguments_get_random_functions() {
        let source = r#"
        (module ho
          (provide [f (-> (-> integer? integer?) integer?)])
          (define (f g) (/ 1 (g 7))))
        "#;
        let config = RandTestConfig {
            num_tests: 2_000,
            ..RandTestConfig::default()
        };
        let result = test_source(source, config).expect("parses");
        // The random constant function returns 0 sometimes, so the bug is
        // findable by random testing too — the difference is in guarantees.
        assert!(result.found_bug());
    }

    #[test]
    fn results_are_reproducible_for_a_fixed_seed() {
        let a = test_source(DIV_ANY, RandTestConfig::default()).expect("parses");
        let b = test_source(DIV_ANY, RandTestConfig::default()).expect("parses");
        assert_eq!(a, b);
    }
}
