//! A seeded random generator of CPCF **heap traces**: sequences of symbolic
//! heap snapshots and numeric queries, in the access pattern the evaluator
//! produces — interleaved monotone refinements, memo-entry additions and
//! non-monotone `set` overwrites on randomized branching shapes, plus
//! (under [`TraceConfig::with_diff_chains`]) native difference-constraint
//! chains and cycles targeting the difference-logic theory module.
//!
//! The generator is the random-input half of the differential oracle for the
//! prover engines: replaying one trace through the pop-to-write-point
//! retraction engine, the whole-journal rebase ablation and the
//! fresh-solver-per-query baseline must produce identical verdict sequences
//! (`tests/solver_properties.rs` asserts this over hundreds of seeds). It
//! plays the same methodological role as the QuickCheck baseline in the
//! paper's §5.2: randomized inputs probing a claimed equivalence — here the
//! engine-independence of verdicts that the relative-completeness argument
//! rests on.

use cpcf::heap::{CRefinement, CSymExpr, Heap, JournalEvent, SVal, Tag};
use cpcf::{Loc, Number, ProverSession};
use folic::{CmpOp, Proof};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::shadow::{assert_heaps_agree, ShadowHeap};

/// Shape parameters for [`HeapTrace::generate`].
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Inclusive range the number of mutation/query steps is drawn from.
    pub steps: (usize, usize),
    /// Maximum number of live branch heaps (clones sharing a journal
    /// prefix, as sibling evaluation branches do).
    pub max_branches: usize,
    /// Probability that a step forks a new branch before mutating.
    pub fork_probability: f64,
    /// Inclusive range the initial opaque allocation count is drawn from.
    pub initial_locs: (usize, usize),
    /// Inclusive range integer constants are drawn from.
    pub int_range: (i64, i64),
    /// Whether the mutation mix includes difference-constraint chains and
    /// cycles (contradictory and satisfiable) — the difference-logic
    /// module's native fragment. Off by default: contradictory cycles
    /// multiply budget-limited (`Ambiguous`) queries whose outcome is
    /// trajectory-sensitive, so the bit-identical engine-equivalence
    /// differentials keep the chain-free corpus while the DL refinement
    /// differential opts in.
    pub diff_chains: bool,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            steps: (5, 12),
            max_branches: 4,
            fork_probability: 0.3,
            initial_locs: (2, 4),
            int_range: (-20, 20),
            diff_chains: false,
        }
    }
}

impl TraceConfig {
    /// The default shape with difference-constraint chains enabled.
    pub fn with_diff_chains() -> Self {
        TraceConfig {
            diff_chains: true,
            ..TraceConfig::default()
        }
    }
}

/// One step of a trace: the heap snapshot visible to the prover at query
/// time, and the numeric query asked of it. Snapshots taken on the same
/// branch share journal prefixes, so an incremental session replaying the
/// trace synchronizes by deltas exactly as it would under the evaluator.
#[derive(Debug, Clone)]
pub struct TraceStep {
    /// The heap state at query time.
    pub heap: Heap,
    /// The queried location.
    pub loc: Loc,
    /// The comparison operator.
    pub op: CmpOp,
    /// The right-hand side of the comparison.
    pub rhs: CSymExpr,
}

/// A generated heap trace: an ordered list of snapshot/query steps.
#[derive(Debug, Clone)]
pub struct HeapTrace {
    /// The seed the trace was generated from (for failure reporting).
    pub seed: u64,
    /// The snapshot/query steps, in replay order.
    pub steps: Vec<TraceStep>,
}

impl HeapTrace {
    /// Generates the trace for `seed` under the given shape parameters.
    /// Identical inputs produce identical traces.
    pub fn generate(seed: u64, config: &TraceConfig) -> HeapTrace {
        HeapTrace::generate_impl(seed, config, false)
    }

    /// [`HeapTrace::generate`] with the shadow-heap differential check
    /// enabled: every branch in the pool additionally maintains a
    /// [`ShadowHeap`] (the old deep-clone representation) replaying the
    /// exact same mutation sequence, and after every mutation the persistent
    /// heap is asserted to agree with it on journals, fingerprints, stored
    /// values and write-points. The generated trace is identical to
    /// `generate`'s for the same seed — both modes consume the RNG
    /// identically.
    ///
    /// # Panics
    ///
    /// Panics at the first divergence between the representations.
    pub fn generate_checked(seed: u64, config: &TraceConfig) -> HeapTrace {
        HeapTrace::generate_impl(seed, config, true)
    }

    fn generate_impl(seed: u64, config: &TraceConfig, check: bool) -> HeapTrace {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut base = Heap::new();
        let mut base_shadow = check.then(ShadowHeap::new);
        let initial = rng.gen_range(config.initial_locs.0..=config.initial_locs.1);
        let locs: Vec<Loc> = (0..initial.max(1))
            .map(|_| {
                if let Some(shadow) = &mut base_shadow {
                    shadow.alloc_fresh_opaque();
                }
                base.alloc_fresh_opaque()
            })
            .collect();
        let mut pool: Vec<Branch> = vec![Branch {
            heap: base,
            shadow: base_shadow,
            locs,
        }];
        let mut steps = Vec::new();
        for step in 0..rng.gen_range(config.steps.0..=config.steps.1) {
            let index = rng.gen_range(0..pool.len());
            if pool.len() < config.max_branches && rng.gen_bool(config.fork_probability) {
                let fork = pool[index].clone();
                pool.push(fork);
            }
            {
                let branch = &mut pool[index];
                let op = random_op(&mut rng, config, &branch.heap, &branch.locs);
                let new_locs = apply_op(&mut branch.heap, &op);
                if let Some(shadow) = &mut branch.shadow {
                    let shadow_locs = apply_op(shadow, &op);
                    assert_eq!(
                        new_locs, shadow_locs,
                        "seed {seed} step {step}: allocation sequences diverge"
                    );
                    assert_heaps_agree(
                        &branch.heap,
                        shadow,
                        &format!("seed {seed} step {step} ({op:?})"),
                    );
                }
                branch.locs.extend(new_locs);
            }
            // Query a random pool member — not necessarily the branch just
            // mutated, so replays interleave branch switches with growth.
            let branch = &pool[rng.gen_range(0..pool.len())];
            steps.push(TraceStep {
                heap: branch.heap.clone(),
                loc: branch.locs[rng.gen_range(0..branch.locs.len())],
                op: random_cmp(&mut rng),
                rhs: random_sym_expr(&mut rng, config, &branch.locs),
            });
        }
        HeapTrace { seed, steps }
    }

    /// The largest number of non-monotone overwrites (journalled
    /// [`JournalEvent::Rebase`] events) visible in any single step's
    /// snapshot — how hard this trace exercises the retraction machinery.
    pub fn rebases(&self) -> usize {
        self.steps
            .iter()
            .map(|step| {
                step.heap
                    .journal_suffix(0)
                    .filter(|entry| matches!(entry.event, JournalEvent::Rebase { .. }))
                    .count()
            })
            .max()
            .unwrap_or(0)
    }

    /// Replays every step's query through `session`, returning the verdict
    /// sequence. Two engines are observationally equivalent on this trace
    /// exactly when their replay results are equal.
    pub fn replay(&self, session: &mut ProverSession) -> Vec<Proof> {
        self.steps
            .iter()
            .map(|step| session.prove_num(&step.heap, step.loc, step.op, &step.rhs))
            .collect()
    }
}

fn random_cmp(rng: &mut StdRng) -> CmpOp {
    match rng.gen_range(0..6) {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        _ => CmpOp::Ge,
    }
}

/// A random atomic operand: a location or a small constant.
fn random_operand(rng: &mut StdRng, config: &TraceConfig, locs: &[Loc]) -> CSymExpr {
    if rng.gen_bool(0.5) && !locs.is_empty() {
        CSymExpr::loc(locs[rng.gen_range(0..locs.len())])
    } else {
        CSymExpr::int(rng.gen_range(config.int_range.0..=config.int_range.1))
    }
}

/// A random symbolic expression over the heap's locations, kept inside the
/// *linear* fragment (multiplication and division only by constants) so the
/// bounded LIA search decides every instance quickly — the property under
/// test is the engines' encoding bookkeeping, not solver completeness on
/// nonlinear arithmetic.
fn random_sym_expr(rng: &mut StdRng, config: &TraceConfig, locs: &[Loc]) -> CSymExpr {
    match rng.gen_range(0..8) {
        0..=2 => random_operand(rng, config, locs),
        3 => CSymExpr::Add(
            Box::new(random_operand(rng, config, locs)),
            Box::new(random_operand(rng, config, locs)),
        ),
        4 => CSymExpr::Sub(
            Box::new(random_operand(rng, config, locs)),
            Box::new(random_operand(rng, config, locs)),
        ),
        5 => CSymExpr::Mul(
            Box::new(CSymExpr::int(rng.gen_range(-3i64..=3))),
            Box::new(random_operand(rng, config, locs)),
        ),
        6 => {
            let divisor = [-3i64, -2, 2, 3][rng.gen_range(0..4usize)];
            CSymExpr::Div(
                Box::new(random_operand(rng, config, locs)),
                Box::new(CSymExpr::int(divisor)),
            )
        }
        _ => {
            let divisor = [-3i64, -2, 2, 3][rng.gen_range(0..4usize)];
            CSymExpr::Mod(
                Box::new(random_operand(rng, config, locs)),
                Box::new(CSymExpr::int(divisor)),
            )
        }
    }
}

/// One branch of the generator's heap pool: the persistent heap, its
/// optional deep-clone shadow (differential mode only), and the locations
/// allocated on the branch so far.
#[derive(Debug, Clone)]
struct Branch {
    heap: Heap,
    shadow: Option<ShadowHeap>,
    locs: Vec<Loc>,
}

/// One generated mutation, replayable against any [`TraceHeap`]. Keeping
/// the mutation as data (instead of applying it inline) is what lets the
/// differential mode drive the persistent heap and the deep-clone shadow
/// with the *same* operation sequence.
#[derive(Debug, Clone)]
enum TraceOp {
    /// Append a numeric refinement to an opaque location.
    RefineNum(Loc, CmpOp, CSymExpr),
    /// Append a tag refinement to a location (skipped if not opaque).
    RefineTag(Loc, Tag),
    /// Allocate a fresh opaque value.
    AllocOpaque,
    /// Allocate a concrete integer.
    AllocInt(i64),
    /// Append `(arg, res)` to the memo table at `f` (skipped if `f` is not
    /// opaque or already maps `arg`).
    MemoEntry { f: Loc, arg: Loc, res: Loc },
    /// Structurally overwrite an opaque location with a pair of fresh
    /// opaques — the non-monotone mutation that journals rebases.
    OverwritePair(Loc),
    /// A chain of difference refinements (`next ≥ prev + c` or the
    /// equivalent `prev ≤ next − c`) over distinct opaque locations,
    /// optionally closed into a cycle whose telescoped offset sum makes it
    /// contradictory (a negative constraint cycle) or satisfiable. This is
    /// the difference-logic fragment, generated natively so the engine
    /// differentials exercise the DL module's routing, refutations and
    /// models rather than meeting difference constraints only by accident.
    DiffChain(Vec<(Loc, CmpOp, CSymExpr)>),
    /// The drawn mutation target turned out ineligible; mutate nothing.
    Nop,
}

/// The mutation interface shared by [`Heap`] and [`ShadowHeap`], so one
/// [`TraceOp`] stream drives both representations.
pub(crate) trait TraceHeap {
    fn th_alloc(&mut self, value: SVal) -> Loc;
    fn th_alloc_fresh_opaque(&mut self) -> Loc;
    fn th_refine(&mut self, loc: Loc, refinement: CRefinement);
    fn th_set(&mut self, loc: Loc, value: SVal);
    fn th_get(&self, loc: Loc) -> &SVal;
}

impl TraceHeap for Heap {
    fn th_alloc(&mut self, value: SVal) -> Loc {
        self.alloc(value)
    }
    fn th_alloc_fresh_opaque(&mut self) -> Loc {
        self.alloc_fresh_opaque()
    }
    fn th_refine(&mut self, loc: Loc, refinement: CRefinement) {
        self.refine(loc, refinement);
    }
    fn th_set(&mut self, loc: Loc, value: SVal) {
        self.set(loc, value);
    }
    fn th_get(&self, loc: Loc) -> &SVal {
        self.get(loc)
    }
}

impl TraceHeap for ShadowHeap {
    fn th_alloc(&mut self, value: SVal) -> Loc {
        self.alloc(value)
    }
    fn th_alloc_fresh_opaque(&mut self) -> Loc {
        self.alloc_fresh_opaque()
    }
    fn th_refine(&mut self, loc: Loc, refinement: CRefinement) {
        self.refine(loc, refinement);
    }
    fn th_set(&mut self, loc: Loc, value: SVal) {
        self.set(loc, value);
    }
    fn th_get(&self, loc: Loc) -> &SVal {
        self.get(loc)
    }
}

/// Draws one random mutation: mostly monotone growth (numeric and tag
/// refinements, allocations, memo entries), with a solid share of the
/// non-monotone structural overwrites that force engines to retract or
/// re-encode solver state. Inspects `heap` (the primary representation)
/// only to preserve the historical RNG consumption per case.
fn random_op(rng: &mut StdRng, config: &TraceConfig, heap: &Heap, locs: &[Loc]) -> TraceOp {
    let cases = if config.diff_chains { 14 } else { 12 };
    match rng.gen_range(0..cases) {
        // Numeric refinements: the evaluator's bread and butter along a
        // path condition, and what gives overwrites formulas to retract.
        0..=4 => {
            let loc = locs[rng.gen_range(0..locs.len())];
            if matches!(heap.get(loc), SVal::Opaque { .. }) {
                let rhs = random_sym_expr(rng, config, locs);
                TraceOp::RefineNum(loc, random_cmp(rng), rhs)
            } else {
                TraceOp::Nop
            }
        }
        // A fresh opaque or concrete integer allocation.
        5 | 6 => {
            if rng.gen_bool(0.5) {
                TraceOp::AllocOpaque
            } else {
                TraceOp::AllocInt(rng.gen_range(config.int_range.0..=config.int_range.1))
            }
        }
        // A tag refinement (cache-key relevant, encoding-irrelevant).
        7 => TraceOp::RefineTag(locs[rng.gen_range(0..locs.len())], Tag::Integer),
        // A memo-table entry on an opaque function (functionality).
        8 | 9 => TraceOp::MemoEntry {
            f: locs[rng.gen_range(0..locs.len())],
            arg: locs[rng.gen_range(0..locs.len())],
            res: locs[rng.gen_range(0..locs.len())],
        },
        // A non-monotone overwrite: structural refinement to a pair, as a
        // `pair?` tag test does to an opaque value. When the victim already
        // contributed formulas (a numeric refinement, a memo table, or a
        // memo reference), this journals a rebase.
        10 | 11 => TraceOp::OverwritePair(locs[rng.gen_range(0..locs.len())]),
        // A difference-constraint chain, optionally closed into a cycle.
        _ => random_diff_chain(rng, heap, locs),
    }
}

/// Draws a difference chain over 2–4 distinct opaque locations:
/// `l₁ ⋚ l₀ + c₀, l₂ ⋚ l₁ + c₁, …`, each edge rendered either as
/// `next ≥ prev + c` or the equivalent `prev ≤ next − c` (so atom
/// normalization is exercised from both directions). With probability 0.6
/// the chain is closed back to its first location; the closing offset is
/// tuned so half the cycles telescope to a contradiction (the sum of the
/// `c`s ends up positive — a negative cycle in the constraint graph) and
/// half stay satisfiable.
fn random_diff_chain(rng: &mut StdRng, heap: &Heap, locs: &[Loc]) -> TraceOp {
    let opaque: Vec<Loc> = locs
        .iter()
        .copied()
        .filter(|&loc| matches!(heap.get(loc), SVal::Opaque { .. }))
        .collect();
    if opaque.len() < 2 {
        return TraceOp::Nop;
    }
    // `to ≥ from + c`, surface form drawn at random.
    let edge = |rng: &mut StdRng, from: Loc, to: Loc, c: i64| {
        if rng.gen_bool(0.5) {
            let rhs = CSymExpr::Add(Box::new(CSymExpr::loc(from)), Box::new(CSymExpr::int(c)));
            (to, CmpOp::Ge, rhs)
        } else {
            let rhs = CSymExpr::Sub(Box::new(CSymExpr::loc(to)), Box::new(CSymExpr::int(c)));
            (from, CmpOp::Le, rhs)
        }
    };
    let len = rng.gen_range(2..=opaque.len().min(4));
    let start = rng.gen_range(0..opaque.len());
    let chain: Vec<Loc> = (0..len)
        .map(|i| opaque[(start + i) % opaque.len()])
        .collect();
    let mut refinements = Vec::new();
    let mut sum = 0i64;
    for window in chain.windows(2) {
        let c = rng.gen_range(-5i64..=5);
        sum += c;
        refinements.push(edge(rng, window[0], window[1], c));
    }
    if rng.gen_bool(0.6) {
        // Close the cycle. The constraints telescope to `0 ≥ sum + c`, so
        // the closing offset decides satisfiability outright.
        let c = if rng.gen_bool(0.5) {
            1 - sum + rng.gen_range(0i64..=4) // contradictory: sum + c ≥ 1
        } else {
            -sum - rng.gen_range(0i64..=4) // satisfiable: sum + c ≤ 0
        };
        refinements.push(edge(rng, chain[len - 1], chain[0], c));
    }
    TraceOp::DiffChain(refinements)
}

/// Applies one mutation, returning the locations it allocated (identical
/// across representations because allocation counters stay in lockstep).
/// Eligibility checks (is the target opaque, is the memo argument fresh) run
/// against `heap`'s state at application time; in differential mode both
/// representations hold the same state, so they decide identically.
fn apply_op<H: TraceHeap>(heap: &mut H, op: &TraceOp) -> Vec<Loc> {
    match op {
        TraceOp::RefineNum(loc, cmp, rhs) => {
            heap.th_refine(*loc, CRefinement::NumCmp(*cmp, rhs.clone()));
            Vec::new()
        }
        TraceOp::RefineTag(loc, tag) => {
            if matches!(heap.th_get(*loc), SVal::Opaque { .. }) {
                heap.th_refine(*loc, CRefinement::Is(tag.clone()));
            }
            Vec::new()
        }
        TraceOp::AllocOpaque => vec![heap.th_alloc_fresh_opaque()],
        TraceOp::AllocInt(n) => vec![heap.th_alloc(SVal::Num(Number::Int(*n)))],
        TraceOp::MemoEntry { f, arg, res } => {
            if let SVal::Opaque {
                refinements,
                entries,
            } = heap.th_get(*f).clone()
            {
                let mut entries = entries;
                if !entries.iter().any(|(a, _)| *a == *arg) {
                    entries.push((*arg, *res));
                    heap.th_set(
                        *f,
                        SVal::Opaque {
                            refinements,
                            entries,
                        },
                    );
                }
            }
            Vec::new()
        }
        TraceOp::OverwritePair(loc) => {
            if matches!(heap.th_get(*loc), SVal::Opaque { .. }) {
                let car = heap.th_alloc_fresh_opaque();
                let cdr = heap.th_alloc_fresh_opaque();
                heap.th_set(*loc, SVal::Pair(car, cdr));
                vec![car, cdr]
            } else {
                Vec::new()
            }
        }
        TraceOp::DiffChain(refinements) => {
            for (loc, cmp, rhs) in refinements {
                if matches!(heap.th_get(*loc), SVal::Opaque { .. }) {
                    heap.th_refine(*loc, CRefinement::NumCmp(*cmp, rhs.clone()));
                }
            }
            Vec::new()
        }
        TraceOp::Nop => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_reproducible_per_seed() {
        let config = TraceConfig::default();
        let a = HeapTrace::generate(42, &config);
        let b = HeapTrace::generate(42, &config);
        assert_eq!(a.steps.len(), b.steps.len());
        for (x, y) in a.steps.iter().zip(&b.steps) {
            assert_eq!(x.heap.fingerprint(), y.heap.fingerprint());
            assert_eq!((x.loc, x.op), (y.loc, y.op));
            assert_eq!(x.rhs, y.rhs);
        }
        let c = HeapTrace::generate(43, &config);
        assert!(
            a.steps.len() != c.steps.len()
                || a.steps
                    .iter()
                    .zip(&c.steps)
                    .any(|(x, y)| x.heap.fingerprint() != y.heap.fingerprint()),
            "different seeds should produce different traces"
        );
    }

    #[test]
    fn the_seed_corpus_exercises_non_monotone_overwrites() {
        let config = TraceConfig::default();
        let rebasing = (0..50)
            .filter(|&seed| HeapTrace::generate(seed, &config).rebases() > 0)
            .count();
        assert!(
            rebasing >= 10,
            "only {rebasing}/50 seeds journalled a rebase; the generator no \
             longer exercises the retraction machinery"
        );
    }

    #[test]
    fn replay_answers_every_query() {
        let trace = HeapTrace::generate(7, &TraceConfig::default());
        let mut session = ProverSession::new();
        let verdicts = trace.replay(&mut session);
        assert_eq!(verdicts.len(), trace.steps.len());
    }

    #[test]
    fn checked_generation_produces_the_same_traces() {
        // The differential mode must not perturb the RNG: its traces are
        // exactly the plain generator's — with and without the
        // difference-chain mutation in the mix.
        for config in [TraceConfig::default(), TraceConfig::with_diff_chains()] {
            for seed in [0u64, 7, 42] {
                let plain = HeapTrace::generate(seed, &config);
                let checked = HeapTrace::generate_checked(seed, &config);
                assert_eq!(plain.steps.len(), checked.steps.len());
                for (a, b) in plain.steps.iter().zip(&checked.steps) {
                    assert_eq!(a.heap.fingerprint(), b.heap.fingerprint());
                    assert_eq!((a.loc, a.op), (b.loc, b.op));
                    assert_eq!(a.rhs, b.rhs);
                }
            }
        }
    }

    /// Recovers the `to ≥ from + c` edge a [`random_diff_chain`] refinement
    /// encodes, whichever surface form it was rendered in.
    fn decode_edge(refinement: &(Loc, CmpOp, CSymExpr)) -> (Loc, Loc, i64) {
        match refinement {
            (to, CmpOp::Ge, CSymExpr::Add(a, b)) => match (a.as_ref(), b.as_ref()) {
                (CSymExpr::Loc(from), CSymExpr::Const(c)) => (*from, *to, *c),
                other => panic!("unexpected ≥ shape: {other:?}"),
            },
            (from, CmpOp::Le, CSymExpr::Sub(a, b)) => match (a.as_ref(), b.as_ref()) {
                (CSymExpr::Loc(to), CSymExpr::Const(c)) => (*from, *to, *c),
                other => panic!("unexpected ≤ shape: {other:?}"),
            },
            other => panic!("not a difference edge: {other:?}"),
        }
    }

    #[test]
    fn the_generator_emits_difference_chains_and_both_cycle_polarities() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut heap = Heap::new();
        let locs: Vec<Loc> = (0..4).map(|_| heap.alloc_fresh_opaque()).collect();
        let (mut chains, mut contradictory, mut satisfiable, mut open) = (0u32, 0u32, 0u32, 0u32);
        for _ in 0..2000 {
            let TraceOp::DiffChain(refinements) = random_diff_chain(&mut rng, &heap, &locs) else {
                panic!("four opaque locations always admit a chain");
            };
            chains += 1;
            let edges: Vec<(Loc, Loc, i64)> = refinements.iter().map(decode_edge).collect();
            let mut nodes: Vec<Loc> = edges.iter().flat_map(|&(f, t, _)| [f, t]).collect();
            nodes.sort();
            nodes.dedup();
            // A path over k nodes has k − 1 edges; a closed cycle has k.
            if edges.len() == nodes.len() {
                let sum: i64 = edges.iter().map(|&(_, _, c)| c).sum();
                if sum > 0 {
                    contradictory += 1;
                } else {
                    satisfiable += 1;
                }
            } else {
                assert_eq!(edges.len() + 1, nodes.len(), "neither path nor cycle");
                open += 1;
            }
        }
        assert_eq!(chains, 2000);
        assert!(
            contradictory >= 200 && satisfiable >= 200 && open >= 200,
            "the generator must mix open chains with cycles of both \
             polarities: {contradictory} contradictory / {satisfiable} \
             satisfiable / {open} open"
        );
    }

    #[test]
    fn difference_chains_survive_into_generated_traces() {
        // Shape-level coverage: a healthy share of seeds produce snapshots
        // carrying at least one two-location difference refinement, so the
        // differential suites downstream actually exercise the DL fragment.
        let config = TraceConfig::with_diff_chains();
        let is_diff_edge = |refinement: &CRefinement| {
            matches!(
                refinement,
                CRefinement::NumCmp(_, CSymExpr::Add(a, b) | CSymExpr::Sub(a, b))
                    if matches!(
                        (a.as_ref(), b.as_ref()),
                        (CSymExpr::Loc(_), CSymExpr::Const(_))
                    )
            )
        };
        let with_chains = (0..50)
            .filter(|&seed| {
                HeapTrace::generate(seed, &config).steps.iter().any(|step| {
                    step.heap.journal_suffix(0).any(|entry| {
                        let JournalEvent::Refined(loc, index) = entry.event else {
                            return false;
                        };
                        match step.heap.get(loc) {
                            SVal::Opaque { refinements, .. } => {
                                refinements.get(index).is_some_and(is_diff_edge)
                            }
                            _ => false,
                        }
                    })
                })
            })
            .count();
        assert!(
            with_chains >= 10,
            "only {with_chains}/50 seeds carried a difference refinement"
        );
    }

    #[test]
    fn checked_generation_exercises_rebases() {
        // The shadow comparison must cover the non-monotone path, not just
        // append-only growth.
        let config = TraceConfig::default();
        let rebasing = (0..50)
            .filter(|&seed| HeapTrace::generate_checked(seed, &config).rebases() > 0)
            .count();
        assert!(rebasing >= 10, "only {rebasing}/50 checked seeds rebased");
    }
}
