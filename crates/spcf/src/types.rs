//! Simple types of Symbolic PCF: the base integer type and arrow types.

use std::fmt;

/// A simple type: the base type of integers or a function type.
///
/// The paper's base type is `nat`; we follow the worked example (which uses
/// OCaml `int`) and use full integers — nothing in the semantics depends on
/// non-negativity, and benchmarks such as `1/(100 - n)` are more natural
/// over `int`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// The base type of integers.
    Int,
    /// A function type `T₁ → T₂`.
    Arrow(Box<Type>, Box<Type>),
}

impl Type {
    /// Constructs the function type `from → to`.
    pub fn arrow(from: Type, to: Type) -> Type {
        Type::Arrow(Box::new(from), Box::new(to))
    }

    /// True if this is the base type.
    pub fn is_base(&self) -> bool {
        matches!(self, Type::Int)
    }

    /// True if this is a function type.
    pub fn is_arrow(&self) -> bool {
        matches!(self, Type::Arrow(_, _))
    }

    /// The domain and codomain, if this is a function type.
    pub fn as_arrow(&self) -> Option<(&Type, &Type)> {
        match self {
            Type::Arrow(from, to) => Some((from, to)),
            Type::Int => None,
        }
    }

    /// The *order* of the type: 0 for base, `max(dom+1, cod)` for arrows.
    ///
    /// This matches the "highest function order" column of the paper's
    /// Table 1 (e.g. `int → int` has order 1, `(int → int) → int` order 2).
    pub fn order(&self) -> u32 {
        match self {
            Type::Int => 0,
            Type::Arrow(from, to) => (from.order() + 1).max(to.order()),
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => f.write_str("int"),
            Type::Arrow(from, to) => write!(f, "(-> {from} {to})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrow_accessors() {
        let t = Type::arrow(Type::Int, Type::arrow(Type::Int, Type::Int));
        assert!(t.is_arrow());
        assert!(!t.is_base());
        let (dom, cod) = t.as_arrow().expect("arrow");
        assert_eq!(dom, &Type::Int);
        assert!(cod.is_arrow());
    }

    #[test]
    fn order_matches_paper_convention() {
        let int = Type::Int;
        assert_eq!(int.order(), 0);
        let first = Type::arrow(Type::Int, Type::Int);
        assert_eq!(first.order(), 1);
        let second = Type::arrow(first.clone(), Type::Int);
        assert_eq!(second.order(), 2);
        let third = Type::arrow(second.clone(), Type::Int);
        assert_eq!(third.order(), 3);
        // Order is not sensitive to the codomain alone.
        let curried = Type::arrow(Type::Int, first);
        assert_eq!(curried.order(), 1);
    }

    #[test]
    fn display_is_sexpr_like() {
        let t = Type::arrow(Type::arrow(Type::Int, Type::Int), Type::Int);
        assert_eq!(t.to_string(), "(-> (-> int int) int)");
    }
}
