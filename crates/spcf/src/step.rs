//! The reduction relation `⟨E, Σ⟩ ⟼ ⟨E′, Σ′⟩` (Fig. 2).
//!
//! Reduction is non-deterministic: a state may have several successors, one
//! per branch the symbolic execution must consider (conditionals on opaque
//! values, partial primitives, and the several shapes an opaque function can
//! take when applied to a higher-order argument).
//!
//! The rules implemented here are exactly the paper's:
//!
//! * `Opq`, `Conc` — allocation of values;
//! * `IfTrue` / `IfFalse` — conditionals via the truth of the scrutinee;
//! * `Prim` — primitive application through [`crate::delta`];
//! * `AppLam` — β-reduction;
//! * `AppOpq1` — applying an opaque function to a base-typed argument
//!   introduces (or, without case maps, skips) a memoising `case` map;
//! * `AppOpq2`, `AppOpq3`, `AppHavoc` — the three shapes an opaque function
//!   can take when its argument is behavioural (ignore it, delay it, or
//!   explore it);
//! * `AppCase1` / `AppCase2` — lookups in and extensions of `case` maps;
//! * `Close`, `Error` — congruence and error propagation.

use crate::delta::{branch_truth, delta, PrimOutcome};
use crate::heap::{Heap, Loc, Storeable};
use crate::prove::Prover;
use crate::syntax::Expr;
use crate::types::Type;

/// A machine state `⟨E, Σ⟩`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct State {
    /// The expression under evaluation.
    pub expr: Expr,
    /// The symbolic heap.
    pub heap: Heap,
}

impl State {
    /// The initial state for a program.
    pub fn initial(program: Expr) -> State {
        State {
            expr: program,
            heap: Heap::new(),
        }
    }

    /// True if the state is an answer (a location or an error).
    pub fn is_final(&self) -> bool {
        self.expr.is_answer()
    }
}

/// Options controlling the reduction rules.
#[derive(Debug, Clone, Copy)]
pub struct StepOptions {
    /// Use `case` maps to memoise applications of opaque first-order
    /// functions (the paper's completeness device). Disabling this recovers
    /// the behaviour of the original SCPCF semantics and is exposed for the
    /// ablation benchmark.
    pub use_case_maps: bool,
}

impl Default for StepOptions {
    fn default() -> Self {
        StepOptions {
            use_case_maps: true,
        }
    }
}

/// Computes every successor of a state. An empty vector means the state is
/// final (an answer) or stuck.
pub fn step(prover: &Prover, state: &State, options: &StepOptions) -> Vec<State> {
    if state.is_final() {
        return Vec::new();
    }
    reduce(prover, &state.expr, &state.heap, options)
        .into_iter()
        .map(|(expr, heap)| State { expr, heap })
        .collect()
}

/// Reduces the leftmost-innermost redex of `expr` under call-by-value
/// evaluation contexts, returning all possible `(expression, heap)`
/// successors.
fn reduce(prover: &Prover, expr: &Expr, heap: &Heap, options: &StepOptions) -> Vec<(Expr, Heap)> {
    match expr {
        // Answers have no successors.
        Expr::Loc(_) | Expr::Err(_) => Vec::new(),
        // A free variable is a stuck state; well-typed closed programs never
        // reach it, so the path simply dies.
        Expr::Var(_) => Vec::new(),

        // [Opq] — allocate (reusing the label's location if already present).
        Expr::Opaque(ty, label) => {
            let mut heap = heap.clone();
            let loc = heap.alloc_opaque(ty.clone(), *label);
            vec![(Expr::Loc(loc), heap)]
        }

        // [Conc] — allocate concrete values.
        Expr::Num(n) => {
            let mut heap = heap.clone();
            let loc = heap.alloc(Storeable::Num(*n));
            vec![(Expr::Loc(loc), heap)]
        }
        Expr::Lam {
            param,
            param_ty,
            body,
        } => {
            let mut heap = heap.clone();
            let loc = heap.alloc(Storeable::Lam {
                param: param.clone(),
                param_ty: param_ty.clone(),
                body: (**body).clone(),
            });
            vec![(Expr::Loc(loc), heap)]
        }

        // Recursion unfolds by substituting the fixpoint for its own name.
        Expr::Fix { name, body, .. } => {
            vec![((**body).subst_expr(name, expr), heap.clone())]
        }

        // [IfTrue] / [IfFalse] — and congruence on the scrutinee.
        Expr::If(condition, then_branch, else_branch) => match condition.as_ref() {
            Expr::Err(blame) => vec![(Expr::Err(*blame), heap.clone())],
            Expr::Loc(loc) => branch_truth(prover, heap, *loc)
                .into_iter()
                .map(|(is_true, branch_heap)| {
                    let next = if is_true {
                        (**then_branch).clone()
                    } else {
                        (**else_branch).clone()
                    };
                    (next, branch_heap)
                })
                .collect(),
            _ => wrap(reduce(prover, condition, heap, options), |c| {
                Expr::If(Box::new(c), then_branch.clone(), else_branch.clone())
            }),
        },

        // [Prim] — evaluate arguments left to right, then apply δ.
        Expr::Prim(op, args, label) => {
            // Propagate an error from any argument position.
            if let Some(blame) = args.iter().find_map(|a| match a {
                Expr::Err(b) => Some(*b),
                _ => None,
            }) {
                return vec![(Expr::Err(blame), heap.clone())];
            }
            match args.iter().position(|a| !matches!(a, Expr::Loc(_))) {
                Some(index) => {
                    let successors = reduce(prover, &args[index], heap, options);
                    successors
                        .into_iter()
                        .map(|(arg, new_heap)| {
                            let mut new_args = args.clone();
                            new_args[index] = arg;
                            (Expr::Prim(*op, new_args, *label), new_heap)
                        })
                        .collect()
                }
                None => {
                    let locs: Vec<Loc> = args
                        .iter()
                        .map(|a| match a {
                            Expr::Loc(l) => *l,
                            _ => unreachable!("checked above"),
                        })
                        .collect();
                    delta(prover, heap, *op, &locs, *label)
                        .into_iter()
                        .map(|(outcome, new_heap)| {
                            let next = match outcome {
                                PrimOutcome::Value(loc) => Expr::Loc(loc),
                                PrimOutcome::Error(blame) => Expr::Err(blame),
                            };
                            (next, new_heap)
                        })
                        .collect()
                }
            }
        }

        // Application: evaluate the operator, then the operand, then apply.
        Expr::App(function, argument) => match function.as_ref() {
            Expr::Err(blame) => vec![(Expr::Err(*blame), heap.clone())],
            Expr::Loc(function_loc) => match argument.as_ref() {
                Expr::Err(blame) => vec![(Expr::Err(*blame), heap.clone())],
                Expr::Loc(argument_loc) => {
                    apply(prover, heap, *function_loc, *argument_loc, options)
                }
                _ => wrap(reduce(prover, argument, heap, options), |a| {
                    Expr::App(function.clone(), Box::new(a))
                }),
            },
            _ => wrap(reduce(prover, function, heap, options), |f| {
                Expr::App(Box::new(f), argument.clone())
            }),
        },
    }
}

/// Congruence: wraps each successor expression back into its context.
fn wrap<F>(successors: Vec<(Expr, Heap)>, rebuild: F) -> Vec<(Expr, Heap)>
where
    F: Fn(Expr) -> Expr,
{
    successors
        .into_iter()
        .map(|(expr, heap)| {
            // [Error] — an error discards its evaluation context.
            if let Expr::Err(blame) = expr {
                (Expr::Err(blame), heap)
            } else {
                (rebuild(expr), heap)
            }
        })
        .collect()
}

/// Application of the value at `function_loc` to the value at
/// `argument_loc`: rules `AppLam`, `AppOpq1`–`3`, `AppHavoc`, `AppCase1`–`2`.
fn apply(
    prover: &Prover,
    heap: &Heap,
    function_loc: Loc,
    argument_loc: Loc,
    options: &StepOptions,
) -> Vec<(Expr, Heap)> {
    let _ = prover;
    match heap.get(function_loc).clone() {
        // [AppLam]
        Storeable::Lam { param, body, .. } => {
            vec![(body.subst(&param, argument_loc), heap.clone())]
        }

        // Applying an opaque function.
        Storeable::Opaque {
            ty: Type::Arrow(domain, codomain),
            ..
        } => {
            let domain = *domain;
            let codomain = *codomain;
            if domain.is_base() {
                // [AppOpq1] — introduce a case map memoising this application.
                let mut new_heap = heap.clone();
                let result = new_heap.alloc_fresh_opaque(codomain.clone());
                if options.use_case_maps {
                    new_heap.set(
                        function_loc,
                        Storeable::Case {
                            result_ty: codomain,
                            entries: vec![(argument_loc, result)],
                        },
                    );
                }
                vec![(Expr::Loc(result), new_heap)]
            } else {
                // Behavioural argument: the unknown context may ignore it,
                // delay it, or explore it.
                let mut successors = Vec::new();

                // [AppOpq2] — constant function ignoring its argument.
                {
                    let mut new_heap = heap.clone();
                    let result = new_heap.alloc_fresh_opaque(codomain.clone());
                    new_heap.set(
                        function_loc,
                        Storeable::Lam {
                            param: "_ignored".to_string(),
                            param_ty: domain.clone(),
                            body: Expr::Loc(result),
                        },
                    );
                    successors.push((Expr::Loc(result), new_heap));
                }

                // [AppOpq3] — delay exploration inside a returned closure
                // (only possible when the codomain is itself a function).
                if let Some((result_domain, _)) = codomain.as_arrow() {
                    let mut new_heap = heap.clone();
                    let delayed =
                        new_heap.alloc_fresh_opaque(Type::arrow(domain.clone(), codomain.clone()));
                    // V = λy. ((L1 x) y)
                    let wrapper_body = Expr::lam(
                        "y",
                        result_domain.clone(),
                        Expr::app(
                            Expr::app(Expr::Loc(delayed), Expr::var("x")),
                            Expr::var("y"),
                        ),
                    );
                    new_heap.set(
                        function_loc,
                        Storeable::Lam {
                            param: "x".to_string(),
                            param_ty: domain.clone(),
                            body: wrapper_body,
                        },
                    );
                    // Result: [Lx/x] V
                    let result = Expr::lam(
                        "y",
                        result_domain.clone(),
                        Expr::app(
                            Expr::app(Expr::Loc(delayed), Expr::Loc(argument_loc)),
                            Expr::var("y"),
                        ),
                    );
                    successors.push((result, new_heap));
                }

                // [AppHavoc] — explore the argument's behaviour: apply it to a
                // fresh unknown and feed the result to another unknown context.
                {
                    let (argument_domain, argument_codomain) = domain
                        .as_arrow()
                        .map(|(d, c)| (d.clone(), c.clone()))
                        .expect("behavioural argument has an arrow type");
                    let mut new_heap = heap.clone();
                    let probe = new_heap.alloc_fresh_opaque(argument_domain);
                    let continuation = new_heap
                        .alloc_fresh_opaque(Type::arrow(argument_codomain, codomain.clone()));
                    new_heap.set(
                        function_loc,
                        Storeable::Lam {
                            param: "x".to_string(),
                            param_ty: domain.clone(),
                            body: Expr::app(
                                Expr::Loc(continuation),
                                Expr::app(Expr::var("x"), Expr::Loc(probe)),
                            ),
                        },
                    );
                    let result = Expr::app(
                        Expr::Loc(continuation),
                        Expr::app(Expr::Loc(argument_loc), Expr::Loc(probe)),
                    );
                    successors.push((result, new_heap));
                }

                successors
            }
        }

        // [AppCase1] / [AppCase2]
        Storeable::Case { result_ty, entries } => {
            if let Some((_, result)) = entries.iter().find(|(arg, _)| *arg == argument_loc) {
                vec![(Expr::Loc(*result), heap.clone())]
            } else {
                let mut new_heap = heap.clone();
                let result = new_heap.alloc_fresh_opaque(result_ty.clone());
                let mut new_entries = entries.clone();
                new_entries.push((argument_loc, result));
                new_heap.set(
                    function_loc,
                    Storeable::Case {
                        result_ty,
                        entries: new_entries,
                    },
                );
                vec![(Expr::Loc(result), new_heap)]
            }
        }

        // Applying a number or a base-typed opaque: stuck (ill-typed).
        Storeable::Num(_) | Storeable::Opaque { ty: Type::Int, .. } => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::{Label, Op};

    fn run_to_answers(program: Expr, limit: usize) -> Vec<State> {
        let prover = Prover::new();
        let options = StepOptions::default();
        let mut frontier = vec![State::initial(program)];
        let mut answers = Vec::new();
        let mut steps = 0;
        while let Some(state) = frontier.pop() {
            if state.is_final() {
                answers.push(state);
                continue;
            }
            steps += 1;
            assert!(steps < limit, "exceeded step limit");
            frontier.extend(step(&prover, &state, &options));
        }
        answers
    }

    #[test]
    fn literals_allocate_and_finish() {
        let answers = run_to_answers(Expr::Num(5), 10);
        assert_eq!(answers.len(), 1);
        match &answers[0].expr {
            Expr::Loc(l) => assert_eq!(answers[0].heap.num_at(*l), Some(5)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn beta_reduction_works() {
        // (λx. (+ x 1)) 41  ⟼*  42
        let program = Expr::app(
            Expr::lam(
                "x",
                Type::Int,
                Expr::Prim(Op::Add, vec![Expr::var("x"), Expr::Num(1)], Label(0)),
            ),
            Expr::Num(41),
        );
        let answers = run_to_answers(program, 100);
        assert_eq!(answers.len(), 1);
        match &answers[0].expr {
            Expr::Loc(l) => assert_eq!(answers[0].heap.num_at(*l), Some(42)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn conditional_on_concrete_value() {
        let program = Expr::ite(Expr::Num(0), Expr::Num(1), Expr::Num(2));
        let answers = run_to_answers(program, 100);
        assert_eq!(answers.len(), 1);
        match &answers[0].expr {
            Expr::Loc(l) => assert_eq!(answers[0].heap.num_at(*l), Some(2)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn conditional_on_opaque_value_branches() {
        let program = Expr::ite(
            Expr::Opaque(Type::Int, Label(1)),
            Expr::Num(1),
            Expr::Num(2),
        );
        let answers = run_to_answers(program, 100);
        assert_eq!(answers.len(), 2);
    }

    #[test]
    fn division_error_discards_context() {
        // (+ 1 (div 1 0)) ⟼* err
        let program = Expr::Prim(
            Op::Add,
            vec![
                Expr::Num(1),
                Expr::Prim(Op::Div, vec![Expr::Num(1), Expr::Num(0)], Label(3)),
            ],
            Label(4),
        );
        let answers = run_to_answers(program, 100);
        assert_eq!(answers.len(), 1);
        match &answers[0].expr {
            Expr::Err(blame) => {
                assert_eq!(blame.label, Label(3));
                assert_eq!(blame.op, Op::Div);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn opaque_first_order_application_installs_case_map() {
        // (• : int → int) 7
        let program = Expr::app(
            Expr::Opaque(Type::arrow(Type::Int, Type::Int), Label(1)),
            Expr::Num(7),
        );
        let prover = Prover::new();
        let options = StepOptions::default();
        let mut state = State::initial(program);
        let mut fuel = 20;
        while !state.is_final() {
            let successors = step(&prover, &state, &options);
            assert_eq!(successors.len(), 1);
            state = successors.into_iter().next().expect("one successor");
            fuel -= 1;
            assert!(fuel > 0);
        }
        let has_case = state
            .heap
            .iter()
            .any(|(_, s)| matches!(s, Storeable::Case { .. }));
        assert!(has_case, "heap should contain a case map");
    }

    #[test]
    fn opaque_higher_order_application_has_three_shapes() {
        // (• : (int → int) → int) (λx. x)
        let opaque_ty = Type::arrow(Type::arrow(Type::Int, Type::Int), Type::Int);
        let program = Expr::app(
            Expr::Opaque(opaque_ty, Label(1)),
            Expr::lam("x", Type::Int, Expr::var("x")),
        );
        let prover = Prover::new();
        let options = StepOptions::default();
        // Step until the application of the opaque function happens.
        let mut state = State::initial(program);
        loop {
            let successors = step(&prover, &state, &options);
            assert!(!successors.is_empty(), "should not be stuck");
            if successors.len() > 1 {
                // AppOpq2 (ignore) and AppHavoc (explore); AppOpq3 does not
                // apply because the codomain is base-typed.
                assert_eq!(successors.len(), 2);
                break;
            }
            state = successors.into_iter().next().expect("one successor");
        }
    }

    #[test]
    fn fix_unfolds() {
        // fix f. λn. if (zero? n) 0 (f (sub1 n))   applied to 3 evaluates to 0.
        let body = Expr::lam(
            "n",
            Type::Int,
            Expr::ite(
                Expr::Prim(Op::IsZero, vec![Expr::var("n")], Label(0)),
                Expr::Num(0),
                Expr::app(
                    Expr::var("f"),
                    Expr::Prim(Op::Sub1, vec![Expr::var("n")], Label(1)),
                ),
            ),
        );
        let program = Expr::app(
            Expr::fix("f", Type::arrow(Type::Int, Type::Int), body),
            Expr::Num(3),
        );
        let answers = run_to_answers(program, 1000);
        assert_eq!(answers.len(), 1);
        match &answers[0].expr {
            Expr::Loc(l) => assert_eq!(answers[0].heap.num_at(*l), Some(0)),
            other => panic!("unexpected {other:?}"),
        }
    }
}
