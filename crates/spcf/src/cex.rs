//! Counterexample construction (§3.5).
//!
//! At an error state the heap's refinements describe the condition under
//! which the program goes wrong, and — because applications of opaque
//! functions have been decomposed into λ-shapes and `case` maps — only
//! first-order unknowns remain. A model of the translated heap therefore
//! determines a concrete value for every base-typed unknown, and plugging
//! those back into the heap's function shapes reconstructs concrete,
//! possibly higher-order inputs: the counterexample.

use std::collections::BTreeSet;

use folic::Model;

use crate::concrete::eval;
use crate::heap::{Heap, Loc, Storeable};
use crate::prove::Prover;
use crate::syntax::{Blame, Expr, Label, Op};
use crate::types::Type;

/// A concrete counterexample: one concrete expression per opaque source
/// label of the original program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// The error the counterexample triggers.
    pub blame: Blame,
    /// For each opaque label of the program, the concrete value to plug in.
    pub bindings: Vec<(Label, Expr)>,
    /// Whether the counterexample was re-executed concretely and confirmed
    /// to trigger `blame`.
    pub validated: bool,
}

impl Counterexample {
    /// The binding for a particular opaque label, if present.
    pub fn binding(&self, label: Label) -> Option<&Expr> {
        self.bindings
            .iter()
            .find(|(l, _)| *l == label)
            .map(|(_, e)| e)
    }

    /// Instantiates `program` with this counterexample's bindings.
    pub fn instantiate(&self, program: &Expr) -> Expr {
        program.instantiate_opaques(&|label| self.binding(label).cloned())
    }
}

impl std::fmt::Display for Counterexample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}", self.blame)?;
        writeln!(f, "breaking context:")?;
        for (label, expr) in &self.bindings {
            writeln!(f, "  {label} = {expr}")?;
        }
        Ok(())
    }
}

/// Options for counterexample construction.
#[derive(Debug, Clone, Copy)]
pub struct CexOptions {
    /// Re-run the instantiated program concretely and only report the
    /// counterexample if the same blame is reproduced (Theorem 1 made
    /// operational). Strongly recommended.
    pub validate: bool,
    /// Fuel for the validation run.
    pub validation_fuel: u64,
}

impl Default for CexOptions {
    fn default() -> Self {
        CexOptions {
            validate: true,
            validation_fuel: 200_000,
        }
    }
}

/// Attempts to construct (and validate) a counterexample from an error
/// state's heap.
///
/// Returns `None` when the path condition has no model (the path is
/// spurious) or when validation is requested and fails.
pub fn build_counterexample(
    prover: &Prover,
    program: &Expr,
    heap: &Heap,
    blame: Blame,
    options: &CexOptions,
) -> Option<Counterexample> {
    let model = prover.heap_model_opt(heap)?;
    let opaques = program.opaque_labels();
    let bindings: Vec<(Label, Expr)> = opaques
        .iter()
        .map(|(label, ty)| {
            let expr = match heap.opaque_loc(*label) {
                Some(loc) => reconstruct(heap, &model, loc, Some(ty), &mut BTreeSet::new()),
                None => default_value(ty),
            };
            (*label, expr)
        })
        .collect();
    let mut counterexample = Counterexample {
        blame,
        bindings,
        validated: false,
    };
    if options.validate {
        let instantiated = counterexample.instantiate(program);
        let outcome = eval(&instantiated, options.validation_fuel);
        if outcome.is_error_with(&blame) {
            counterexample.validated = true;
        } else {
            return None;
        }
    }
    Some(counterexample)
}

/// Builds a closed expression denoting the value stored at `loc`, using the
/// model for base values.
pub fn reconstruct(
    heap: &Heap,
    model: &Model,
    loc: Loc,
    expected: Option<&Type>,
    visiting: &mut BTreeSet<Loc>,
) -> Expr {
    if visiting.contains(&loc) {
        // A cycle in the reconstructed shapes: fall back to a default value.
        return expected.map(default_value).unwrap_or(Expr::Num(0));
    }
    visiting.insert(loc);
    let result = match heap.try_get(loc) {
        None => expected.map(default_value).unwrap_or(Expr::Num(0)),
        Some(Storeable::Num(n)) => Expr::Num(*n),
        Some(Storeable::Opaque { ty, .. }) => match ty {
            Type::Int => Expr::Num(model.value_or_zero(loc.solver_var())),
            arrow => default_value(arrow),
        },
        Some(Storeable::Lam {
            param,
            param_ty,
            body,
        }) => Expr::Lam {
            param: param.clone(),
            param_ty: param_ty.clone(),
            body: Box::new(reconstruct_body(heap, model, body, visiting)),
        },
        Some(Storeable::Case { result_ty, entries }) => {
            // λx. if (= x k₁) v₁ (if (= x k₂) v₂ … default)
            let mut body = default_value(result_ty);
            for (argument, result) in entries.iter().rev() {
                let key = model.value_or_zero(argument.solver_var());
                let value = reconstruct(heap, model, *result, Some(result_ty), visiting);
                body = Expr::ite(
                    Expr::Prim(
                        Op::Eq,
                        vec![Expr::var("x"), Expr::Num(key)],
                        Label(u32::MAX),
                    ),
                    value,
                    body,
                );
            }
            Expr::lam("x", Type::Int, body)
        }
    };
    visiting.remove(&loc);
    result
}

/// Rewrites a stored λ-body, replacing location references with their
/// reconstructed values.
fn reconstruct_body(heap: &Heap, model: &Model, body: &Expr, visiting: &mut BTreeSet<Loc>) -> Expr {
    match body {
        Expr::Loc(l) => reconstruct(heap, model, *l, None, visiting),
        Expr::Var(_) | Expr::Num(_) | Expr::Opaque(_, _) | Expr::Err(_) => body.clone(),
        Expr::Lam {
            param,
            param_ty,
            body,
        } => Expr::Lam {
            param: param.clone(),
            param_ty: param_ty.clone(),
            body: Box::new(reconstruct_body(heap, model, body, visiting)),
        },
        Expr::App(f, a) => Expr::App(
            Box::new(reconstruct_body(heap, model, f, visiting)),
            Box::new(reconstruct_body(heap, model, a, visiting)),
        ),
        Expr::If(c, t, e) => Expr::If(
            Box::new(reconstruct_body(heap, model, c, visiting)),
            Box::new(reconstruct_body(heap, model, t, visiting)),
            Box::new(reconstruct_body(heap, model, e, visiting)),
        ),
        Expr::Prim(op, args, label) => Expr::Prim(
            *op,
            args.iter()
                .map(|a| reconstruct_body(heap, model, a, visiting))
                .collect(),
            *label,
        ),
        Expr::Fix { name, ty, body } => Expr::Fix {
            name: name.clone(),
            ty: ty.clone(),
            body: Box::new(reconstruct_body(heap, model, body, visiting)),
        },
    }
}

/// A canonical inhabitant of a type: 0 for integers, constant functions for
/// arrows.
pub fn default_value(ty: &Type) -> Expr {
    match ty {
        Type::Int => Expr::Num(0),
        Type::Arrow(domain, codomain) => {
            Expr::lam("_", (**domain).clone(), default_value(codomain))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concrete::EvalOutcome;
    use crate::heap::{Refinement, SymExpr};
    use folic::CmpOp;

    #[test]
    fn default_values_inhabit_their_types() {
        assert_eq!(default_value(&Type::Int), Expr::Num(0));
        let f = default_value(&Type::arrow(Type::Int, Type::Int));
        assert!(matches!(f, Expr::Lam { .. }));
    }

    #[test]
    fn reconstruct_concrete_number() {
        let mut heap = Heap::new();
        let loc = heap.alloc(Storeable::Num(5));
        let model = Model::new();
        let expr = reconstruct(&heap, &model, loc, Some(&Type::Int), &mut BTreeSet::new());
        assert_eq!(expr, Expr::Num(5));
    }

    #[test]
    fn reconstruct_opaque_uses_model() {
        let mut heap = Heap::new();
        let loc = heap.alloc_fresh_opaque(Type::Int);
        let mut model = Model::new();
        model.assign(loc.solver_var(), 100);
        let expr = reconstruct(&heap, &model, loc, Some(&Type::Int), &mut BTreeSet::new());
        assert_eq!(expr, Expr::Num(100));
    }

    #[test]
    fn reconstruct_case_map_builds_conditional_function() {
        let mut heap = Heap::new();
        let key = heap.alloc_fresh_opaque(Type::Int);
        let value = heap.alloc(Storeable::Num(42));
        let function = heap.alloc(Storeable::Case {
            result_ty: Type::Int,
            entries: vec![(key, value)],
        });
        let mut model = Model::new();
        model.assign(key.solver_var(), 7);
        let expr = reconstruct(&heap, &model, function, None, &mut BTreeSet::new());
        // λx. if (= x 7) 42 0 — and indeed it maps 7 to 42.
        let applied = Expr::app(expr, Expr::Num(7));
        match eval(&applied, 10_000) {
            EvalOutcome::Value(v) => assert_eq!(v.as_int(), Some(42)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn worked_example_style_heap_produces_bindings() {
        // Program: ((• : (int→int)) applied inside 1/(100 - (g n))) — here we
        // only exercise the binding construction, not the full engine.
        let opaque_ty = Type::arrow(Type::Int, Type::Int);
        let program = Expr::app(Expr::Opaque(opaque_ty.clone(), Label(1)), Expr::Num(0));

        let mut heap = Heap::new();
        let g = heap.alloc_opaque(opaque_ty, Label(1));
        let n = heap.alloc(Storeable::Num(0));
        let result = heap.alloc_fresh_opaque(Type::Int);
        heap.set(
            g,
            Storeable::Case {
                result_ty: Type::Int,
                entries: vec![(n, result)],
            },
        );
        heap.refine(result, Refinement::new(CmpOp::Eq, SymExpr::int(100)));

        let prover = Prover::new();
        let blame = Blame {
            label: Label(9),
            op: Op::Div,
        };
        let options = CexOptions {
            validate: false,
            ..CexOptions::default()
        };
        let cex = build_counterexample(&prover, &program, &heap, blame, &options)
            .expect("counterexample");
        let g_binding = cex.binding(Label(1)).expect("binding for g");
        // The reconstructed g maps 0 to 100.
        let applied = Expr::app(g_binding.clone(), Expr::Num(0));
        match eval(&applied, 10_000) {
            EvalOutcome::Value(v) => assert_eq!(v.as_int(), Some(100)),
            other => panic!("unexpected {other:?}"),
        }
    }
}
