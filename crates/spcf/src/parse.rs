//! An s-expression surface syntax for SPCF.
//!
//! The parser is what tests, examples and benchmark programs use to write
//! SPCF terms without constructing ASTs by hand. Labels for opaque values
//! and primitive applications are assigned automatically, in textual order.
//!
//! ```text
//! expr ::= INTEGER
//!        | IDENT
//!        | (lambda (x : type) expr)       | (λ (x : type) expr)
//!        | (let (x : type expr) expr)
//!        | (if expr expr expr)
//!        | (fix (f : type) expr)
//!        | (• type) | (opaque type) | (hole type)
//!        | (op expr …)                    ; op ∈ +, -, *, div, zero?, …
//!        | (expr expr …)                  ; application, left-associative
//! type ::= int | (-> type type …)         ; right-associative arrow
//! ```

use std::fmt;

use crate::syntax::{Expr, Label, Op};
use crate::types::Type;

/// A parse error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Description of the problem.
    pub message: String,
}

impl ParseError {
    fn new(message: impl Into<String>) -> Self {
        ParseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

/// S-expression tokens / trees.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Sexp {
    Atom(String),
    List(Vec<Sexp>),
}

fn tokenize(input: &str) -> Result<Vec<String>, ParseError> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let mut chars = input.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            ';' => {
                // Comment to end of line.
                while let Some(&next) = chars.peek() {
                    chars.next();
                    if next == '\n' {
                        break;
                    }
                }
            }
            '(' | ')' | '[' | ']' => {
                if !current.is_empty() {
                    tokens.push(std::mem::take(&mut current));
                }
                tokens.push(c.to_string());
            }
            c if c.is_whitespace() => {
                if !current.is_empty() {
                    tokens.push(std::mem::take(&mut current));
                }
            }
            c => current.push(c),
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    Ok(tokens)
}

fn parse_sexp(tokens: &[String], position: &mut usize) -> Result<Sexp, ParseError> {
    let Some(token) = tokens.get(*position) else {
        return Err(ParseError::new("unexpected end of input"));
    };
    *position += 1;
    match token.as_str() {
        "(" | "[" => {
            let close = if token == "(" { ")" } else { "]" };
            let mut items = Vec::new();
            loop {
                match tokens.get(*position) {
                    None => return Err(ParseError::new("unclosed parenthesis")),
                    Some(t) if t == close || t == ")" || t == "]" => {
                        *position += 1;
                        return Ok(Sexp::List(items));
                    }
                    Some(_) => items.push(parse_sexp(tokens, position)?),
                }
            }
        }
        ")" | "]" => Err(ParseError::new("unexpected closing parenthesis")),
        atom => Ok(Sexp::Atom(atom.to_string())),
    }
}

/// A parser holding the label counter so that every opaque value and
/// primitive application gets a distinct label.
#[derive(Debug, Default)]
pub struct Parser {
    next_label: u32,
}

impl Parser {
    /// Creates a parser whose labels start at 0.
    pub fn new() -> Self {
        Parser::default()
    }

    /// Parses a single expression from source text.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] on malformed input.
    pub fn parse_expr(&mut self, input: &str) -> Result<Expr, ParseError> {
        let tokens = tokenize(input)?;
        let mut position = 0;
        let sexp = parse_sexp(&tokens, &mut position)?;
        if position != tokens.len() {
            return Err(ParseError::new("trailing tokens after expression"));
        }
        self.expr(&sexp)
    }

    fn fresh_label(&mut self) -> Label {
        let label = Label(self.next_label);
        self.next_label += 1;
        label
    }

    fn expr(&mut self, sexp: &Sexp) -> Result<Expr, ParseError> {
        match sexp {
            Sexp::Atom(atom) => {
                if let Ok(n) = atom.parse::<i64>() {
                    Ok(Expr::Num(n))
                } else {
                    Ok(Expr::var(atom.clone()))
                }
            }
            Sexp::List(items) => self.list(items),
        }
    }

    fn list(&mut self, items: &[Sexp]) -> Result<Expr, ParseError> {
        let Some(head) = items.first() else {
            return Err(ParseError::new("empty application"));
        };
        if let Sexp::Atom(keyword) = head {
            match keyword.as_str() {
                "lambda" | "λ" => return self.lambda(items),
                "let" => return self.let_form(items),
                "if" => return self.if_form(items),
                "fix" => return self.fix_form(items),
                "•" | "opaque" | "hole" => return self.opaque_form(items),
                name => {
                    if let Some(op) = Op::from_name(name) {
                        return self.prim(op, &items[1..]);
                    }
                }
            }
        }
        // Application, left-associative over multiple arguments.
        let mut expr = self.expr(head)?;
        if items.len() < 2 {
            return Err(ParseError::new("application needs an argument"));
        }
        for argument in &items[1..] {
            expr = Expr::app(expr, self.expr(argument)?);
        }
        Ok(expr)
    }

    fn lambda(&mut self, items: &[Sexp]) -> Result<Expr, ParseError> {
        // (lambda (x : T) body)
        let [_, binder, body] = items else {
            return Err(ParseError::new("lambda expects a binder and a body"));
        };
        let (name, ty) = self.binder(binder)?;
        Ok(Expr::lam(name, ty, self.expr(body)?))
    }

    fn let_form(&mut self, items: &[Sexp]) -> Result<Expr, ParseError> {
        // (let (x : T bound) body)
        let [_, binding, body] = items else {
            return Err(ParseError::new("let expects a binding and a body"));
        };
        let Sexp::List(parts) = binding else {
            return Err(ParseError::new("let binding must be a list"));
        };
        let [name, colon, ty, bound] = parts.as_slice() else {
            return Err(ParseError::new("let binding is (x : T expr)"));
        };
        if !matches!(colon, Sexp::Atom(c) if c == ":") {
            return Err(ParseError::new("let binding is (x : T expr)"));
        }
        let Sexp::Atom(name) = name else {
            return Err(ParseError::new("let-bound name must be an identifier"));
        };
        let ty = self.type_of(ty)?;
        let bound = self.expr(bound)?;
        Ok(Expr::let_in(name.clone(), ty, bound, self.expr(body)?))
    }

    fn if_form(&mut self, items: &[Sexp]) -> Result<Expr, ParseError> {
        let [_, c, t, e] = items else {
            return Err(ParseError::new("if expects three sub-expressions"));
        };
        Ok(Expr::ite(self.expr(c)?, self.expr(t)?, self.expr(e)?))
    }

    fn fix_form(&mut self, items: &[Sexp]) -> Result<Expr, ParseError> {
        let [_, binder, body] = items else {
            return Err(ParseError::new("fix expects a binder and a body"));
        };
        let (name, ty) = self.binder(binder)?;
        Ok(Expr::fix(name, ty, self.expr(body)?))
    }

    fn opaque_form(&mut self, items: &[Sexp]) -> Result<Expr, ParseError> {
        let [_, ty] = items else {
            return Err(ParseError::new("opaque expects a type"));
        };
        let ty = self.type_of(ty)?;
        let label = self.fresh_label();
        Ok(Expr::Opaque(ty, label))
    }

    fn prim(&mut self, op: Op, args: &[Sexp]) -> Result<Expr, ParseError> {
        if args.len() != op.arity() {
            return Err(ParseError::new(format!(
                "`{op}` expects {} argument(s), got {}",
                op.arity(),
                args.len()
            )));
        }
        let label = self.fresh_label();
        let args = args
            .iter()
            .map(|a| self.expr(a))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Expr::Prim(op, args, label))
    }

    fn binder(&mut self, sexp: &Sexp) -> Result<(String, Type), ParseError> {
        let Sexp::List(parts) = sexp else {
            return Err(ParseError::new("binder must be (name : type)"));
        };
        let [name, colon, ty] = parts.as_slice() else {
            return Err(ParseError::new("binder must be (name : type)"));
        };
        if !matches!(colon, Sexp::Atom(c) if c == ":") {
            return Err(ParseError::new("binder must be (name : type)"));
        }
        let Sexp::Atom(name) = name else {
            return Err(ParseError::new("binder name must be an identifier"));
        };
        Ok((name.clone(), self.type_of(ty)?))
    }

    fn type_of(&mut self, sexp: &Sexp) -> Result<Type, ParseError> {
        match sexp {
            Sexp::Atom(atom) => match atom.as_str() {
                "int" | "nat" => Ok(Type::Int),
                other => Err(ParseError::new(format!("unknown type `{other}`"))),
            },
            Sexp::List(items) => {
                let Some(Sexp::Atom(head)) = items.first() else {
                    return Err(ParseError::new("malformed type"));
                };
                if head != "->" {
                    return Err(ParseError::new(format!(
                        "unknown type constructor `{head}`"
                    )));
                }
                if items.len() < 3 {
                    return Err(ParseError::new("-> needs at least two types"));
                }
                // Right-associative: (-> a b c) = a → (b → c).
                let mut types = items[1..]
                    .iter()
                    .map(|t| self.type_of(t))
                    .collect::<Result<Vec<_>, _>>()?;
                let mut result = types.pop().expect("at least two types");
                while let Some(ty) = types.pop() {
                    result = Type::arrow(ty, result);
                }
                Ok(result)
            }
        }
    }
}

/// Parses a single expression with a fresh parser.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input.
pub fn parse(input: &str) -> Result<Expr, ParseError> {
    Parser::new().parse_expr(input)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::typecheck::type_of;

    #[test]
    fn parses_literals_and_variables() {
        assert_eq!(parse("42"), Ok(Expr::Num(42)));
        assert_eq!(parse("-3"), Ok(Expr::Num(-3)));
        assert_eq!(parse("x"), Ok(Expr::var("x")));
    }

    #[test]
    fn parses_lambda_and_application() {
        let e = parse("((lambda (x : int) (+ x 1)) 41)").expect("parses");
        assert_eq!(type_of(&e), Ok(Type::Int));
    }

    #[test]
    fn parses_types_right_associatively() {
        let e = parse("(lambda (f : (-> int int int)) (f 1 2))").expect("parses");
        // f : int → (int → int), applied to two arguments gives int.
        assert_eq!(
            type_of(&e).map(|t| t.to_string()),
            Ok("(-> (-> int (-> int int)) int)".to_string())
        );
    }

    #[test]
    fn parses_opaque_values_with_fresh_labels() {
        let e = parse("((• (-> int int)) (opaque int))").expect("parses");
        assert_eq!(e.opaque_labels().len(), 2);
    }

    #[test]
    fn parses_let_and_if() {
        let e = parse("(let (x : int 5) (if (zero? x) 1 2))").expect("parses");
        assert_eq!(type_of(&e), Ok(Type::Int));
    }

    #[test]
    fn parses_fix() {
        let source = "(fix (f : (-> int int)) (lambda (n : int) (if (zero? n) 0 (f (sub1 n)))))";
        let e = parse(source).expect("parses");
        assert_eq!(type_of(&e), Ok(Type::arrow(Type::Int, Type::Int)));
    }

    #[test]
    fn comments_and_brackets_are_accepted() {
        let source = "; a comment\n(+ 1 [if 0 2 3])";
        let e = parse(source).expect("parses");
        assert_eq!(type_of(&e), Ok(Type::Int));
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("(").is_err());
        assert!(parse("()").is_err());
        assert!(parse("(lambda x x)").is_err());
        assert!(parse("(+ 1)").is_err());
        assert!(parse("(unknown-type-form (• whatever))").is_err());
        assert!(parse("1 2").is_err());
    }

    #[test]
    fn prim_arity_is_enforced_by_parser() {
        assert!(parse("(zero? 1 2)").is_err());
        assert!(parse("(div 1)").is_err());
    }
}
