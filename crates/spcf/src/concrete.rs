//! A concrete (non-symbolic) evaluator for closed SPCF programs.
//!
//! Counterexample soundness (Theorem 1) is witnessed operationally: after
//! reconstructing concrete inputs from the solver model, the engine re-runs
//! the instantiated program with this evaluator and checks that the very
//! same blame is reproduced. A counterexample is only ever reported to the
//! user once this check passes.

use std::collections::HashMap;
use std::rc::Rc;

use crate::syntax::{Blame, Expr, Op};

/// A runtime value of the concrete evaluator.
#[derive(Debug, Clone)]
pub enum CValue {
    /// An integer.
    Int(i64),
    /// A closure.
    Closure {
        /// Parameter name.
        param: String,
        /// Body expression.
        body: Expr,
        /// Captured environment.
        env: Env,
    },
}

impl CValue {
    /// The integer, if this is an integer value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            CValue::Int(n) => Some(*n),
            CValue::Closure { .. } => None,
        }
    }
}

/// Environments map variable names to values; shared via `Rc` so closures
/// are cheap.
pub type Env = Rc<HashMap<String, CValue>>;

/// The outcome of concrete evaluation.
#[derive(Debug, Clone)]
pub enum EvalOutcome {
    /// Evaluation finished with a value.
    Value(CValue),
    /// Evaluation raised an error (blame).
    Error(Blame),
    /// The step budget was exhausted (the program may diverge).
    OutOfFuel,
    /// Evaluation got stuck (unbound variable, opaque value, type confusion).
    Stuck(String),
}

impl EvalOutcome {
    /// True if the outcome is an error with exactly this blame.
    pub fn is_error_with(&self, blame: &Blame) -> bool {
        matches!(self, EvalOutcome::Error(b) if b == blame)
    }

    /// True if the outcome is any error.
    pub fn is_error(&self) -> bool {
        matches!(self, EvalOutcome::Error(_))
    }
}

/// Evaluates a closed, concrete expression with the given step budget.
pub fn eval(expr: &Expr, fuel: u64) -> EvalOutcome {
    let mut fuel = fuel;
    let env: Env = Rc::new(HashMap::new());
    match eval_in(expr, &env, &mut fuel) {
        Ok(value) => EvalOutcome::Value(value),
        Err(Stop::Blame(blame)) => EvalOutcome::Error(blame),
        Err(Stop::OutOfFuel) => EvalOutcome::OutOfFuel,
        Err(Stop::Stuck(reason)) => EvalOutcome::Stuck(reason),
    }
}

enum Stop {
    Blame(Blame),
    OutOfFuel,
    Stuck(String),
}

fn eval_in(expr: &Expr, env: &Env, fuel: &mut u64) -> Result<CValue, Stop> {
    if *fuel == 0 {
        return Err(Stop::OutOfFuel);
    }
    *fuel -= 1;
    match expr {
        Expr::Num(n) => Ok(CValue::Int(*n)),
        Expr::Var(x) => env
            .get(x)
            .cloned()
            .ok_or_else(|| Stop::Stuck(format!("unbound variable `{x}`"))),
        Expr::Lam { param, body, .. } => Ok(CValue::Closure {
            param: param.clone(),
            body: (**body).clone(),
            env: env.clone(),
        }),
        Expr::Opaque(_, label) => Err(Stop::Stuck(format!(
            "opaque value {label} reached by the concrete evaluator"
        ))),
        Expr::Loc(_) | Expr::Err(_) => Err(Stop::Stuck("internal form".to_string())),
        Expr::Fix { name, body, .. } => {
            let unrolled = body.subst_expr(name, expr);
            eval_in(&unrolled, env, fuel)
        }
        Expr::If(condition, then_branch, else_branch) => {
            let scrutinee = eval_in(condition, env, fuel)?;
            match scrutinee {
                CValue::Int(0) => eval_in(else_branch, env, fuel),
                CValue::Int(_) => eval_in(then_branch, env, fuel),
                CValue::Closure { .. } => Err(Stop::Stuck("if on a function value".to_string())),
            }
        }
        Expr::App(function, argument) => {
            let function_value = eval_in(function, env, fuel)?;
            let argument_value = eval_in(argument, env, fuel)?;
            match function_value {
                CValue::Closure {
                    param,
                    body,
                    env: closure_env,
                } => {
                    let mut extended = (*closure_env).clone();
                    extended.insert(param, argument_value);
                    eval_in(&body, &Rc::new(extended), fuel)
                }
                CValue::Int(_) => Err(Stop::Stuck("applied a number".to_string())),
            }
        }
        Expr::Prim(op, args, label) => {
            let mut values = Vec::with_capacity(args.len());
            for arg in args {
                match eval_in(arg, env, fuel)? {
                    CValue::Int(n) => values.push(n),
                    CValue::Closure { .. } => {
                        return Err(Stop::Stuck(format!("{op} applied to a function")));
                    }
                }
            }
            apply_prim(*op, &values, *label).map(CValue::Int)
        }
    }
}

fn apply_prim(op: Op, values: &[i64], label: crate::syntax::Label) -> Result<i64, Stop> {
    let blame = Blame { label, op };
    Ok(match op {
        Op::IsZero | Op::Not => i64::from(values[0] == 0),
        Op::Add1 => values[0].wrapping_add(1),
        Op::Sub1 => values[0].wrapping_sub(1),
        Op::Add => values[0].wrapping_add(values[1]),
        Op::Sub => values[0].wrapping_sub(values[1]),
        Op::Mul => values[0].wrapping_mul(values[1]),
        Op::Div => {
            if values[1] == 0 {
                return Err(Stop::Blame(blame));
            }
            values[0].wrapping_div(values[1])
        }
        Op::Mod => {
            if values[1] == 0 {
                return Err(Stop::Blame(blame));
            }
            values[0].wrapping_rem(values[1])
        }
        Op::Eq => i64::from(values[0] == values[1]),
        Op::Lt => i64::from(values[0] < values[1]),
        Op::Le => i64::from(values[0] <= values[1]),
        Op::Gt => i64::from(values[0] > values[1]),
        Op::Ge => i64::from(values[0] >= values[1]),
        Op::Assert => {
            if values[0] == 0 {
                return Err(Stop::Blame(blame));
            }
            values[0]
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::Label;
    use crate::types::Type;

    const FUEL: u64 = 100_000;

    fn eval_int(expr: &Expr) -> i64 {
        match eval(expr, FUEL) {
            EvalOutcome::Value(CValue::Int(n)) => n,
            other => panic!("expected an integer, got {other:?}"),
        }
    }

    #[test]
    fn arithmetic_and_application() {
        let program = Expr::app(
            Expr::lam(
                "x",
                Type::Int,
                Expr::Prim(Op::Mul, vec![Expr::var("x"), Expr::var("x")], Label(0)),
            ),
            Expr::Num(9),
        );
        assert_eq!(eval_int(&program), 81);
    }

    #[test]
    fn division_by_zero_blames_the_site() {
        let program = Expr::Prim(Op::Div, vec![Expr::Num(1), Expr::Num(0)], Label(7));
        match eval(&program, FUEL) {
            EvalOutcome::Error(blame) => {
                assert_eq!(blame.label, Label(7));
                assert_eq!(blame.op, Op::Div);
            }
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn factorial_via_fix() {
        // fix f. λn. if (zero? n) 1 (* n (f (sub1 n)))
        let body = Expr::lam(
            "n",
            Type::Int,
            Expr::ite(
                Expr::Prim(Op::IsZero, vec![Expr::var("n")], Label(0)),
                Expr::Num(1),
                Expr::Prim(
                    Op::Mul,
                    vec![
                        Expr::var("n"),
                        Expr::app(
                            Expr::var("f"),
                            Expr::Prim(Op::Sub1, vec![Expr::var("n")], Label(1)),
                        ),
                    ],
                    Label(2),
                ),
            ),
        );
        let factorial = Expr::fix("f", Type::arrow(Type::Int, Type::Int), body);
        let program = Expr::app(factorial, Expr::Num(6));
        assert_eq!(eval_int(&program), 720);
    }

    #[test]
    fn divergence_runs_out_of_fuel() {
        // fix f. λx. f x, applied to 0.
        let body = Expr::lam("x", Type::Int, Expr::app(Expr::var("f"), Expr::var("x")));
        let program = Expr::app(
            Expr::fix("f", Type::arrow(Type::Int, Type::Int), body),
            Expr::Num(0),
        );
        assert!(matches!(eval(&program, 1_000), EvalOutcome::OutOfFuel));
    }

    #[test]
    fn opaque_values_are_stuck() {
        let program = Expr::Opaque(Type::Int, Label(1));
        assert!(matches!(eval(&program, FUEL), EvalOutcome::Stuck(_)));
    }

    #[test]
    fn closures_capture_their_environment() {
        // (λx. λy. (- x y)) 10 3 = 7
        let program = Expr::app(
            Expr::app(
                Expr::lam(
                    "x",
                    Type::Int,
                    Expr::lam(
                        "y",
                        Type::Int,
                        Expr::Prim(Op::Sub, vec![Expr::var("x"), Expr::var("y")], Label(0)),
                    ),
                ),
                Expr::Num(10),
            ),
            Expr::Num(3),
        );
        assert_eq!(eval_int(&program), 7);
    }

    #[test]
    fn assert_failures_blame() {
        let program = Expr::Prim(Op::Assert, vec![Expr::Num(0)], Label(5));
        match eval(&program, FUEL) {
            EvalOutcome::Error(blame) => assert_eq!(blame.op, Op::Assert),
            other => panic!("expected error, got {other:?}"),
        }
    }
}
