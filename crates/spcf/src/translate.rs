//! Translation of the symbolic heap into first-order formulas (Fig. 4).
//!
//! The remarkable property the paper exploits is that by the time an error
//! is reached, the heap contains only *first-order* unknowns: higher-order
//! opaque values have been decomposed into λ-shapes and `case` maps whose
//! leaves are base-typed locations. The translation therefore only ever
//! emits quantifier-free integer formulas:
//!
//! * a location holding a number becomes an equality with that number;
//! * refinements on opaque base values become comparisons;
//! * a `case` map contributes functionality constraints — equal inputs imply
//!   equal outputs — where output equality is structural on the shapes of
//!   stored functions (and `false` for distinct shapes), exactly as in the
//!   paper;
//! * division and remainder are expressed with auxiliary quotient/remainder
//!   variables, since the base solver is linear.

use folic::{Formula, Term, Var};

use crate::heap::{Heap, Loc, Refinement, Storeable, SymExpr};
use crate::types::Type;

/// The result of translating a heap.
#[derive(Debug, Clone, Default)]
pub struct Translation {
    /// The conjuncts describing the heap.
    pub formulas: Vec<Formula>,
    next_aux: u32,
}

impl Translation {
    fn fresh_aux(&mut self) -> Var {
        let var = Var::new(self.next_aux);
        self.next_aux += 1;
        var
    }
}

/// Translates the whole heap into a conjunction of formulas.
pub fn translate_heap(heap: &Heap) -> Translation {
    let mut translation = Translation {
        formulas: Vec::new(),
        next_aux: heap.next_index(),
    };
    for (loc, storeable) in heap.iter() {
        match storeable {
            Storeable::Num(n) => {
                translation
                    .formulas
                    .push(Formula::eq(Term::var(loc.solver_var()), Term::int(*n)));
            }
            Storeable::Opaque { ty, refinements } => {
                if ty.is_base() {
                    for refinement in refinements {
                        let formula = translate_refinement(loc, refinement, &mut translation);
                        translation.formulas.push(formula);
                    }
                }
            }
            Storeable::Lam { .. } => {}
            Storeable::Case { entries, .. } => {
                // Functionality: equal inputs imply equal outputs.
                for i in 0..entries.len() {
                    for j in (i + 1)..entries.len() {
                        let (arg_i, res_i) = entries[i];
                        let (arg_j, res_j) = entries[j];
                        let antecedent = Formula::eq(
                            Term::var(arg_i.solver_var()),
                            Term::var(arg_j.solver_var()),
                        );
                        let consequent = translate_equal(heap, res_i, res_j, 8);
                        translation
                            .formulas
                            .push(Formula::implies(antecedent, consequent));
                    }
                }
            }
        }
    }
    translation
}

/// Translates a heap and appends an extra goal formula about a location.
pub fn translate_refinement_goal(
    heap: &Heap,
    loc: Loc,
    refinement: &Refinement,
) -> (Vec<Formula>, Formula) {
    let mut translation = translate_heap(heap);
    let goal = translate_refinement(loc, refinement, &mut translation);
    (translation.formulas, goal)
}

/// Translates a single refinement `loc op rhs` into a formula, possibly
/// appending auxiliary constraints (for division) to the translation.
pub fn translate_refinement(
    loc: Loc,
    refinement: &Refinement,
    translation: &mut Translation,
) -> Formula {
    let lhs = Term::var(loc.solver_var());
    let rhs = translate_sym_expr(&refinement.rhs, translation);
    Formula::atom(lhs, refinement.op, rhs)
}

/// Translates a symbolic expression into a solver term, introducing
/// auxiliary variables and side constraints for division and remainder.
pub fn translate_sym_expr(expr: &SymExpr, translation: &mut Translation) -> Term {
    match expr {
        SymExpr::Loc(l) => Term::var(l.solver_var()),
        SymExpr::Const(n) => Term::int(*n),
        SymExpr::Add(a, b) => Term::add(
            translate_sym_expr(a, translation),
            translate_sym_expr(b, translation),
        ),
        SymExpr::Sub(a, b) => Term::sub(
            translate_sym_expr(a, translation),
            translate_sym_expr(b, translation),
        ),
        SymExpr::Mul(a, b) => Term::mul(
            translate_sym_expr(a, translation),
            translate_sym_expr(b, translation),
        ),
        SymExpr::Div(a, b) => {
            let (quotient, _remainder) = translate_division(a, b, translation);
            quotient
        }
        SymExpr::Mod(a, b) => {
            let (_quotient, remainder) = translate_division(a, b, translation);
            remainder
        }
    }
}

/// Encodes truncated division `a / b` with fresh quotient and remainder
/// variables, following the semantics of Rust's `/` and `%` on integers:
///
/// * `a = q·b + r`
/// * `|r| < |b|`
/// * `r` is zero or has the sign of `a`.
fn translate_division(a: &SymExpr, b: &SymExpr, translation: &mut Translation) -> (Term, Term) {
    let dividend = translate_sym_expr(a, translation);
    let divisor = translate_sym_expr(b, translation);
    let quotient = Term::var(translation.fresh_aux());
    let remainder = Term::var(translation.fresh_aux());

    // a = q·b + r
    translation.formulas.push(Formula::eq(
        dividend.clone(),
        Term::add(
            Term::mul(quotient.clone(), divisor.clone()),
            remainder.clone(),
        ),
    ));
    // |r| < |b|  encoded as  (b > 0 ⇒ (r < b ∧ -b < r)) ∧ (b < 0 ⇒ (r < -b ∧ b < r))
    translation.formulas.push(Formula::implies(
        Formula::gt(divisor.clone(), Term::int(0)),
        Formula::and(vec![
            Formula::lt(remainder.clone(), divisor.clone()),
            Formula::lt(Term::neg(divisor.clone()), remainder.clone()),
        ]),
    ));
    translation.formulas.push(Formula::implies(
        Formula::lt(divisor.clone(), Term::int(0)),
        Formula::and(vec![
            Formula::lt(remainder.clone(), Term::neg(divisor.clone())),
            Formula::lt(divisor.clone(), remainder.clone()),
        ]),
    ));
    // r = 0 ∨ sign(r) = sign(a)
    translation.formulas.push(Formula::or(vec![
        Formula::eq(remainder.clone(), Term::int(0)),
        Formula::and(vec![
            Formula::gt(dividend.clone(), Term::int(0)),
            Formula::gt(remainder.clone(), Term::int(0)),
        ]),
        Formula::and(vec![
            Formula::lt(dividend, Term::int(0)),
            Formula::lt(remainder.clone(), Term::int(0)),
        ]),
    ]));
    (quotient, remainder)
}

/// Structural equality between the values stored at two locations (Fig. 4's
/// `{{L₁ = L₂}}`). Used as the consequent of `case`-map functionality
/// constraints.
pub fn translate_equal(heap: &Heap, a: Loc, b: Loc, depth: u32) -> Formula {
    if a == b {
        return Formula::True;
    }
    if depth == 0 {
        return Formula::True; // give up: no constraint (sound, less precise)
    }
    let (sa, sb) = match (heap.try_get(a), heap.try_get(b)) {
        (Some(x), Some(y)) => (x, y),
        _ => return Formula::True,
    };
    match (sa, sb) {
        // Base-typed values: integer equality.
        (Storeable::Num(_), Storeable::Num(_))
        | (Storeable::Num(_), Storeable::Opaque { ty: Type::Int, .. })
        | (Storeable::Opaque { ty: Type::Int, .. }, Storeable::Num(_))
        | (Storeable::Opaque { ty: Type::Int, .. }, Storeable::Opaque { ty: Type::Int, .. }) => {
            Formula::eq(Term::var(a.solver_var()), Term::var(b.solver_var()))
        }
        // Two case maps: pointwise functionality.
        (Storeable::Case { entries: ea, .. }, Storeable::Case { entries: eb, .. }) => {
            let mut parts = Vec::new();
            for (arg_a, res_a) in ea {
                for (arg_b, res_b) in eb {
                    let antecedent =
                        Formula::eq(Term::var(arg_a.solver_var()), Term::var(arg_b.solver_var()));
                    let consequent = translate_equal(heap, *res_a, *res_b, depth - 1);
                    parts.push(Formula::implies(antecedent, consequent));
                }
            }
            Formula::and(parts)
        }
        // Two λ-abstractions: equal when their bodies are structurally equal
        // up to stored locations (the shapes generated by AppOpq2/3 and
        // AppHavoc), different shapes translate to False.
        (Storeable::Lam { body: body_a, .. }, Storeable::Lam { body: body_b, .. }) => {
            translate_body_equal(heap, body_a, body_b, depth - 1)
        }
        // Fully opaque functions: no information either way.
        (Storeable::Opaque { .. }, _) | (_, Storeable::Opaque { .. }) => Formula::True,
        // Different shapes cannot be equal.
        _ => Formula::False,
    }
}

/// Structural equality of two stored λ-bodies. Locations compare via
/// [`translate_equal`]; anything else compares syntactically.
fn translate_body_equal(
    heap: &Heap,
    a: &crate::syntax::Expr,
    b: &crate::syntax::Expr,
    depth: u32,
) -> Formula {
    use crate::syntax::Expr;
    match (a, b) {
        (Expr::Loc(la), Expr::Loc(lb)) => translate_equal(heap, *la, *lb, depth),
        (Expr::App(fa, aa), Expr::App(fb, ab)) => Formula::and(vec![
            translate_body_equal(heap, fa, fb, depth),
            translate_body_equal(heap, aa, ab, depth),
        ]),
        (Expr::Var(x), Expr::Var(y)) => {
            if x == y {
                Formula::True
            } else {
                Formula::False
            }
        }
        (Expr::Num(x), Expr::Num(y)) => {
            if x == y {
                Formula::True
            } else {
                Formula::False
            }
        }
        (
            Expr::Lam {
                param: pa,
                body: ba,
                ..
            },
            Expr::Lam {
                param: pb,
                body: bb,
                ..
            },
        ) => {
            if pa == pb {
                translate_body_equal(heap, ba, bb, depth)
            } else {
                Formula::False
            }
        }
        (x, y) => {
            if x == y {
                Formula::True
            } else {
                Formula::False
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::{Refinement, Storeable};
    use folic::{CmpOp, Solver};

    #[test]
    fn worked_example_heap_translates_and_solves() {
        // L3 ↦ •int, L4 ↦ •int, L5 ↦ •int,(= (- 100 L4)),(= 0)
        let mut heap = Heap::new();
        let _l3 = heap.alloc_fresh_opaque(Type::Int);
        let l4 = heap.alloc_fresh_opaque(Type::Int);
        let l5 = heap.alloc_fresh_opaque(Type::Int);
        heap.refine(
            l5,
            Refinement::new(
                CmpOp::Eq,
                SymExpr::Sub(Box::new(SymExpr::int(100)), Box::new(SymExpr::loc(l4))),
            ),
        );
        heap.refine(l5, Refinement::zero());

        let translation = translate_heap(&heap);
        let mut solver = Solver::new();
        for f in &translation.formulas {
            solver.assert(f.clone());
        }
        let model = solver.check().model().cloned().expect("satisfiable");
        assert_eq!(model.value(l4.solver_var()), Some(100));
        assert_eq!(model.value(l5.solver_var()), Some(0));
    }

    #[test]
    fn numbers_translate_to_equalities() {
        let mut heap = Heap::new();
        let l = heap.alloc(Storeable::Num(42));
        let translation = translate_heap(&heap);
        assert_eq!(translation.formulas.len(), 1);
        let mut solver = Solver::new();
        for f in &translation.formulas {
            solver.assert(f.clone());
        }
        let model = solver.check().model().cloned().expect("sat");
        assert_eq!(model.value(l.solver_var()), Some(42));
    }

    #[test]
    fn case_maps_force_functionality() {
        // case [a ↦ x] [b ↦ y]  with a = b, x = 1, y = 0 must be unsat.
        let mut heap = Heap::new();
        let a = heap.alloc(Storeable::Num(5));
        let b = heap.alloc(Storeable::Num(5));
        let x = heap.alloc(Storeable::Num(1));
        let y = heap.alloc(Storeable::Num(0));
        let _f = heap.alloc(Storeable::Case {
            result_ty: Type::Int,
            entries: vec![(a, x), (b, y)],
        });
        let translation = translate_heap(&heap);
        let mut solver = Solver::new();
        for f in &translation.formulas {
            solver.assert(f.clone());
        }
        assert!(solver.check().is_unsat());
    }

    #[test]
    fn case_maps_allow_distinct_inputs() {
        let mut heap = Heap::new();
        let a = heap.alloc(Storeable::Num(4));
        let b = heap.alloc(Storeable::Num(5));
        let x = heap.alloc(Storeable::Num(1));
        let y = heap.alloc(Storeable::Num(0));
        let _f = heap.alloc(Storeable::Case {
            result_ty: Type::Int,
            entries: vec![(a, x), (b, y)],
        });
        let translation = translate_heap(&heap);
        let mut solver = Solver::new();
        for f in &translation.formulas {
            solver.assert(f.clone());
        }
        assert!(solver.check().is_sat());
    }

    #[test]
    fn division_is_encoded_with_quotient_and_remainder() {
        // l = 7 / 2 should force l = 3.
        let mut heap = Heap::new();
        let result = heap.alloc_fresh_opaque(Type::Int);
        heap.refine(
            result,
            Refinement::new(
                CmpOp::Eq,
                SymExpr::Div(Box::new(SymExpr::int(7)), Box::new(SymExpr::int(2))),
            ),
        );
        let translation = translate_heap(&heap);
        let mut solver = Solver::new();
        for f in &translation.formulas {
            solver.assert(f.clone());
        }
        let model = solver.check().model().cloned().expect("sat");
        assert_eq!(model.value(result.solver_var()), Some(3));
    }

    #[test]
    fn different_function_shapes_are_unequal() {
        let mut heap = Heap::new();
        let num = heap.alloc(Storeable::Num(1));
        let lam = heap.alloc(Storeable::Lam {
            param: "x".to_string(),
            param_ty: Type::Int,
            body: crate::syntax::Expr::Num(0),
        });
        let case = heap.alloc(Storeable::Case {
            result_ty: Type::Int,
            entries: vec![],
        });
        assert_eq!(translate_equal(&heap, lam, case, 4), Formula::False);
        assert_eq!(translate_equal(&heap, num, case, 4), Formula::False);
        assert_eq!(translate_equal(&heap, lam, lam, 4), Formula::True);
    }
}
