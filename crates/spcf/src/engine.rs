//! The search engine: breadth-first exploration of the symbolic state space
//! with counterexample construction at error states.
//!
//! The paper's prototype performs a simple breadth-first search on the
//! execution graph and stops at the first error for which a fully concrete
//! counterexample can be produced (§5.3); this engine does the same, with
//! explicit step/state budgets so the analysis always terminates.

use std::collections::VecDeque;

use crate::cex::{build_counterexample, CexOptions, Counterexample};
use crate::prove::Prover;
use crate::step::{step, State, StepOptions};
use crate::syntax::{Blame, Expr};
use crate::typecheck::{check_program, TypeError};

/// Options controlling an analysis run.
#[derive(Debug, Clone, Copy)]
pub struct AnalysisOptions {
    /// Maximum number of states expanded before giving up.
    pub max_states: u64,
    /// Maximum size the work queue may grow to.
    pub max_queue: usize,
    /// Reduction-rule options (case maps on/off).
    pub step: StepOptions,
    /// Counterexample construction options.
    pub cex: CexOptions,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            max_states: 20_000,
            max_queue: 50_000,
            step: StepOptions::default(),
            cex: CexOptions::default(),
        }
    }
}

/// The verdict of an analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Analysis {
    /// The whole (finite) state space was explored and no error in the known
    /// program portion is reachable.
    Verified,
    /// A concrete counterexample was constructed (and, unless disabled,
    /// validated by concrete re-execution).
    Counterexample(Counterexample),
    /// An error state was reached but no concrete counterexample could be
    /// produced (unsatisfiable or undecided path condition) — a *probable*
    /// violation, as the paper's tool reports in this situation.
    ProbableError(Blame),
    /// The analysis ran out of its state budget without finding an error.
    Exhausted,
    /// The program is not well-typed.
    IllTyped(TypeError),
}

impl Analysis {
    /// The counterexample, if one was found.
    pub fn counterexample(&self) -> Option<&Counterexample> {
        match self {
            Analysis::Counterexample(c) => Some(c),
            _ => None,
        }
    }

    /// True if the analysis proved the absence of reachable errors.
    pub fn is_verified(&self) -> bool {
        matches!(self, Analysis::Verified)
    }
}

/// Statistics about an analysis run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnalysisStats {
    /// Number of states expanded.
    pub states_expanded: u64,
    /// Number of error states encountered.
    pub errors_seen: u64,
    /// Number of answer (non-error) states encountered.
    pub answers_seen: u64,
}

/// The analysis engine.
#[derive(Debug, Default)]
pub struct Engine {
    options: AnalysisOptions,
    prover: Prover,
    stats: AnalysisStats,
}

impl Engine {
    /// Creates an engine with default options.
    pub fn new() -> Self {
        Engine::default()
    }

    /// Creates an engine with explicit options.
    pub fn with_options(options: AnalysisOptions) -> Self {
        Engine {
            options,
            ..Engine::default()
        }
    }

    /// Statistics of the most recent [`Engine::analyze`] call.
    pub fn stats(&self) -> AnalysisStats {
        self.stats
    }

    /// Analyzes a program: searches for a reachable error in the known
    /// program portion and constructs a concrete counterexample for it.
    pub fn analyze(&mut self, program: &Expr) -> Analysis {
        if let Err(error) = check_program(program) {
            return Analysis::IllTyped(error);
        }
        self.stats = AnalysisStats::default();
        let mut queue: VecDeque<State> = VecDeque::new();
        queue.push_back(State::initial(program.clone()));
        let mut probable: Option<Blame> = None;
        let mut exhausted = false;

        while let Some(state) = queue.pop_front() {
            match &state.expr {
                Expr::Err(blame) => {
                    self.stats.errors_seen += 1;
                    match build_counterexample(
                        &self.prover,
                        program,
                        &state.heap,
                        *blame,
                        &self.options.cex,
                    ) {
                        Some(counterexample) => {
                            return Analysis::Counterexample(counterexample);
                        }
                        None => {
                            // Spurious or unconfirmed: remember and keep looking.
                            if probable.is_none() {
                                probable = Some(*blame);
                            }
                        }
                    }
                    continue;
                }
                Expr::Loc(_) => {
                    self.stats.answers_seen += 1;
                    continue;
                }
                _ => {}
            }
            if self.stats.states_expanded >= self.options.max_states {
                exhausted = true;
                break;
            }
            self.stats.states_expanded += 1;
            for successor in step(&self.prover, &state, &self.options.step) {
                if queue.len() >= self.options.max_queue {
                    exhausted = true;
                    break;
                }
                queue.push_back(successor);
            }
        }

        if let Some(blame) = probable {
            Analysis::ProbableError(blame)
        } else if exhausted {
            Analysis::Exhausted
        } else {
            Analysis::Verified
        }
    }
}

/// Convenience function: analyze with default options.
pub fn analyze(program: &Expr) -> Analysis {
    Engine::new().analyze(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::{Label, Op};
    use crate::types::Type;

    /// The paper's §2 worked example:
    ///
    /// ```text
    /// let f (g : int → int) (n : int) : int = 1 / (100 - (g n)) in (• f)
    /// ```
    fn worked_example() -> Expr {
        let f = Expr::lam(
            "g",
            Type::arrow(Type::Int, Type::Int),
            Expr::lam(
                "n",
                Type::Int,
                Expr::Prim(
                    Op::Div,
                    vec![
                        Expr::Num(1),
                        Expr::Prim(
                            Op::Sub,
                            vec![Expr::Num(100), Expr::app(Expr::var("g"), Expr::var("n"))],
                            Label(10),
                        ),
                    ],
                    Label(11),
                ),
            ),
        );
        // The unknown context applied to f.
        let unknown_ty = Type::arrow(
            Type::arrow(
                Type::arrow(Type::Int, Type::Int),
                Type::arrow(Type::Int, Type::Int),
            ),
            Type::Int,
        );
        Expr::app(Expr::Opaque(unknown_ty, Label(1)), f)
    }

    #[test]
    fn worked_example_has_a_higher_order_counterexample() {
        let analysis = analyze(&worked_example());
        match analysis {
            Analysis::Counterexample(cex) => {
                assert!(cex.validated, "counterexample must be re-validated");
                assert_eq!(cex.blame.op, Op::Div);
                assert_eq!(cex.blame.label, Label(11));
                assert!(cex.binding(Label(1)).is_some());
            }
            other => panic!("expected a counterexample, got {other:?}"),
        }
    }

    #[test]
    fn safe_program_is_verified() {
        // (λx. (+ x 1)) (• : int)  — no partial operations, nothing to blame.
        let program = Expr::app(
            Expr::lam(
                "x",
                Type::Int,
                Expr::Prim(Op::Add, vec![Expr::var("x"), Expr::Num(1)], Label(0)),
            ),
            Expr::Opaque(Type::Int, Label(1)),
        );
        assert_eq!(analyze(&program), Analysis::Verified);
    }

    #[test]
    fn guarded_division_is_verified() {
        // λn. if (zero? n) 0 (div 100 n) applied to an unknown: no error.
        let program = Expr::app(
            Expr::lam(
                "n",
                Type::Int,
                Expr::ite(
                    Expr::Prim(Op::IsZero, vec![Expr::var("n")], Label(0)),
                    Expr::Num(0),
                    Expr::Prim(Op::Div, vec![Expr::Num(100), Expr::var("n")], Label(1)),
                ),
            ),
            Expr::Opaque(Type::Int, Label(2)),
        );
        assert_eq!(analyze(&program), Analysis::Verified);
    }

    #[test]
    fn unguarded_division_yields_counterexample() {
        // λn. div 100 n applied to an unknown: n = 0 crashes.
        let program = Expr::app(
            Expr::lam(
                "n",
                Type::Int,
                Expr::Prim(Op::Div, vec![Expr::Num(100), Expr::var("n")], Label(1)),
            ),
            Expr::Opaque(Type::Int, Label(2)),
        );
        match analyze(&program) {
            Analysis::Counterexample(cex) => {
                assert!(cex.validated);
                assert_eq!(cex.binding(Label(2)), Some(&Expr::Num(0)));
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn quickcheck_hard_case_is_found() {
        // f n = 1 / (100 - n): the bug needs exactly n = 100 (§5.2).
        let program = Expr::app(
            Expr::lam(
                "n",
                Type::Int,
                Expr::Prim(
                    Op::Div,
                    vec![
                        Expr::Num(1),
                        Expr::Prim(Op::Sub, vec![Expr::Num(100), Expr::var("n")], Label(0)),
                    ],
                    Label(1),
                ),
            ),
            Expr::Opaque(Type::Int, Label(2)),
        );
        match analyze(&program) {
            Analysis::Counterexample(cex) => {
                assert!(cex.validated);
                assert_eq!(cex.binding(Label(2)), Some(&Expr::Num(100)));
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn ill_typed_programs_are_rejected() {
        let program = Expr::app(Expr::Num(1), Expr::Num(2));
        assert!(matches!(analyze(&program), Analysis::IllTyped(_)));
    }
}
