//! The δ relation: primitive operations over (possibly symbolic) values
//! (Fig. 3).
//!
//! δ is a *relation*, not a function: applied to opaque arguments an
//! operation may produce several outcomes, each with its own refined heap.
//! For example `div` with an unconstrained denominator both returns a fresh
//! symbolic result (on the heap where the denominator is refined non-zero)
//! and raises a division error (on the heap where the denominator is
//! refined to zero). The proof relation is consulted first so that branches
//! already excluded by the path condition are never produced.

use folic::CmpOp;

use crate::heap::{Heap, Loc, Refinement, Storeable, SymExpr};
use crate::prove::{Proof, Prover};
use crate::syntax::{Blame, Label, Op};
use crate::types::Type;

/// One possible outcome of a primitive application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrimOutcome {
    /// A value (a location in the accompanying heap).
    Value(Loc),
    /// An error blaming the application site.
    Error(Blame),
}

/// A primitive outcome together with the heap it holds in.
pub type DeltaResult = (PrimOutcome, Heap);

/// The symbolic operand for a location: its concrete number if known,
/// otherwise the location itself.
fn operand(heap: &Heap, loc: Loc) -> SymExpr {
    match heap.num_at(loc) {
        Some(n) => SymExpr::int(n),
        None => SymExpr::loc(loc),
    }
}

/// Truth of the value at `loc`: the list of `(is_true, heap)` branches.
/// Mirrors the paper's use of `δ(Σ, zero?, L)` for conditionals (0 is false,
/// anything else is true).
pub fn branch_truth(prover: &Prover, heap: &Heap, loc: Loc) -> Vec<(bool, Heap)> {
    match heap.num_at(loc) {
        Some(n) => vec![(n != 0, heap.clone())],
        None => match prover.prove(heap, loc, &Refinement::zero()) {
            Proof::Proved => vec![(false, heap.clone())],
            Proof::Refuted => vec![(true, heap.clone())],
            Proof::Ambiguous => {
                // True branch: the value is non-zero; false branch: it is 0.
                // Both branches keep the refinements already accumulated (the
                // worked example's final heap keeps `(= (- 100 L4))` next to
                // the new `(= 0)`), so the constraint set stays complete.
                let mut non_zero = heap.clone();
                non_zero.refine(loc, Refinement::non_zero());
                let mut zero = heap.clone();
                zero.refine(loc, Refinement::zero());
                vec![(true, non_zero), (false, zero)]
            }
        },
    }
}

/// Applies primitive `op` to argument locations `args`, blaming `label` on
/// failure. Returns every possible outcome with its refined heap.
pub fn delta(prover: &Prover, heap: &Heap, op: Op, args: &[Loc], label: Label) -> Vec<DeltaResult> {
    debug_assert_eq!(args.len(), op.arity(), "δ applied at wrong arity");
    let concrete: Option<Vec<i64>> = args.iter().map(|&l| heap.num_at(l)).collect();
    if let Some(values) = concrete {
        return concrete_delta(heap, op, &values, label);
    }
    symbolic_delta(prover, heap, op, args, label)
}

/// All arguments concrete: ordinary arithmetic.
fn concrete_delta(heap: &Heap, op: Op, values: &[i64], label: Label) -> Vec<DeltaResult> {
    let mut heap = heap.clone();
    let blame = Blame { label, op };
    let result = match op {
        Op::IsZero | Op::Not => Some(i64::from(values[0] == 0)),
        Op::Add1 => Some(values[0].wrapping_add(1)),
        Op::Sub1 => Some(values[0].wrapping_sub(1)),
        Op::Add => Some(values[0].wrapping_add(values[1])),
        Op::Sub => Some(values[0].wrapping_sub(values[1])),
        Op::Mul => Some(values[0].wrapping_mul(values[1])),
        Op::Div => {
            if values[1] == 0 {
                None
            } else {
                Some(values[0].wrapping_div(values[1]))
            }
        }
        Op::Mod => {
            if values[1] == 0 {
                None
            } else {
                Some(values[0].wrapping_rem(values[1]))
            }
        }
        Op::Eq => Some(i64::from(values[0] == values[1])),
        Op::Lt => Some(i64::from(values[0] < values[1])),
        Op::Le => Some(i64::from(values[0] <= values[1])),
        Op::Gt => Some(i64::from(values[0] > values[1])),
        Op::Ge => Some(i64::from(values[0] >= values[1])),
        Op::Assert => {
            if values[0] == 0 {
                None
            } else {
                Some(values[0])
            }
        }
    };
    match result {
        Some(value) => {
            let loc = heap.alloc(Storeable::Num(value));
            vec![(PrimOutcome::Value(loc), heap)]
        }
        None => vec![(PrimOutcome::Error(blame), heap)],
    }
}

/// At least one argument symbolic.
fn symbolic_delta(
    prover: &Prover,
    heap: &Heap,
    op: Op,
    args: &[Loc],
    label: Label,
) -> Vec<DeltaResult> {
    let blame = Blame { label, op };
    match op {
        // Predicates on a single value: zero? / not.
        Op::IsZero | Op::Not => {
            let loc = args[0];
            branch_truth(prover, heap, loc)
                .into_iter()
                .map(|(is_true, mut branch_heap)| {
                    // zero? yields 1 exactly when the value is *not* true.
                    let result = branch_heap.alloc(Storeable::Num(i64::from(!is_true)));
                    (PrimOutcome::Value(result), branch_heap)
                })
                .collect()
        }
        // Assertions: error exactly when the value is zero.
        Op::Assert => {
            let loc = args[0];
            branch_truth(prover, heap, loc)
                .into_iter()
                .map(|(is_true, branch_heap)| {
                    if is_true {
                        (PrimOutcome::Value(loc), branch_heap)
                    } else {
                        (PrimOutcome::Error(blame), branch_heap)
                    }
                })
                .collect()
        }
        // Comparisons: branch on the relation, refining the symbolic side.
        Op::Eq | Op::Lt | Op::Le | Op::Gt | Op::Ge => {
            comparison_delta(prover, heap, op, args[0], args[1])
        }
        // Total arithmetic: a fresh symbolic result remembering its defining
        // equation.
        Op::Add1 | Op::Sub1 | Op::Add | Op::Sub | Op::Mul => {
            let mut heap = heap.clone();
            let expr = arithmetic_expr(&heap, op, args);
            let result = heap.alloc_fresh_opaque(Type::Int);
            heap.refine(result, Refinement::new(CmpOp::Eq, expr));
            vec![(PrimOutcome::Value(result), heap)]
        }
        // Partial arithmetic: branch on the divisor being zero.
        Op::Div | Op::Mod => {
            let divisor = args[1];
            let mut outcomes = Vec::new();
            for (divisor_non_zero, branch_heap) in branch_truth(prover, heap, divisor) {
                if divisor_non_zero {
                    let mut branch_heap = branch_heap;
                    let expr = arithmetic_expr(&branch_heap, op, args);
                    let result = branch_heap.alloc_fresh_opaque(Type::Int);
                    branch_heap.refine(result, Refinement::new(CmpOp::Eq, expr));
                    outcomes.push((PrimOutcome::Value(result), branch_heap));
                } else {
                    outcomes.push((PrimOutcome::Error(blame), branch_heap));
                }
            }
            outcomes
        }
    }
}

/// The defining symbolic expression for an arithmetic operation.
fn arithmetic_expr(heap: &Heap, op: Op, args: &[Loc]) -> SymExpr {
    match op {
        Op::Add1 => SymExpr::Add(Box::new(operand(heap, args[0])), Box::new(SymExpr::int(1))),
        Op::Sub1 => SymExpr::Sub(Box::new(operand(heap, args[0])), Box::new(SymExpr::int(1))),
        _ => SymExpr::binary(op, operand(heap, args[0]), operand(heap, args[1]))
            .expect("arithmetic operation"),
    }
}

/// Comparison on possibly-symbolic operands: decide with the prover when
/// possible, otherwise branch and refine.
fn comparison_delta(
    prover: &Prover,
    heap: &Heap,
    op: Op,
    left: Loc,
    right: Loc,
) -> Vec<DeltaResult> {
    let cmp = match op {
        Op::Eq => CmpOp::Eq,
        Op::Lt => CmpOp::Lt,
        Op::Le => CmpOp::Le,
        Op::Gt => CmpOp::Gt,
        Op::Ge => CmpOp::Ge,
        _ => unreachable!("not a comparison"),
    };
    // Pick the symbolic side to attach refinements to.
    let (subject, subject_cmp, other) = if heap.num_at(left).is_none() {
        (left, cmp, right)
    } else {
        // left concrete, right symbolic: flip the relation.
        let flipped = match cmp {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        };
        (right, flipped, left)
    };
    let holds = Refinement::new(subject_cmp, operand(heap, other));
    let fails = Refinement::new(subject_cmp.negate(), operand(heap, other));
    match prover.prove(heap, subject, &holds) {
        Proof::Proved => {
            let mut heap = heap.clone();
            let result = heap.alloc(Storeable::Num(1));
            vec![(PrimOutcome::Value(result), heap)]
        }
        Proof::Refuted => {
            let mut heap = heap.clone();
            let result = heap.alloc(Storeable::Num(0));
            vec![(PrimOutcome::Value(result), heap)]
        }
        Proof::Ambiguous => {
            let mut true_heap = heap.clone();
            true_heap.refine(subject, holds);
            let true_result = true_heap.alloc(Storeable::Num(1));
            let mut false_heap = heap.clone();
            false_heap.refine(subject, fails);
            let false_result = false_heap.alloc(Storeable::Num(0));
            vec![
                (PrimOutcome::Value(true_result), true_heap),
                (PrimOutcome::Value(false_result), false_heap),
            ]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn label() -> Label {
        Label(99)
    }

    #[test]
    fn concrete_arithmetic() {
        let mut heap = Heap::new();
        let a = heap.alloc(Storeable::Num(7));
        let b = heap.alloc(Storeable::Num(5));
        let prover = Prover::new();
        let results = delta(&prover, &heap, Op::Add, &[a, b], label());
        assert_eq!(results.len(), 1);
        match &results[0] {
            (PrimOutcome::Value(loc), heap) => assert_eq!(heap.num_at(*loc), Some(12)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn concrete_division_by_zero_errors() {
        let mut heap = Heap::new();
        let a = heap.alloc(Storeable::Num(1));
        let b = heap.alloc(Storeable::Num(0));
        let prover = Prover::new();
        let results = delta(&prover, &heap, Op::Div, &[a, b], label());
        assert_eq!(results.len(), 1);
        assert!(matches!(results[0].0, PrimOutcome::Error(_)));
    }

    #[test]
    fn symbolic_division_branches() {
        let mut heap = Heap::new();
        let a = heap.alloc(Storeable::Num(1));
        let b = heap.alloc_fresh_opaque(Type::Int);
        let prover = Prover::new();
        let results = delta(&prover, &heap, Op::Div, &[a, b], label());
        assert_eq!(results.len(), 2, "both the value and the error branch");
        let errors = results
            .iter()
            .filter(|(o, _)| matches!(o, PrimOutcome::Error(_)))
            .count();
        assert_eq!(errors, 1);
    }

    #[test]
    fn refined_divisor_does_not_error() {
        let mut heap = Heap::new();
        let a = heap.alloc(Storeable::Num(1));
        let b = heap.alloc_fresh_opaque(Type::Int);
        heap.refine(b, Refinement::new(CmpOp::Ge, SymExpr::int(1)));
        let prover = Prover::new();
        let results = delta(&prover, &heap, Op::Div, &[a, b], label());
        assert_eq!(results.len(), 1);
        assert!(matches!(results[0].0, PrimOutcome::Value(_)));
    }

    #[test]
    fn symbolic_zero_test_branches_and_refines() {
        let mut heap = Heap::new();
        let l = heap.alloc_fresh_opaque(Type::Int);
        let prover = Prover::new();
        let results = delta(&prover, &heap, Op::IsZero, &[l], label());
        assert_eq!(results.len(), 2);
        // One branch refines the argument to zero, the other to non-zero.
        let zero_branches = results
            .iter()
            .filter(|(_, h)| match h.get(l) {
                Storeable::Opaque { refinements, .. } => refinements.contains(&Refinement::zero()),
                _ => false,
            })
            .count();
        let non_zero_branches = results
            .iter()
            .filter(|(_, h)| match h.get(l) {
                Storeable::Opaque { refinements, .. } => {
                    refinements.contains(&Refinement::non_zero())
                }
                _ => false,
            })
            .count();
        assert_eq!(zero_branches, 1);
        assert_eq!(non_zero_branches, 1);
    }

    #[test]
    fn symbolic_arithmetic_records_defining_equation() {
        let mut heap = Heap::new();
        let hundred = heap.alloc(Storeable::Num(100));
        let n = heap.alloc_fresh_opaque(Type::Int);
        let prover = Prover::new();
        let results = delta(&prover, &heap, Op::Sub, &[hundred, n], label());
        assert_eq!(results.len(), 1);
        let (outcome, result_heap) = &results[0];
        let PrimOutcome::Value(result) = outcome else {
            panic!("expected a value")
        };
        match result_heap.get(*result) {
            Storeable::Opaque { refinements, .. } => {
                assert_eq!(refinements.len(), 1);
                assert_eq!(refinements[0].op, CmpOp::Eq);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn comparison_on_constrained_value_is_decided() {
        let mut heap = Heap::new();
        let l = heap.alloc_fresh_opaque(Type::Int);
        heap.refine(l, Refinement::new(CmpOp::Ge, SymExpr::int(10)));
        let five = heap.alloc(Storeable::Num(5));
        let prover = Prover::new();
        // l > 5 is proved.
        let results = delta(&prover, &heap, Op::Gt, &[l, five], label());
        assert_eq!(results.len(), 1);
        match &results[0] {
            (PrimOutcome::Value(loc), h) => assert_eq!(h.num_at(*loc), Some(1)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn assert_on_symbolic_value_branches() {
        let mut heap = Heap::new();
        let l = heap.alloc_fresh_opaque(Type::Int);
        let prover = Prover::new();
        let results = delta(&prover, &heap, Op::Assert, &[l], label());
        assert_eq!(results.len(), 2);
        assert!(results
            .iter()
            .any(|(o, _)| matches!(o, PrimOutcome::Error(_))));
        assert!(results
            .iter()
            .any(|(o, _)| matches!(o, PrimOutcome::Value(_))));
    }
}
