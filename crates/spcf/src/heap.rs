//! The symbolic heap: locations, storeables and refinements.
//!
//! Every value is allocated in the heap and referred to by a [`Loc`]ation
//! (rules `Opq` and `Conc` of the paper). The heap maps each location to an
//! upper bound on the value's run-time behaviour: a concrete number, a
//! λ-abstraction, an opaque value together with the refinements execution
//! has learned about it, or a `case` map memoising applications of an
//! opaque first-order function.
//!
//! The heap *is* the path condition: its translation into a first-order
//! formula (see [`crate::translate`]) is what gets sent to the solver.

use std::collections::BTreeMap;
use std::fmt;

use folic::CmpOp;

use crate::syntax::{Expr, Label};
use crate::types::Type;

/// A heap location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Loc(u32);

impl Loc {
    /// Creates a location from its index.
    pub fn new(index: u32) -> Self {
        Loc(index)
    }

    /// The index of the location.
    pub fn index(self) -> u32 {
        self.0
    }

    /// The solver variable standing for the integer value at this location.
    pub fn solver_var(self) -> folic::Var {
        folic::Var::new(self.0)
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// A symbolic integer expression over heap locations: the right-hand sides
/// of refinements recorded by primitive operations (`(≡ (- 100 L4))` and the
/// like).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymExpr {
    /// A location's integer value.
    Loc(Loc),
    /// A constant.
    Const(i64),
    /// Addition.
    Add(Box<SymExpr>, Box<SymExpr>),
    /// Subtraction.
    Sub(Box<SymExpr>, Box<SymExpr>),
    /// Multiplication.
    Mul(Box<SymExpr>, Box<SymExpr>),
    /// Truncated integer division (the divisor is known non-zero on the
    /// branch that records this refinement).
    Div(Box<SymExpr>, Box<SymExpr>),
    /// Remainder.
    Mod(Box<SymExpr>, Box<SymExpr>),
}

impl SymExpr {
    /// Shorthand for a location operand.
    pub fn loc(l: Loc) -> Self {
        SymExpr::Loc(l)
    }

    /// Shorthand for a constant operand.
    pub fn int(n: i64) -> Self {
        SymExpr::Const(n)
    }

    /// Builds the binary expression for `op` applied to `a` and `b` when the
    /// operation is arithmetic; returns `None` for predicates.
    pub fn binary(op: crate::syntax::Op, a: SymExpr, b: SymExpr) -> Option<SymExpr> {
        use crate::syntax::Op;
        Some(match op {
            Op::Add => SymExpr::Add(Box::new(a), Box::new(b)),
            Op::Sub => SymExpr::Sub(Box::new(a), Box::new(b)),
            Op::Mul => SymExpr::Mul(Box::new(a), Box::new(b)),
            Op::Div => SymExpr::Div(Box::new(a), Box::new(b)),
            Op::Mod => SymExpr::Mod(Box::new(a), Box::new(b)),
            _ => return None,
        })
    }

    /// Evaluates the expression given concrete values for locations.
    pub fn eval<F>(&self, lookup: &F) -> Option<i64>
    where
        F: Fn(Loc) -> Option<i64>,
    {
        match self {
            SymExpr::Loc(l) => lookup(*l),
            SymExpr::Const(n) => Some(*n),
            SymExpr::Add(a, b) => a.eval(lookup)?.checked_add(b.eval(lookup)?),
            SymExpr::Sub(a, b) => a.eval(lookup)?.checked_sub(b.eval(lookup)?),
            SymExpr::Mul(a, b) => a.eval(lookup)?.checked_mul(b.eval(lookup)?),
            SymExpr::Div(a, b) => {
                let d = b.eval(lookup)?;
                if d == 0 {
                    None
                } else {
                    a.eval(lookup)?.checked_div(d)
                }
            }
            SymExpr::Mod(a, b) => {
                let d = b.eval(lookup)?;
                if d == 0 {
                    None
                } else {
                    a.eval(lookup)?.checked_rem(d)
                }
            }
        }
    }

    /// Collects the locations mentioned by the expression.
    pub fn collect_locs(&self, out: &mut Vec<Loc>) {
        match self {
            SymExpr::Loc(l) => {
                if !out.contains(l) {
                    out.push(*l);
                }
            }
            SymExpr::Const(_) => {}
            SymExpr::Add(a, b)
            | SymExpr::Sub(a, b)
            | SymExpr::Mul(a, b)
            | SymExpr::Div(a, b)
            | SymExpr::Mod(a, b) => {
                a.collect_locs(out);
                b.collect_locs(out);
            }
        }
    }
}

impl fmt::Display for SymExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymExpr::Loc(l) => write!(f, "{l}"),
            SymExpr::Const(n) => write!(f, "{n}"),
            SymExpr::Add(a, b) => write!(f, "(+ {a} {b})"),
            SymExpr::Sub(a, b) => write!(f, "(- {a} {b})"),
            SymExpr::Mul(a, b) => write!(f, "(* {a} {b})"),
            SymExpr::Div(a, b) => write!(f, "(div {a} {b})"),
            SymExpr::Mod(a, b) => write!(f, "(mod {a} {b})"),
        }
    }
}

/// A refinement recorded on an opaque base value: the location's value
/// stands in relation `op` to the symbolic expression `rhs`.
///
/// For example the paper's `•int, (λx. x = (100 - L4)), (λx. zero? x)` is the
/// refinement list `[Cmp(Eq, 100 - L4), Cmp(Eq, 0)]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Refinement {
    /// The comparison relating the location to `rhs`.
    pub op: CmpOp,
    /// The symbolic right-hand side.
    pub rhs: SymExpr,
}

impl Refinement {
    /// `L op rhs`.
    pub fn new(op: CmpOp, rhs: SymExpr) -> Self {
        Refinement { op, rhs }
    }

    /// `L = 0` (the result of a successful `zero?`).
    pub fn zero() -> Self {
        Refinement::new(CmpOp::Eq, SymExpr::int(0))
    }

    /// `L ≠ 0`.
    pub fn non_zero() -> Self {
        Refinement::new(CmpOp::Ne, SymExpr::int(0))
    }

    /// Checks the refinement against concrete values.
    pub fn holds<F>(&self, value: i64, lookup: &F) -> Option<bool>
    where
        F: Fn(Loc) -> Option<i64>,
    {
        Some(self.op.eval(value, self.rhs.eval(lookup)?))
    }
}

impl fmt::Display for Refinement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(λx. ({} x {}))", self.op, self.rhs)
    }
}

/// What the heap stores at a location (`S` in Fig. 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Storeable {
    /// A concrete integer.
    Num(i64),
    /// A λ-abstraction (closed via locations).
    Lam {
        /// Parameter name.
        param: String,
        /// Parameter type.
        param_ty: Type,
        /// Body expression.
        body: Expr,
    },
    /// An opaque value of the given type with accumulated refinements.
    Opaque {
        /// The value's type.
        ty: Type,
        /// Refinements accumulated along the current path (base type only).
        refinements: Vec<Refinement>,
    },
    /// A memoised map approximating an opaque function whose argument is of
    /// base type: applications seen so far, as `(argument, result)` location
    /// pairs, plus the codomain type for allocating new results.
    Case {
        /// Result type of the function.
        result_ty: Type,
        /// Memoised `(argument location, result location)` pairs.
        entries: Vec<(Loc, Loc)>,
    },
}

impl Storeable {
    /// True if the storeable is (still) opaque.
    pub fn is_opaque(&self) -> bool {
        matches!(self, Storeable::Opaque { .. })
    }

    /// The concrete number stored, if any.
    pub fn as_num(&self) -> Option<i64> {
        match self {
            Storeable::Num(n) => Some(*n),
            _ => None,
        }
    }
}

impl fmt::Display for Storeable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Storeable::Num(n) => write!(f, "{n}"),
            Storeable::Lam { param, .. } => write!(f, "(λ ({param}) …)"),
            Storeable::Opaque { ty, refinements } => {
                write!(f, "•{ty}")?;
                for r in refinements {
                    write!(f, ", {r}")?;
                }
                Ok(())
            }
            Storeable::Case { entries, .. } => {
                write!(f, "(case")?;
                for (a, r) in entries {
                    write!(f, " [{a} ↦ {r}]")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// The symbolic heap `Σ`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Heap {
    entries: BTreeMap<Loc, Storeable>,
    /// Locations already allocated for opaque source labels, so that the
    /// same opaque value reuses its location (rule `Opq`).
    opaque_locs: BTreeMap<Label, Loc>,
    next: u32,
}

impl Heap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        Heap::default()
    }

    /// Number of allocated locations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been allocated.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Allocates a fresh location holding `value`.
    pub fn alloc(&mut self, value: Storeable) -> Loc {
        let loc = Loc::new(self.next);
        self.next += 1;
        self.entries.insert(loc, value);
        loc
    }

    /// Allocates (or returns the existing) location for the opaque value
    /// with source label `label`.
    pub fn alloc_opaque(&mut self, ty: Type, label: Label) -> Loc {
        if let Some(&loc) = self.opaque_locs.get(&label) {
            return loc;
        }
        let loc = self.alloc(Storeable::Opaque {
            ty,
            refinements: Vec::new(),
        });
        self.opaque_locs.insert(label, loc);
        loc
    }

    /// Allocates a fresh anonymous opaque value of type `ty`.
    pub fn alloc_fresh_opaque(&mut self, ty: Type) -> Loc {
        self.alloc(Storeable::Opaque {
            ty,
            refinements: Vec::new(),
        })
    }

    /// The location previously allocated for an opaque source label, if any.
    pub fn opaque_loc(&self, label: Label) -> Option<Loc> {
        self.opaque_locs.get(&label).copied()
    }

    /// Looks up a location.
    ///
    /// # Panics
    ///
    /// Panics if the location was never allocated — that would be a bug in
    /// the reduction rules, not a user error.
    pub fn get(&self, loc: Loc) -> &Storeable {
        self.entries
            .get(&loc)
            .unwrap_or_else(|| panic!("dangling location {loc}"))
    }

    /// Looks up a location, returning `None` if it was never allocated.
    pub fn try_get(&self, loc: Loc) -> Option<&Storeable> {
        self.entries.get(&loc)
    }

    /// Overwrites the storeable at `loc` (used by the `AppOpq*` rules to
    /// refine an opaque function's shape).
    pub fn set(&mut self, loc: Loc, value: Storeable) {
        self.entries.insert(loc, value);
    }

    /// Adds a refinement to the opaque base value at `loc`.
    ///
    /// # Panics
    ///
    /// Panics if `loc` does not hold an opaque value (the δ rules only refine
    /// opaque values).
    pub fn refine(&mut self, loc: Loc, refinement: Refinement) {
        match self.entries.get_mut(&loc) {
            Some(Storeable::Opaque { refinements, .. }) => {
                if !refinements.contains(&refinement) {
                    refinements.push(refinement);
                }
            }
            other => panic!("refining non-opaque location {loc}: {other:?}"),
        }
    }

    /// Replaces an opaque base value by a concrete number (used when a
    /// branch determines the value exactly, e.g. the true branch of
    /// `zero?`).
    pub fn concretise(&mut self, loc: Loc, value: i64) {
        self.entries.insert(loc, Storeable::Num(value));
    }

    /// Iterates over `(location, storeable)` pairs in allocation order.
    pub fn iter(&self) -> impl Iterator<Item = (Loc, &Storeable)> + '_ {
        self.entries.iter().map(|(l, s)| (*l, s))
    }

    /// The concrete integer at `loc`, if it holds one.
    pub fn num_at(&self, loc: Loc) -> Option<i64> {
        self.try_get(loc).and_then(Storeable::as_num)
    }

    /// The type of the value stored at `loc`, when it can be determined
    /// syntactically (numbers are `Int`, opaques carry their type, λ and
    /// case maps would need an environment so return `None`).
    pub fn type_of(&self, loc: Loc) -> Option<Type> {
        match self.try_get(loc)? {
            Storeable::Num(_) => Some(Type::Int),
            Storeable::Opaque { ty, .. } => Some(ty.clone()),
            _ => None,
        }
    }

    /// Index that the next allocation will use; useful for generating
    /// solver variables that cannot clash with locations.
    pub fn next_index(&self) -> u32 {
        self.next
    }
}

impl fmt::Display for Heap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[")?;
        for (loc, value) in self.iter() {
            writeln!(f, "  {loc} ↦ {value}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_is_sequential() {
        let mut heap = Heap::new();
        let a = heap.alloc(Storeable::Num(1));
        let b = heap.alloc(Storeable::Num(2));
        assert_ne!(a, b);
        assert_eq!(heap.num_at(a), Some(1));
        assert_eq!(heap.num_at(b), Some(2));
        assert_eq!(heap.len(), 2);
    }

    #[test]
    fn opaque_locations_are_reused_per_label() {
        let mut heap = Heap::new();
        let first = heap.alloc_opaque(Type::Int, Label(7));
        let second = heap.alloc_opaque(Type::Int, Label(7));
        assert_eq!(first, second);
        let third = heap.alloc_opaque(Type::Int, Label(8));
        assert_ne!(first, third);
    }

    #[test]
    fn refinements_accumulate_without_duplicates() {
        let mut heap = Heap::new();
        let loc = heap.alloc_fresh_opaque(Type::Int);
        heap.refine(loc, Refinement::zero());
        heap.refine(loc, Refinement::zero());
        heap.refine(loc, Refinement::non_zero());
        match heap.get(loc) {
            Storeable::Opaque { refinements, .. } => assert_eq!(refinements.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sym_expr_evaluation() {
        let mut heap = Heap::new();
        let l = heap.alloc(Storeable::Num(58));
        let e = SymExpr::Sub(Box::new(SymExpr::int(100)), Box::new(SymExpr::loc(l)));
        let lookup = |loc: Loc| heap.num_at(loc);
        assert_eq!(e.eval(&lookup), Some(42));
        let division = SymExpr::Div(Box::new(SymExpr::int(10)), Box::new(SymExpr::int(0)));
        assert_eq!(division.eval(&lookup), None);
    }

    #[test]
    fn refinement_holds_checks_relation() {
        let heap = Heap::new();
        let lookup = |_: Loc| None::<i64>;
        assert_eq!(Refinement::zero().holds(0, &lookup), Some(true));
        assert_eq!(Refinement::zero().holds(3, &lookup), Some(false));
        assert_eq!(Refinement::non_zero().holds(3, &lookup), Some(true));
        drop(heap);
    }

    #[test]
    fn concretise_overwrites_opaque() {
        let mut heap = Heap::new();
        let loc = heap.alloc_fresh_opaque(Type::Int);
        heap.concretise(loc, 42);
        assert_eq!(heap.num_at(loc), Some(42));
    }
}
