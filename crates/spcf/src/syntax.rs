//! Abstract syntax of Symbolic PCF.
//!
//! The expression language follows Figure 1 of the paper: PCF (variables,
//! integer literals, λ-abstractions, application, conditionals, primitive
//! applications, recursion) extended with opaque values `•ᵀ`. Source
//! locations that can fail (primitive applications) and opaque values carry
//! unique [`Label`]s, which is what blame and counterexample reporting refer
//! back to.
//!
//! During evaluation, variables are substituted by heap [`Loc`]ations, so
//! locations also appear as an (internal) expression form, as in the paper's
//! answers `A ::= L | err`.

use std::fmt;

use crate::heap::Loc;
use crate::types::Type;

/// A source label, identifying either an opaque value's source position or a
/// primitive application that can fail (a blame target).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(pub u32);

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ℓ{}", self.0)
    }
}

/// Primitive operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// `zero?` — 1 if the argument is 0, else 0.
    IsZero,
    /// `add1` — successor.
    Add1,
    /// `sub1` — predecessor.
    Sub1,
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Integer division; errors when the divisor is zero.
    Div,
    /// Remainder; errors when the divisor is zero.
    Mod,
    /// Equality test (1 / 0).
    Eq,
    /// Less-than test.
    Lt,
    /// Less-or-equal test.
    Le,
    /// Greater-than test.
    Gt,
    /// Greater-or-equal test.
    Ge,
    /// Boolean negation on 0/1-encoded booleans.
    Not,
    /// `assert` — errors when the argument is 0, otherwise returns it.
    Assert,
}

impl Op {
    /// The number of arguments the operation takes.
    pub fn arity(self) -> usize {
        match self {
            Op::IsZero | Op::Add1 | Op::Sub1 | Op::Not | Op::Assert => 1,
            _ => 2,
        }
    }

    /// True if the operation can fail (and therefore carries blame).
    pub fn is_partial(self) -> bool {
        matches!(self, Op::Div | Op::Mod | Op::Assert)
    }

    /// The surface-syntax name of the operation.
    pub fn name(self) -> &'static str {
        match self {
            Op::IsZero => "zero?",
            Op::Add1 => "add1",
            Op::Sub1 => "sub1",
            Op::Add => "+",
            Op::Sub => "-",
            Op::Mul => "*",
            Op::Div => "div",
            Op::Mod => "mod",
            Op::Eq => "=",
            Op::Lt => "<",
            Op::Le => "<=",
            Op::Gt => ">",
            Op::Ge => ">=",
            Op::Not => "not",
            Op::Assert => "assert",
        }
    }

    /// Parses an operation from its surface name.
    pub fn from_name(name: &str) -> Option<Op> {
        Some(match name {
            "zero?" => Op::IsZero,
            "add1" => Op::Add1,
            "sub1" => Op::Sub1,
            "+" => Op::Add,
            "-" => Op::Sub,
            "*" => Op::Mul,
            "div" | "/" | "quotient" => Op::Div,
            "mod" | "modulo" | "remainder" => Op::Mod,
            "=" => Op::Eq,
            "<" => Op::Lt,
            "<=" => Op::Le,
            ">" => Op::Gt,
            ">=" => Op::Ge,
            "not" => Op::Not,
            "assert" => Op::Assert,
            _ => return None,
        })
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An error: blame of a source label for violating a primitive's
/// precondition (`err_O^L` in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Blame {
    /// The blamed source label.
    pub label: Label,
    /// The primitive whose precondition was violated.
    pub op: Op,
}

impl fmt::Display for Blame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "error: {} violates precondition of {}",
            self.label, self.op
        )
    }
}

/// Expressions of Symbolic PCF.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A variable.
    Var(String),
    /// An integer literal.
    Num(i64),
    /// `λ(x : T). e`
    Lam {
        /// Bound variable name.
        param: String,
        /// Type of the bound variable.
        param_ty: Type,
        /// Function body.
        body: Box<Expr>,
    },
    /// Application `e₁ e₂`.
    App(Box<Expr>, Box<Expr>),
    /// Conditional `if e₁ e₂ e₃` (0 is false, non-zero is true).
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Primitive application `(O e…)ᴸ` with a blame label.
    Prim(Op, Vec<Expr>, Label),
    /// An opaque (unknown) value `•ᵀ` with its source label.
    Opaque(Type, Label),
    /// Recursion `fix (f : T). e` — unfolds to `[fix (f:T). e / f] e`.
    Fix {
        /// Name bound to the recursive value.
        name: String,
        /// Type of the recursive value.
        ty: Type,
        /// Body.
        body: Box<Expr>,
    },
    /// A heap location (internal; produced by evaluation).
    Loc(Loc),
    /// An error answer (internal; produced by evaluation).
    Err(Blame),
}

impl Expr {
    /// `λ(x : T). e`
    pub fn lam(param: impl Into<String>, param_ty: Type, body: Expr) -> Expr {
        Expr::Lam {
            param: param.into(),
            param_ty,
            body: Box::new(body),
        }
    }

    /// Application.
    pub fn app(f: Expr, a: Expr) -> Expr {
        Expr::App(Box::new(f), Box::new(a))
    }

    /// Conditional.
    pub fn ite(c: Expr, t: Expr, e: Expr) -> Expr {
        Expr::If(Box::new(c), Box::new(t), Box::new(e))
    }

    /// Variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Recursion.
    pub fn fix(name: impl Into<String>, ty: Type, body: Expr) -> Expr {
        Expr::Fix {
            name: name.into(),
            ty,
            body: Box::new(body),
        }
    }

    /// `let x = e₁ in e₂`, desugared to `(λx. e₂) e₁`.
    pub fn let_in(name: impl Into<String>, ty: Type, bound: Expr, body: Expr) -> Expr {
        Expr::app(Expr::lam(name, ty, body), bound)
    }

    /// True if the expression is an answer (a location or an error).
    pub fn is_answer(&self) -> bool {
        matches!(self, Expr::Loc(_) | Expr::Err(_))
    }

    /// True if the expression is a syntactic value (literal, λ, or opaque).
    pub fn is_value(&self) -> bool {
        matches!(self, Expr::Num(_) | Expr::Lam { .. } | Expr::Opaque(_, _))
    }

    /// Capture-avoiding substitution of a *location* for a variable:
    /// `[loc/name] self`. Because only locations (which contain no variables)
    /// are ever substituted, no renaming is required.
    pub fn subst(&self, name: &str, loc: Loc) -> Expr {
        match self {
            Expr::Var(x) => {
                if x == name {
                    Expr::Loc(loc)
                } else {
                    self.clone()
                }
            }
            Expr::Num(_) | Expr::Opaque(_, _) | Expr::Loc(_) | Expr::Err(_) => self.clone(),
            Expr::Lam {
                param,
                param_ty,
                body,
            } => {
                if param == name {
                    self.clone()
                } else {
                    Expr::Lam {
                        param: param.clone(),
                        param_ty: param_ty.clone(),
                        body: Box::new(body.subst(name, loc)),
                    }
                }
            }
            Expr::App(f, a) => {
                Expr::App(Box::new(f.subst(name, loc)), Box::new(a.subst(name, loc)))
            }
            Expr::If(c, t, e) => Expr::If(
                Box::new(c.subst(name, loc)),
                Box::new(t.subst(name, loc)),
                Box::new(e.subst(name, loc)),
            ),
            Expr::Prim(op, args, label) => Expr::Prim(
                *op,
                args.iter().map(|a| a.subst(name, loc)).collect(),
                *label,
            ),
            Expr::Fix {
                name: rec_name,
                ty,
                body,
            } => {
                if rec_name == name {
                    self.clone()
                } else {
                    Expr::Fix {
                        name: rec_name.clone(),
                        ty: ty.clone(),
                        body: Box::new(body.subst(name, loc)),
                    }
                }
            }
        }
    }

    /// Substitutes an *expression* for a variable. Used when plugging
    /// reconstructed counterexample values back into the original program;
    /// the substituted expressions are always closed, so no capture can
    /// occur.
    pub fn subst_expr(&self, name: &str, replacement: &Expr) -> Expr {
        match self {
            Expr::Var(x) => {
                if x == name {
                    replacement.clone()
                } else {
                    self.clone()
                }
            }
            Expr::Num(_) | Expr::Opaque(_, _) | Expr::Loc(_) | Expr::Err(_) => self.clone(),
            Expr::Lam {
                param,
                param_ty,
                body,
            } => {
                if param == name {
                    self.clone()
                } else {
                    Expr::Lam {
                        param: param.clone(),
                        param_ty: param_ty.clone(),
                        body: Box::new(body.subst_expr(name, replacement)),
                    }
                }
            }
            Expr::App(f, a) => Expr::App(
                Box::new(f.subst_expr(name, replacement)),
                Box::new(a.subst_expr(name, replacement)),
            ),
            Expr::If(c, t, e) => Expr::If(
                Box::new(c.subst_expr(name, replacement)),
                Box::new(t.subst_expr(name, replacement)),
                Box::new(e.subst_expr(name, replacement)),
            ),
            Expr::Prim(op, args, label) => Expr::Prim(
                *op,
                args.iter()
                    .map(|a| a.subst_expr(name, replacement))
                    .collect(),
                *label,
            ),
            Expr::Fix {
                name: rec_name,
                ty,
                body,
            } => {
                if rec_name == name {
                    self.clone()
                } else {
                    Expr::Fix {
                        name: rec_name.clone(),
                        ty: ty.clone(),
                        body: Box::new(body.subst_expr(name, replacement)),
                    }
                }
            }
        }
    }

    /// Replaces every opaque sub-expression with the expression that
    /// `lookup` provides for its label (leaving it opaque when `lookup`
    /// returns `None`). Used to instantiate a program with a counterexample.
    pub fn instantiate_opaques<F>(&self, lookup: &F) -> Expr
    where
        F: Fn(Label) -> Option<Expr>,
    {
        match self {
            Expr::Opaque(_, label) => lookup(*label).unwrap_or_else(|| self.clone()),
            Expr::Var(_) | Expr::Num(_) | Expr::Loc(_) | Expr::Err(_) => self.clone(),
            Expr::Lam {
                param,
                param_ty,
                body,
            } => Expr::Lam {
                param: param.clone(),
                param_ty: param_ty.clone(),
                body: Box::new(body.instantiate_opaques(lookup)),
            },
            Expr::App(f, a) => Expr::App(
                Box::new(f.instantiate_opaques(lookup)),
                Box::new(a.instantiate_opaques(lookup)),
            ),
            Expr::If(c, t, e) => Expr::If(
                Box::new(c.instantiate_opaques(lookup)),
                Box::new(t.instantiate_opaques(lookup)),
                Box::new(e.instantiate_opaques(lookup)),
            ),
            Expr::Prim(op, args, label) => Expr::Prim(
                *op,
                args.iter().map(|a| a.instantiate_opaques(lookup)).collect(),
                *label,
            ),
            Expr::Fix { name, ty, body } => Expr::Fix {
                name: name.clone(),
                ty: ty.clone(),
                body: Box::new(body.instantiate_opaques(lookup)),
            },
        }
    }

    /// Collects the labels of all opaque sub-expressions (with their types).
    pub fn opaque_labels(&self) -> Vec<(Label, Type)> {
        let mut out = Vec::new();
        self.collect_opaques(&mut out);
        out
    }

    fn collect_opaques(&self, out: &mut Vec<(Label, Type)>) {
        match self {
            Expr::Opaque(ty, label) => {
                if !out.iter().any(|(l, _)| l == label) {
                    out.push((*label, ty.clone()));
                }
            }
            Expr::Var(_) | Expr::Num(_) | Expr::Loc(_) | Expr::Err(_) => {}
            Expr::Lam { body, .. } | Expr::Fix { body, .. } => body.collect_opaques(out),
            Expr::App(f, a) => {
                f.collect_opaques(out);
                a.collect_opaques(out);
            }
            Expr::If(c, t, e) => {
                c.collect_opaques(out);
                t.collect_opaques(out);
                e.collect_opaques(out);
            }
            Expr::Prim(_, args, _) => {
                for a in args {
                    a.collect_opaques(out);
                }
            }
        }
    }

    /// True if the expression contains no opaque sub-expressions.
    pub fn is_concrete(&self) -> bool {
        self.opaque_labels().is_empty()
    }

    /// The labels of the known program portion: every primitive-application
    /// label occurring syntactically in the expression (cf. the paper's
    /// `lab` metafunction, Fig. 6).
    pub fn known_labels(&self) -> Vec<Label> {
        let mut out = Vec::new();
        self.collect_known_labels(&mut out);
        out
    }

    fn collect_known_labels(&self, out: &mut Vec<Label>) {
        match self {
            Expr::Prim(_, args, label) => {
                if !out.contains(label) {
                    out.push(*label);
                }
                for a in args {
                    a.collect_known_labels(out);
                }
            }
            Expr::Var(_) | Expr::Num(_) | Expr::Opaque(_, _) | Expr::Loc(_) | Expr::Err(_) => {}
            Expr::Lam { body, .. } | Expr::Fix { body, .. } => body.collect_known_labels(out),
            Expr::App(f, a) => {
                f.collect_known_labels(out);
                a.collect_known_labels(out);
            }
            Expr::If(c, t, e) => {
                c.collect_known_labels(out);
                t.collect_known_labels(out);
                e.collect_known_labels(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_label(n: u32) -> Label {
        Label(n)
    }

    #[test]
    fn substitution_respects_binding() {
        // [L0/x] (λx. x) = λx. x  — the inner binder shadows.
        let inner = Expr::lam("x", Type::Int, Expr::var("x"));
        assert_eq!(inner.subst("x", Loc::new(0)), inner);
        // [L0/y] (λx. y) = λx. L0
        let open = Expr::lam("x", Type::Int, Expr::var("y"));
        let substituted = open.subst("y", Loc::new(0));
        match substituted {
            Expr::Lam { body, .. } => assert_eq!(*body, Expr::Loc(Loc::new(0))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn opaque_labels_are_collected_once() {
        let e = Expr::app(
            Expr::Opaque(Type::arrow(Type::Int, Type::Int), sample_label(1)),
            Expr::Prim(
                Op::Add,
                vec![
                    Expr::Opaque(Type::Int, sample_label(2)),
                    Expr::Opaque(Type::Int, sample_label(2)),
                ],
                sample_label(3),
            ),
        );
        let labels = e.opaque_labels();
        assert_eq!(labels.len(), 2);
        assert!(!e.is_concrete());
    }

    #[test]
    fn known_labels_cover_prim_sites() {
        let e = Expr::Prim(
            Op::Div,
            vec![
                Expr::Num(1),
                Expr::Prim(
                    Op::Sub,
                    vec![Expr::Num(100), Expr::var("n")],
                    sample_label(7),
                ),
            ],
            sample_label(8),
        );
        let labels = e.known_labels();
        assert!(labels.contains(&sample_label(7)));
        assert!(labels.contains(&sample_label(8)));
    }

    #[test]
    fn instantiation_replaces_opaques() {
        let e = Expr::app(
            Expr::Opaque(Type::arrow(Type::Int, Type::Int), sample_label(1)),
            Expr::Num(3),
        );
        let instantiated = e.instantiate_opaques(&|label| {
            (label == sample_label(1)).then(|| Expr::lam("x", Type::Int, Expr::var("x")))
        });
        assert!(instantiated.is_concrete());
    }

    #[test]
    fn op_names_round_trip() {
        for op in [
            Op::IsZero,
            Op::Add1,
            Op::Sub1,
            Op::Add,
            Op::Sub,
            Op::Mul,
            Op::Div,
            Op::Mod,
            Op::Eq,
            Op::Lt,
            Op::Le,
            Op::Gt,
            Op::Ge,
            Op::Not,
            Op::Assert,
        ] {
            assert_eq!(Op::from_name(op.name()), Some(op));
        }
        assert_eq!(Op::from_name("frobnicate"), None);
    }

    #[test]
    fn arity_and_partiality() {
        assert_eq!(Op::IsZero.arity(), 1);
        assert_eq!(Op::Div.arity(), 2);
        assert!(Op::Div.is_partial());
        assert!(Op::Assert.is_partial());
        assert!(!Op::Add.is_partial());
    }
}
