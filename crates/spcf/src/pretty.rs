//! Pretty-printing of expressions in the s-expression surface syntax.

use std::fmt;

use crate::syntax::Expr;

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Var(x) => write!(f, "{x}"),
            Expr::Num(n) => write!(f, "{n}"),
            Expr::Lam {
                param,
                param_ty,
                body,
            } => {
                write!(f, "(lambda ({param} : {param_ty}) {body})")
            }
            Expr::App(function, argument) => write!(f, "({function} {argument})"),
            Expr::If(c, t, e) => write!(f, "(if {c} {t} {e})"),
            Expr::Prim(op, args, _) => {
                write!(f, "({op}")?;
                for a in args {
                    write!(f, " {a}")?;
                }
                write!(f, ")")
            }
            Expr::Opaque(ty, label) => write!(f, "(• {ty} #{})", label.0),
            Expr::Fix { name, ty, body } => write!(f, "(fix ({name} : {ty}) {body})"),
            Expr::Loc(l) => write!(f, "{l}"),
            Expr::Err(blame) => write!(f, "(error {} {})", blame.op, blame.label),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::{Label, Op};
    use crate::types::Type;

    #[test]
    fn expressions_print_as_sexprs() {
        let e = Expr::app(
            Expr::lam(
                "x",
                Type::Int,
                Expr::Prim(Op::Add, vec![Expr::var("x"), Expr::Num(1)], Label(0)),
            ),
            Expr::Num(41),
        );
        assert_eq!(e.to_string(), "((lambda (x : int) (+ x 1)) 41)");
    }

    #[test]
    fn opaque_and_fix_print() {
        let e = Expr::Opaque(Type::arrow(Type::Int, Type::Int), Label(3));
        assert_eq!(e.to_string(), "(• (-> int int) #3)");
        let f = Expr::fix("f", Type::Int, Expr::Num(0));
        assert_eq!(f.to_string(), "(fix (f : int) 0)");
    }
}
