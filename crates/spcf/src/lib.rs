//! # spcf — Symbolic PCF with relatively complete counterexamples
//!
//! This crate implements the core formal model of *“Relatively Complete
//! Counterexamples for Higher-Order Programs”* (Nguyễn & Van Horn, PLDI
//! 2015): a heap-based symbolic execution semantics for PCF extended with
//! opaque (unknown, possibly higher-order) values, together with
//! counterexample construction from a first-order solver model.
//!
//! ## How it works
//!
//! 1. Programs are ordinary PCF terms plus `•ᵀ` (an unknown value of type
//!    `T`). Every value is allocated in a [`heap::Heap`]; the heap maps each
//!    location to an upper bound on the value's behaviour and doubles as the
//!    path condition ([`heap`]).
//! 2. Reduction ([`step`]) follows the paper's Fig. 2. Applying an unknown
//!    function *partially solves* for it: a base-typed argument introduces a
//!    memoising `case` map, a behavioural argument splits into the
//!    ignore/delay/explore shapes (`AppOpq2`/`AppOpq3`/`AppHavoc`).
//!    Primitive operations ([`delta`]) refine opaque base values instead of
//!    blocking on them.
//! 3. Branch feasibility is decided by the proof relation ([`prove`]), which
//!    translates the heap to quantifier-free integer formulas ([`translate`])
//!    and asks the first-order solver ([`folic`]).
//! 4. When an error state is reached, the same translation produces a model;
//!    plugging the model back into the heap's function shapes reconstructs a
//!    concrete, possibly higher-order counterexample ([`cex`]), which is then
//!    re-executed concretely ([`concrete`]) to confirm the blame (soundness,
//!    Theorem 1).
//!
//! The search is orchestrated by [`engine::Engine`], and programs can be
//! written in an s-expression surface syntax ([`parse`]).
//!
//! ## Example: the paper's worked example (§2)
//!
//! ```
//! use spcf::{analyze, parse, Analysis};
//!
//! // let f (g : int → int) (n : int) = 1 / (100 - (g n)) in (• f)
//! let program = parse::parse(
//!     "((• (-> (-> (-> int int) int int) int))
//!       (lambda (g : (-> int int)) (lambda (n : int)
//!         (div 1 (- 100 (g n))))))",
//! )
//! .expect("parses");
//!
//! match analyze(&program) {
//!     Analysis::Counterexample(cex) => {
//!         // The unknown context applies f to a function returning 100.
//!         assert!(cex.validated);
//!         println!("{cex}");
//!     }
//!     other => panic!("expected a counterexample, got {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cex;
pub mod concrete;
pub mod delta;
pub mod engine;
pub mod heap;
pub mod parse;
mod pretty;
pub mod prove;
pub mod step;
pub mod syntax;
pub mod translate;
pub mod typecheck;
pub mod types;

pub use cex::{CexOptions, Counterexample};
pub use engine::{analyze, Analysis, AnalysisOptions, Engine};
pub use heap::{Heap, Loc, Refinement, Storeable, SymExpr};
pub use prove::{Proof, Prover};
pub use step::{State, StepOptions};
pub use syntax::{Blame, Expr, Label, Op};
pub use typecheck::{check_program, type_of, TypeError};
pub use types::Type;
