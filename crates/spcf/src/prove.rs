//! The proof relation `Σ ⊢ L : P` (Fig. 5), backed by the first-order solver.
//!
//! A query translates the heap to a formula `φ` and the judgement `L : P` to
//! a formula `ψ`; validity of `φ ⇒ ψ` means *proved*, unsatisfiability of
//! `φ ∧ ψ` means *refuted*, anything else is *ambiguous*. Precision of the
//! symbolic execution — how few spurious branches it explores — depends
//! entirely on this relation; soundness does not.

use folic::{Formula, Model, SmtResult, Solver, SolverConfig};

use crate::heap::{Heap, Loc, Refinement};
use crate::translate::{translate_heap, translate_refinement, Translation};

pub use folic::Proof;

/// Configuration of proof-relation queries.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProveConfig {
    /// Underlying solver configuration.
    pub solver: SolverConfig,
}

/// A prover bundling the configuration; cheap to copy around the engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct Prover {
    /// The configuration used for every query.
    pub config: ProveConfig,
}

impl Prover {
    /// Creates a prover with default configuration.
    pub fn new() -> Self {
        Prover::default()
    }

    /// Decides whether the value at `loc` satisfies `refinement` under the
    /// assumptions recorded in `heap`.
    pub fn prove(&self, heap: &Heap, loc: Loc, refinement: &Refinement) -> Proof {
        let mut translation = translate_heap(heap);
        let goal = translate_refinement(loc, refinement, &mut translation);
        self.prove_goal(&translation, &goal)
    }

    /// Decides an arbitrary goal formula under the heap's translation plus
    /// any auxiliary constraints already in `translation`.
    pub fn prove_goal(&self, translation: &Translation, goal: &Formula) -> Proof {
        let mut solver = Solver::with_config(self.config.solver);
        for formula in &translation.formulas {
            solver.assert(formula.clone());
        }
        solver.prove(goal)
    }

    /// Produces a model of the heap's constraints, if one exists. This is the
    /// step that turns an error state's path condition into concrete base
    /// values for the counterexample.
    pub fn heap_model(&self, heap: &Heap) -> SmtResult {
        let translation = translate_heap(heap);
        let mut solver = Solver::with_config(self.config.solver);
        for formula in &translation.formulas {
            solver.assert(formula.clone());
        }
        solver.check()
    }

    /// Convenience: the model of the heap, or `None` when unsatisfiable or
    /// undecided.
    pub fn heap_model_opt(&self, heap: &Heap) -> Option<Model> {
        match self.heap_model(heap) {
            SmtResult::Sat(model) => Some(model),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::{Refinement, Storeable, SymExpr};
    use crate::types::Type;
    use folic::CmpOp;

    #[test]
    fn concrete_values_are_decided() {
        let mut heap = Heap::new();
        let l = heap.alloc(Storeable::Num(0));
        let prover = Prover::new();
        assert_eq!(prover.prove(&heap, l, &Refinement::zero()), Proof::Proved);
        assert_eq!(
            prover.prove(&heap, l, &Refinement::non_zero()),
            Proof::Refuted
        );
    }

    #[test]
    fn unconstrained_opaque_is_ambiguous() {
        let mut heap = Heap::new();
        let l = heap.alloc_fresh_opaque(Type::Int);
        let prover = Prover::new();
        assert_eq!(
            prover.prove(&heap, l, &Refinement::zero()),
            Proof::Ambiguous
        );
    }

    #[test]
    fn refinements_inform_the_proof() {
        let mut heap = Heap::new();
        let l = heap.alloc_fresh_opaque(Type::Int);
        heap.refine(l, Refinement::new(CmpOp::Ge, SymExpr::int(1)));
        let prover = Prover::new();
        assert_eq!(
            prover.prove(&heap, l, &Refinement::non_zero()),
            Proof::Proved
        );
        assert_eq!(prover.prove(&heap, l, &Refinement::zero()), Proof::Refuted);
    }

    #[test]
    fn heap_model_reflects_constraints() {
        let mut heap = Heap::new();
        let l4 = heap.alloc_fresh_opaque(Type::Int);
        let l5 = heap.alloc_fresh_opaque(Type::Int);
        heap.refine(
            l5,
            Refinement::new(
                CmpOp::Eq,
                SymExpr::Sub(Box::new(SymExpr::int(100)), Box::new(SymExpr::loc(l4))),
            ),
        );
        heap.refine(l5, Refinement::zero());
        let prover = Prover::new();
        let model = prover.heap_model_opt(&heap).expect("satisfiable heap");
        assert_eq!(model.value(l4.solver_var()), Some(100));
    }

    #[test]
    fn contradictory_heap_has_no_model() {
        let mut heap = Heap::new();
        let l = heap.alloc_fresh_opaque(Type::Int);
        heap.refine(l, Refinement::zero());
        heap.refine(l, Refinement::non_zero());
        let prover = Prover::new();
        assert!(prover.heap_model_opt(&heap).is_none());
    }
}
