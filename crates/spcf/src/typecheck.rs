//! A simple type checker for SPCF.
//!
//! The paper omits the (standard) typing rules and assumes programs are
//! well-typed; we implement them so that ill-formed inputs are rejected
//! before symbolic execution rather than getting stuck mid-run.

use std::collections::HashMap;
use std::fmt;

use crate::syntax::{Expr, Op};
use crate::types::Type;

/// A type error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// A variable is not in scope.
    UnboundVariable(String),
    /// Two types that should match do not.
    Mismatch {
        /// What the context required.
        expected: Type,
        /// What the expression actually has.
        found: Type,
        /// Human-readable context.
        context: String,
    },
    /// A non-function was applied.
    NotAFunction(Type),
    /// A primitive was applied to the wrong number of arguments.
    Arity {
        /// The primitive.
        op: Op,
        /// Expected argument count.
        expected: usize,
        /// Actual argument count.
        found: usize,
    },
    /// Locations and errors cannot appear in source programs.
    InternalForm,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::UnboundVariable(x) => write!(f, "unbound variable `{x}`"),
            TypeError::Mismatch {
                expected,
                found,
                context,
            } => {
                write!(
                    f,
                    "type mismatch in {context}: expected {expected}, found {found}"
                )
            }
            TypeError::NotAFunction(t) => write!(f, "cannot apply a value of type {t}"),
            TypeError::Arity {
                op,
                expected,
                found,
            } => {
                write!(f, "`{op}` expects {expected} argument(s), got {found}")
            }
            TypeError::InternalForm => write!(f, "internal form in source program"),
        }
    }
}

impl std::error::Error for TypeError {}

/// Infers the type of a closed expression.
///
/// # Errors
///
/// Returns a [`TypeError`] describing the first problem found.
pub fn type_of(expr: &Expr) -> Result<Type, TypeError> {
    check(expr, &mut HashMap::new())
}

/// Checks that an expression is well-typed (at any type).
///
/// # Errors
///
/// Returns a [`TypeError`] describing the first problem found.
pub fn check_program(expr: &Expr) -> Result<(), TypeError> {
    type_of(expr).map(|_| ())
}

fn check(expr: &Expr, env: &mut HashMap<String, Vec<Type>>) -> Result<Type, TypeError> {
    match expr {
        Expr::Var(x) => env
            .get(x)
            .and_then(|stack| stack.last().cloned())
            .ok_or_else(|| TypeError::UnboundVariable(x.clone())),
        Expr::Num(_) => Ok(Type::Int),
        Expr::Opaque(ty, _) => Ok(ty.clone()),
        Expr::Lam {
            param,
            param_ty,
            body,
        } => {
            env.entry(param.clone()).or_default().push(param_ty.clone());
            let body_ty = check(body, env);
            env.get_mut(param).map(Vec::pop);
            Ok(Type::arrow(param_ty.clone(), body_ty?))
        }
        Expr::Fix { name, ty, body } => {
            env.entry(name.clone()).or_default().push(ty.clone());
            let body_ty = check(body, env);
            env.get_mut(name).map(Vec::pop);
            let body_ty = body_ty?;
            if &body_ty == ty {
                Ok(body_ty)
            } else {
                Err(TypeError::Mismatch {
                    expected: ty.clone(),
                    found: body_ty,
                    context: format!("fix {name}"),
                })
            }
        }
        Expr::App(f, a) => {
            let f_ty = check(f, env)?;
            let a_ty = check(a, env)?;
            match f_ty {
                Type::Arrow(dom, cod) => {
                    if *dom == a_ty {
                        Ok(*cod)
                    } else {
                        Err(TypeError::Mismatch {
                            expected: *dom,
                            found: a_ty,
                            context: "application argument".to_string(),
                        })
                    }
                }
                other => Err(TypeError::NotAFunction(other)),
            }
        }
        Expr::If(c, t, e) => {
            let c_ty = check(c, env)?;
            if c_ty != Type::Int {
                return Err(TypeError::Mismatch {
                    expected: Type::Int,
                    found: c_ty,
                    context: "if condition".to_string(),
                });
            }
            let t_ty = check(t, env)?;
            let e_ty = check(e, env)?;
            if t_ty == e_ty {
                Ok(t_ty)
            } else {
                Err(TypeError::Mismatch {
                    expected: t_ty,
                    found: e_ty,
                    context: "if branches".to_string(),
                })
            }
        }
        Expr::Prim(op, args, _) => {
            if args.len() != op.arity() {
                return Err(TypeError::Arity {
                    op: *op,
                    expected: op.arity(),
                    found: args.len(),
                });
            }
            for arg in args {
                let arg_ty = check(arg, env)?;
                if arg_ty != Type::Int {
                    return Err(TypeError::Mismatch {
                        expected: Type::Int,
                        found: arg_ty,
                        context: format!("argument of {op}"),
                    });
                }
            }
            Ok(Type::Int)
        }
        Expr::Loc(_) | Expr::Err(_) => Err(TypeError::InternalForm),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::Label;

    #[test]
    fn identity_function_types() {
        let id = Expr::lam("x", Type::Int, Expr::var("x"));
        assert_eq!(type_of(&id), Ok(Type::arrow(Type::Int, Type::Int)));
    }

    #[test]
    fn unbound_variable_is_an_error() {
        assert_eq!(
            type_of(&Expr::var("ghost")),
            Err(TypeError::UnboundVariable("ghost".to_string()))
        );
    }

    #[test]
    fn shadowing_is_handled() {
        // λ(x:int). (λ(x:int→int). x) — inner x shadows outer.
        let inner = Expr::lam("x", Type::arrow(Type::Int, Type::Int), Expr::var("x"));
        let outer = Expr::lam("x", Type::Int, inner);
        let ty = type_of(&outer).expect("types");
        assert_eq!(
            ty,
            Type::arrow(
                Type::Int,
                Type::arrow(
                    Type::arrow(Type::Int, Type::Int),
                    Type::arrow(Type::Int, Type::Int)
                )
            )
        );
    }

    #[test]
    fn application_type_mismatch_is_rejected() {
        let bad = Expr::app(
            Expr::lam("x", Type::Int, Expr::var("x")),
            Expr::lam("y", Type::Int, Expr::var("y")),
        );
        assert!(matches!(type_of(&bad), Err(TypeError::Mismatch { .. })));
    }

    #[test]
    fn applying_a_number_is_rejected() {
        let bad = Expr::app(Expr::Num(3), Expr::Num(4));
        assert!(matches!(type_of(&bad), Err(TypeError::NotAFunction(_))));
    }

    #[test]
    fn branches_must_agree() {
        let bad = Expr::ite(
            Expr::Num(1),
            Expr::Num(2),
            Expr::lam("x", Type::Int, Expr::var("x")),
        );
        assert!(matches!(type_of(&bad), Err(TypeError::Mismatch { .. })));
    }

    #[test]
    fn prim_arity_is_checked() {
        let bad = Expr::Prim(Op::Add, vec![Expr::Num(1)], Label(0));
        assert!(matches!(type_of(&bad), Err(TypeError::Arity { .. })));
    }

    #[test]
    fn opaque_values_have_their_annotation() {
        let ty = Type::arrow(Type::arrow(Type::Int, Type::Int), Type::Int);
        let e = Expr::Opaque(ty.clone(), Label(0));
        assert_eq!(type_of(&e), Ok(ty));
    }

    #[test]
    fn fix_requires_matching_body_type() {
        let good = Expr::fix(
            "f",
            Type::arrow(Type::Int, Type::Int),
            Expr::lam("x", Type::Int, Expr::app(Expr::var("f"), Expr::var("x"))),
        );
        assert!(type_of(&good).is_ok());
        let bad = Expr::fix("f", Type::Int, Expr::lam("x", Type::Int, Expr::var("x")));
        assert!(matches!(type_of(&bad), Err(TypeError::Mismatch { .. })));
    }
}
