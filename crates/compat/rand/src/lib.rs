//! # rand (offline compat stub)
//!
//! The build environment has no network access, so this workspace vendors a
//! tiny, API-compatible stand-in for the subset of the `rand` crate it
//! actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer ranges, and [`Rng::gen_bool`].
//!
//! The generator is SplitMix64 — statistically fine for randomized testing
//! and fuzzing, deterministic for a fixed seed, and *not* cryptographically
//! secure (neither is the real `StdRng`'s use here). If the real `rand`
//! crate ever becomes available, deleting this crate and pointing the
//! manifests at crates.io is the only change required, although seeds will
//! then produce different (still deterministic) streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a deterministic function of
    /// `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive integer
    /// ranges).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 uniform mantissa bits, the standard conversion to [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// A range that knows how to sample a value of type `T` from itself.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $ty
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: SplitMix64 (Steele, Lea & Flood 2014).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn fixed_seed_is_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(-99i64..=99), b.gen_range(-99i64..=99));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let n: i64 = rng.gen_range(-99..=99);
            assert!((-99..=99).contains(&n));
            let i: usize = rng.gen_range(0..4);
            assert!(i < 4);
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn distribution_is_not_degenerate() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(rng.gen_range(0i64..10));
        }
        assert_eq!(seen.len(), 10, "all buckets of 0..10 should be hit");
    }
}
