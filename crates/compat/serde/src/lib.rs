//! # serde (offline compat stub)
//!
//! The build environment has no network access, so this crate stands in for
//! the small slice of serde the workspace needs: serializing the benchmark
//! report to JSON. Instead of the real serde data model it exposes a single
//! [`Serialize`] trait rendering directly to a JSON string, plus impls for
//! the primitive types and containers the reports use. Structs implement it
//! by hand with the [`JsonObject`] builder (the real crate's derive macro
//! would need a proc-macro stack this environment cannot download).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

/// Types that can render themselves as a JSON value.
pub trait Serialize {
    /// The JSON rendering of `self`.
    fn to_json(&self) -> String;
}

macro_rules! impl_display_json {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_json(&self) -> String {
                self.to_string()
            }
        }
    )*};
}

impl_display_json!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl Serialize for u128 {
    fn to_json(&self) -> String {
        // JSON numbers are doubles; anything beyond 2^53 ms is unreachable
        // for a wall-clock measurement, so plain rendering is fine.
        self.to_string()
    }
}

impl Serialize for f64 {
    fn to_json(&self) -> String {
        if self.is_finite() {
            format!("{self}")
        } else {
            "null".to_string()
        }
    }
}

impl Serialize for str {
    fn to_json(&self) -> String {
        escape_string(self)
    }
}

impl Serialize for String {
    fn to_json(&self) -> String {
        escape_string(self)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> String {
        (**self).to_json()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> String {
        match self {
            Some(value) => value.to_json(),
            None => "null".to_string(),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> String {
        self.as_slice().to_json()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, item) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&item.to_json());
        }
        out.push(']');
        out
    }
}

/// Escapes and quotes a string per RFC 8259.
pub fn escape_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// An ordered JSON-object builder for hand-written [`Serialize`] impls.
#[derive(Debug, Default)]
pub struct JsonObject {
    fields: Vec<(String, String)>,
}

impl JsonObject {
    /// Creates an empty object.
    pub fn new() -> Self {
        JsonObject::default()
    }

    /// Adds a field, serializing its value.
    pub fn field(mut self, name: &str, value: &dyn Serialize) -> Self {
        self.fields.push((name.to_string(), value.to_json()));
        self
    }

    /// Adds a field with an already-rendered JSON value.
    pub fn raw_field(mut self, name: &str, json: String) -> Self {
        self.fields.push((name.to_string(), json));
        self
    }

    /// Renders the object.
    pub fn finish(self) -> String {
        let mut out = String::from("{");
        for (i, (name, value)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&escape_string(name));
            out.push(':');
            out.push_str(value);
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_render() {
        assert_eq!(5u64.to_json(), "5");
        assert_eq!((-3i64).to_json(), "-3");
        assert_eq!(true.to_json(), "true");
        assert_eq!("a\"b\n".to_json(), r#""a\"b\n""#);
    }

    #[test]
    fn containers_render() {
        assert_eq!(vec![1u32, 2, 3].to_json(), "[1,2,3]");
        assert_eq!(None::<u32>.to_json(), "null");
        assert_eq!(Some("x".to_string()).to_json(), "\"x\"");
    }

    #[test]
    fn objects_preserve_field_order() {
        let json = JsonObject::new()
            .field("b", &1u32)
            .field("a", &"two".to_string())
            .finish();
        assert_eq!(json, r#"{"b":1,"a":"two"}"#);
    }
}
