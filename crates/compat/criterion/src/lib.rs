//! # criterion (offline compat stub)
//!
//! The build environment has no network access, so this crate provides the
//! subset of the criterion API the workspace's `[[bench]]` targets use:
//! [`Criterion::benchmark_group`], `sample_size`, `bench_function` with a
//! [`Bencher`], `finish`, and the [`criterion_group!`]/[`criterion_main!`]
//! macros. It measures wall-clock time per sample and prints a median — no
//! statistics engine, no HTML reports, but the benches compile, run under
//! `cargo bench`, and produce comparable numbers run to run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }
}

/// A named group of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and calls
    /// [`Bencher::iter`] with the routine under measurement.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                elapsed: Duration::ZERO,
            };
            f(&mut bencher);
            samples.push(bencher.elapsed);
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        let total: Duration = samples.iter().sum();
        println!(
            "{}/{}: median {:?} over {} samples (total {:?})",
            self.name,
            id,
            median,
            samples.len(),
            total
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; times the measured routine.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Measures one sample of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        let output = routine();
        self.elapsed += start.elapsed();
        drop(output);
    }
}

/// Prevents the optimizer from discarding a value (best-effort without
/// `unsafe`: a read through a volatile-ish black box is unavailable, so this
/// relies on the value crossing a function boundary).
#[inline(never)]
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Bundles benchmark functions into a runnable group, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `fn main` running the listed groups, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_routine() {
        let mut criterion = Criterion::default();
        let mut runs = 0usize;
        {
            let mut group = criterion.benchmark_group("test");
            group.sample_size(3);
            group.bench_function("count", |b| b.iter(|| runs += 1));
            group.finish();
        }
        assert_eq!(runs, 3);
    }
}
