//! Persistent-store robustness over the real corpus and the randomized
//! heap-trace generator: a warm (second) run against the same store
//! directory must produce bit-identical verdicts to the cold run while
//! re-proving strictly less, and damaged store files must degrade to a cold
//! start — never to a panic or a wrong verdict.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

use cpcf::{
    AnalysisStore, AnalyzeOptions, EngineFingerprint, ProveConfig, ProverSession, SharedLemmaPool,
    SharedVerdictCache,
};
use randtest::heaptrace::{HeapTrace, TraceConfig};
use scv_bench::corpus::all_programs;
use scv_bench::harness::{run_all, BenchOptions, ProgramResult};
use scv_bench::report::total_stats;

/// A fresh per-test store directory under the system temp dir.
fn temp_store_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU32 = AtomicU32::new(0);
    let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "cpcf-store-bench-{}-{}-{}",
        std::process::id(),
        tag,
        unique
    ))
}

/// The corpus run used by the persistence tests: the quick (criterion)
/// budget so the debug-build suite stays fast, programs sharded over the
/// hardware threads, and an explicit lemma pool so lemma persistence is
/// exercised regardless of the `CPCF_LEMMA_SHARING` environment.
fn corpus_options(store: AnalysisStore) -> BenchOptions {
    let mut options = BenchOptions::quick().with_workers(0);
    options.analyze.shared_lemmas = Some(SharedLemmaPool::new());
    options.analyze.store = Some(store);
    options
}

fn verdicts(results: &[ProgramResult]) -> Vec<(String, String, String)> {
    results
        .iter()
        .map(|r| {
            (
                r.name.clone(),
                format!("{:?}", r.correct_verdict),
                format!("{:?}", r.faulty_verdict),
            )
        })
        .collect()
}

fn open_store(dir: &PathBuf, options: &AnalyzeOptions) -> AnalysisStore {
    AnalysisStore::open(dir, EngineFingerprint::for_analyze(options)).expect("store opens")
}

#[test]
fn warm_corpus_rerun_is_bit_identical_and_reproves_less() {
    let dir = temp_store_dir("corpus");
    let programs = all_programs();

    // Cold: an empty store sees only misses and writes.
    let cold_options = corpus_options(open_store(&dir, &corpus_options_probe()));
    let cold = run_all(&programs, &cold_options);
    let cold_stats = total_stats(&cold);
    assert_eq!(cold_stats.store_hits, 0, "an empty store cannot hit");
    assert!(cold_stats.store_misses > 0, "cold misses are counted");
    assert!(cold_stats.store_writes > 0, "cold verdicts are persisted");
    drop(cold_options); // release the cold writer before reopening

    // Warm: a new store handle over the same directory, as a second process
    // would open. Verdicts must be bit-identical and strictly fewer queries
    // must fall through to the prover.
    let warm_options = corpus_options(open_store(&dir, &corpus_options_probe()));
    let warm_store = warm_options.analyze.store.clone().expect("store attached");
    assert!(
        warm_store.verdict_count() > 0,
        "the cold run persisted verdicts"
    );
    let warm = run_all(&programs, &warm_options);
    let warm_stats = total_stats(&warm);

    assert_eq!(
        verdicts(&cold),
        verdicts(&warm),
        "cold and warm corpus verdicts must be bit-identical"
    );
    assert!(
        warm_stats.store_hits > 0,
        "the warm rerun answers queries from the store"
    );
    assert!(
        warm_stats.store_misses < cold_stats.store_misses,
        "the warm rerun re-proves strictly fewer queries \
         (cold {} misses vs warm {})",
        cold_stats.store_misses,
        warm_stats.store_misses
    );
    // Every lemma the cold run persisted warm-starts the warm run's pools
    // (summed per program, so the total is at least the store's count when
    // any lemmas were derived at all).
    if warm_store.lemma_count() > 0 {
        let warm_started: u64 = warm.iter().map(|r| r.lemmas_warm_started).sum();
        assert!(
            warm_started >= warm_store.lemma_count() as u64,
            "stored lemmas ({}) warm-start the warm run ({})",
            warm_store.lemma_count(),
            warm_started
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// The analyze options the corpus runs use, for fingerprint computation
/// (must match `corpus_options` in every engine-shaping respect).
fn corpus_options_probe() -> AnalyzeOptions {
    BenchOptions::quick().with_workers(0).analyze
}

/// Replays `seeds` traces through a store-backed session per trace,
/// returning every verdict in order. The optional lemma pool is shared by
/// every session of the replay and recorded to the store at the end, the
/// way one analysis run's pool is.
fn replay_traces(
    seeds: std::ops::Range<u64>,
    config: &TraceConfig,
    store: Option<&AnalysisStore>,
    pool: Option<&SharedLemmaPool>,
) -> Vec<folic::Proof> {
    let mut verdicts = Vec::new();
    for seed in seeds {
        let trace = HeapTrace::generate(seed, config);
        let cache = match store {
            Some(store) => SharedVerdictCache::with_store(store.clone()),
            None => SharedVerdictCache::new(),
        };
        let mut session = ProverSession::with_config_and_cache(ProveConfig::default(), cache);
        if let Some(pool) = pool {
            session.set_lemma_pool(pool.clone());
        }
        verdicts.extend(trace.replay(&mut session));
    }
    if let (Some(store), Some(pool)) = (store, pool) {
        store.record_lemmas(pool, 0);
    }
    if let Some(store) = store {
        store.flush();
    }
    verdicts
}

#[test]
fn heap_trace_differential_cold_vs_warm_over_200_seeds() {
    // The chain-free trace corpus, like the engine-equivalence
    // differentials: difference-chain traces multiply budget-limited
    // (Ambiguous) verdicts whose outcome is trajectory-sensitive between
    // same-process runs, which would test the solver's run-order
    // sensitivity rather than the store. (Warm-vs-cold identity holds even
    // for trajectory-sensitive verdicts — every warm query is answered
    // from the store — but the storeless-vs-cold leg needs stable ground
    // truth.)
    let dir = temp_store_dir("traces");
    let config = TraceConfig::default();
    let fingerprint = EngineFingerprint::from_tokens(["heaptrace-differential"]);

    // Ground truth: no store at all.
    let plain = replay_traces(0..200, &config, None, None);

    // Cold: store attached but empty; verdicts must match the storeless run.
    let cold_store = AnalysisStore::open(&dir, fingerprint).expect("store opens");
    let cold = replay_traces(0..200, &config, Some(&cold_store), None);
    assert_eq!(plain, cold, "an empty store must not perturb verdicts");
    let persisted = cold_store.verdict_count();
    assert!(persisted > 0, "the cold replay persisted verdicts");
    drop(cold_store);

    // Warm: a second process over the same file. Bit-identical verdicts,
    // answered from disk.
    let warm_store = AnalysisStore::open(&dir, fingerprint).expect("store reopens");
    assert_eq!(warm_store.verdict_count(), persisted);
    let warm = replay_traces(0..200, &config, Some(&warm_store), None);
    assert_eq!(cold, warm, "cold and warm trace verdicts are bit-identical");
    let counters = warm_store.counters();
    assert!(
        counters.store_hits > 0,
        "the warm replay answered queries from the store"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn diff_chain_lemmas_persist_and_warm_start_without_changing_verdicts() {
    // The lemma tier, on the traces that actually derive theory lemmas:
    // difference-constraint cycles produce theory-UNSAT explanations the
    // sessions publish to their pool. The cold replay records them; the
    // warm replay re-interns them into a fresh pool before any session
    // exists — and still returns bit-identical verdicts, because every
    // query is answered from the store's verdict tier (a lemma can prune a
    // search, never change its outcome).
    let dir = temp_store_dir("lemmas");
    let config = TraceConfig::with_diff_chains();
    let fingerprint = EngineFingerprint::from_tokens(["heaptrace-lemmas"]);

    let cold_store = AnalysisStore::open(&dir, fingerprint).expect("store opens");
    let cold_pool = SharedLemmaPool::new();
    let cold = replay_traces(0..15, &config, Some(&cold_store), Some(&cold_pool));
    let lemmas = cold_store.lemma_count();
    assert!(
        lemmas > 0,
        "difference-chain traces derive theory lemmas worth persisting"
    );
    drop(cold_store);

    let warm_store = AnalysisStore::open(&dir, fingerprint).expect("store reopens");
    assert_eq!(warm_store.lemma_count(), lemmas, "lemma records survive");
    let warm_pool = SharedLemmaPool::new();
    let warm_started = warm_store.warm_start_lemmas(&warm_pool);
    assert!(
        warm_started > 0,
        "stored lemmas republish into a fresh pool"
    );
    assert_eq!(
        warm_pool.len(),
        warm_started as usize,
        "the fresh pool holds exactly the republished lemmas"
    );
    let warm = replay_traces(0..15, &config, Some(&warm_store), Some(&warm_pool));
    assert_eq!(
        cold, warm,
        "a warm-started lemma pool never changes a stored verdict"
    );
    assert_eq!(warm_store.counters().lemmas_warm_started, warm_started);

    let _ = std::fs::remove_dir_all(&dir);
}

/// The single store file inside `dir` (there is exactly one per
/// fingerprint).
fn store_file(dir: &PathBuf) -> PathBuf {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("store dir exists")
        .map(|entry| entry.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "bin"))
        .collect();
    assert_eq!(files.len(), 1, "one store file per fingerprint");
    files.pop().expect("one file")
}

#[test]
fn truncated_and_garbage_store_files_degrade_to_cold_starts() {
    let dir = temp_store_dir("damage");
    let config = TraceConfig::default();
    let fingerprint = EngineFingerprint::from_tokens(["damage-robustness"]);

    // Populate a store, then remember the intact verdicts.
    let store = AnalysisStore::open(&dir, fingerprint).expect("store opens");
    let intact = replay_traces(0..20, &config, Some(&store), None);
    let intact_count = store.verdict_count();
    assert!(intact_count > 0);
    drop(store);
    let file = store_file(&dir);
    let bytes = std::fs::read(&file).expect("store file reads");

    // Truncate deep into the verdict region at the front of the file (the
    // replay appends its verdict records before the end-of-run lemma dump,
    // so a 1 KiB prefix holds the header plus a handful of verdicts, almost
    // certainly cut mid-record): the valid prefix survives, everything at
    // or after the cut is dropped, and replaying still produces the intact
    // verdicts (recomputing the dropped ones).
    std::fs::write(&file, &bytes[..1000]).expect("truncate");
    let truncated = AnalysisStore::open(&dir, fingerprint).expect("truncated file opens");
    assert!(
        truncated.verdict_count() < intact_count,
        "records at or after the cut are dropped"
    );
    let replayed = replay_traces(0..20, &config, Some(&truncated), None);
    assert_eq!(intact, replayed, "a truncated store never changes verdicts");
    drop(truncated);

    // Corrupt a payload byte mid-file: everything from the damaged record
    // on is dropped, verdicts still match.
    let mut corrupt = bytes.clone();
    let middle = corrupt.len() / 2;
    corrupt[middle] ^= 0xff;
    std::fs::write(&file, &corrupt).expect("corrupt");
    let corrupted = AnalysisStore::open(&dir, fingerprint).expect("corrupt file opens");
    assert!(corrupted.verdict_count() <= intact_count);
    let replayed = replay_traces(0..20, &config, Some(&corrupted), None);
    assert_eq!(intact, replayed, "a corrupted store never changes verdicts");
    drop(corrupted);

    // Replace the file with garbage entirely: a cold start, fully usable.
    std::fs::write(&file, b"this is not a store file at all").expect("garbage");
    let garbage = AnalysisStore::open(&dir, fingerprint).expect("garbage file opens");
    assert_eq!(garbage.verdict_count(), 0, "garbage loads as a cold store");
    let replayed = replay_traces(0..20, &config, Some(&garbage), None);
    assert_eq!(intact, replayed, "a garbage store never changes verdicts");
    assert!(
        garbage.verdict_count() > 0,
        "the cold start repopulates the recreated file"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
