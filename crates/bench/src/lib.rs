//! # scv-bench — benchmark corpus and harness for the PLDI 2015 evaluation
//!
//! This crate regenerates the paper's evaluation (Table 1 and the §5.2
//! qualitative comparisons). Each benchmark is a CPCF module in two
//! variants: the *correct* program the original suites ship, and an
//! *erroneous* variant obtained the same way the paper obtained theirs —
//! weakening a precondition or omitting a check before a partial operation.
//!
//! The [`harness`] runs the soft-contract analysis on both variants and
//! reports, per program: size, contract order, whether the correct variant
//! verifies, whether the faulty variant gets a *validated concrete
//! counterexample*, and the wall-clock time of each run — the same columns
//! as Table 1. Absolute times are not comparable to the paper's (different
//! machine, different solver); the shape — which programs verify, which get
//! counterexamples, and which groups are the expensive ones — is.

#![forbid(unsafe_code)]

pub mod corpus;
pub mod harness;
pub mod report;

pub use corpus::{all_programs, BenchProgram, Group};
pub use harness::{
    run_program, run_program_differential, BenchOptions, DifferentialResult, ProgramResult,
    StatsSummary, Verdict,
};
pub use report::{render_table, summarize, summarize_stats, to_json, total_stats};
