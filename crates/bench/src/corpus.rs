//! The benchmark corpus: one entry per Table 1 program (or program group),
//! each in a correct and an erroneous variant.
//!
//! The programs are ports of the benchmarks the paper evaluates on —
//! higher-order model checking (Kobayashi et al. 2011), dependent type
//! inference (Terauchi 2010), occurrence typing (Tobin-Hochstadt & Felleisen
//! 2010), the soft-contract-verification video games (Nguyễn et al. 2014)
//! and a set of small programs standing in for the paper's "others" rows.
//! The erroneous variants are produced the same way the paper produced
//! theirs: weakening a precondition or omitting a check before a partial
//! operation (see `diff` notes on each entry).

pub mod games;
pub mod kobayashi;
pub mod occurrence;
pub mod others;
pub mod terauchi;

/// The benchmark group a program belongs to (one per Table 1 section).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Group {
    /// Kobayashi et al. 2011 higher-order model checking benchmarks.
    Kobayashi,
    /// Terauchi 2010 dependent-type benchmarks.
    Terauchi,
    /// Tobin-Hochstadt & Felleisen 2010 occurrence-typing benchmarks.
    Occurrence,
    /// Nguyễn et al. 2014 video games.
    Games,
    /// Small programs standing in for the paper's "others"/"others-e"/"others-w" rows.
    Others,
}

impl Group {
    /// Human-readable group title, matching the Table 1 section headers.
    pub fn title(self) -> &'static str {
        match self {
            Group::Kobayashi => "Kobayashi et al. 2011 benchmarks",
            Group::Terauchi => "Terauchi 2010 benchmarks",
            Group::Occurrence => "Tobin-Hochstadt and Felleisen 2010 benchmarks",
            Group::Games => "Nguyen et al. 2014 benchmarks (video games)",
            Group::Others => "Other benchmarks and web submissions",
        }
    }
}

/// One benchmark program in its two variants.
#[derive(Debug, Clone, Copy)]
pub struct BenchProgram {
    /// Program name (the Table 1 row).
    pub name: &'static str,
    /// The group it belongs to.
    pub group: Group,
    /// The correct variant (the analysis should not find a counterexample).
    pub correct: &'static str,
    /// The erroneous variant (the analysis should find a counterexample).
    pub faulty: &'static str,
    /// What was changed to introduce the bug (the paper publishes the same
    /// information as a diff file).
    pub diff: &'static str,
    /// Whether the paper itself reports this row as one where no
    /// counterexample is produced (the "others-w" rows).
    pub expected_unsolved: bool,
}

impl BenchProgram {
    /// Number of non-empty, non-comment source lines of the faulty variant
    /// (the paper's "Lines" column counts the analysed program).
    pub fn lines(&self) -> usize {
        self.faulty
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with(';'))
            .count()
    }
}

/// Every program of the corpus, grouped in Table 1 order.
pub fn all_programs() -> Vec<BenchProgram> {
    let mut programs = Vec::new();
    programs.extend(kobayashi::programs());
    programs.extend(terauchi::programs());
    programs.extend(occurrence::programs());
    programs.extend(games::programs());
    programs.extend(others::programs());
    programs
}

/// The programs of a single group.
pub fn group_programs(group: Group) -> Vec<BenchProgram> {
    all_programs()
        .into_iter()
        .filter(|p| p.group == group)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_nonempty_and_well_formed() {
        let programs = all_programs();
        assert!(
            programs.len() >= 25,
            "corpus has {} programs",
            programs.len()
        );
        for program in &programs {
            assert!(!program.name.is_empty());
            assert!(program.lines() > 0);
            // Both variants must parse.
            cpcf::parse_program(program.correct).unwrap_or_else(|e| {
                panic!("{}: correct variant does not parse: {e}", program.name)
            });
            cpcf::parse_program(program.faulty)
                .unwrap_or_else(|e| panic!("{}: faulty variant does not parse: {e}", program.name));
        }
    }

    #[test]
    fn every_group_is_represented() {
        for group in [
            Group::Kobayashi,
            Group::Terauchi,
            Group::Occurrence,
            Group::Games,
            Group::Others,
        ] {
            assert!(
                !group_programs(group).is_empty(),
                "group {group:?} is empty"
            );
        }
    }

    #[test]
    fn names_are_unique_within_each_group() {
        // The paper's Table 1 itself has a "mult" row in two groups, so
        // uniqueness is only required within a group.
        let programs = all_programs();
        let mut keys: Vec<(Group, &str)> = programs.iter().map(|p| (p.group, p.name)).collect();
        keys.sort_by_key(|(g, n)| (format!("{g:?}"), n.to_string()));
        keys.dedup();
        assert_eq!(keys.len(), programs.len());
    }
}
