//! Ports of the Terauchi 2010 dependent-type-inference benchmarks
//! (the second Table 1 group).

use super::{BenchProgram, Group};

/// The programs of this group.
pub fn programs() -> Vec<BenchProgram> {
    vec![
        BenchProgram {
            name: "boolflip",
            group: Group::Terauchi,
            correct: r#"
(module boolflip
  (provide [main (-> integer? integer?)])
  (define (flip b) (if b #f #t))
  (define (main n) (if (flip (flip (> n 0))) (assert (> n 0)) 0)))
"#,
            faulty: r#"
(module boolflip
  (provide [main (-> integer? integer?)])
  (define (flip b) (if b #f #t))
  (define (main n) (if (flip (> n 0)) (assert (> n 0)) 0)))
"#,
            diff: "one flip too few: the assertion now runs exactly when n ≤ 0",
            expected_unsolved: false,
        },
        BenchProgram {
            name: "mult-all",
            group: Group::Terauchi,
            correct: r#"
(module mult-all
  (provide [main (-> integer? integer? integer?)])
  (define (mult x y) (if (or (<= x 0) (<= y 0)) 0 (+ x (mult x (- y 1)))))
  (define (main x y) (begin (assert (>= 0 (mult 0 y))) 0)))
"#,
            faulty: r#"
(module mult-all
  (provide [main (-> integer? integer? integer?)])
  (define (mult x y) (if (or (<= x 0) (<= y 0)) 0 (+ x (mult x (- y 1)))))
  (define (main x y) (begin (assert (> 0 (mult 0 y))) 0)))
"#,
            diff: "the assertion demands a strictly negative product of zero",
            expected_unsolved: false,
        },
        BenchProgram {
            name: "mult-cps",
            group: Group::Terauchi,
            correct: r#"
(module mult-cps
  (provide [main (-> integer? integer?)])
  (define (mult-k x y k) (if (or (<= x 0) (<= y 0)) (k 0) (mult-k x (- y 1) (lambda (r) (k (+ x r))))))
  (define (main n) (mult-k 0 n (lambda (r) (begin (assert (>= r 0)) r)))))
"#,
            faulty: r#"
(module mult-cps
  (provide [main (-> integer? integer?)])
  (define (mult-k x y k) (if (or (<= x 0) (<= y 0)) (k 0) (mult-k x (- y 1) (lambda (r) (k (+ x r))))))
  (define (main n) (mult-k 0 n (lambda (r) (begin (assert (> r 0)) r)))))
"#,
            diff: "the continuation now asserts a strictly positive result, but 0·n = 0",
            expected_unsolved: false,
        },
        BenchProgram {
            name: "mult",
            group: Group::Terauchi,
            correct: r#"
(module multt
  (provide [main (-> integer? integer?)])
  (define (double x) (+ x x))
  (define (main n) (if (>= n 0) (begin (assert (>= (double n) n)) 0) 0)))
"#,
            faulty: r#"
(module multt
  (provide [main (-> integer? integer?)])
  (define (double x) (+ x x))
  (define (main n) (begin (assert (>= (double n) n)) 0)))
"#,
            diff: "the non-negativity guard was removed; doubling a negative number shrinks it",
            expected_unsolved: false,
        },
        BenchProgram {
            name: "sum-acm",
            group: Group::Terauchi,
            correct: r#"
(module sum-acm
  (provide [main (-> integer? integer?)])
  (define (sum n acc) (if (<= n 0) acc (sum (- n 1) (+ acc n))))
  (define (main n) (begin (assert (>= (sum n 0) 0)) 0)))
"#,
            faulty: r#"
(module sum-acm
  (provide [main (-> integer? integer?)])
  (define (sum n acc) (if (<= n 0) acc (sum (- n 1) (+ acc n))))
  (define (main n) (begin (assert (> (sum n 0) 0)) 0)))
"#,
            diff: "the assertion became strict; the sum of nothing is 0",
            expected_unsolved: false,
        },
        BenchProgram {
            name: "sum-all",
            group: Group::Terauchi,
            correct: r#"
(module sum-all
  (provide [main (-> integer? integer?)])
  (define (sum n) (if (<= n 0) 0 (+ n (sum (- n 1)))))
  (define (main n) (begin (assert (>= (sum 0) 0)) 0)))
"#,
            faulty: r#"
(module sum-all
  (provide [main (-> integer? integer?)])
  (define (sum n) (if (<= n 0) 0 (+ n (sum (- n 1)))))
  (define (main n) (begin (assert (>= n (sum 0))) 0)))
"#,
            diff: "the assertion now compares the unconstrained input against the sum",
            expected_unsolved: false,
        },
        BenchProgram {
            name: "sum",
            group: Group::Terauchi,
            correct: r#"
(module sumt
  (provide [main (-> integer? integer?)])
  (define (sum n) (if (<= n 0) 0 (+ n (sum (- n 1)))))
  (define (main n) (if (<= n 0) (begin (assert (>= (sum n) 0)) 0) 0)))
"#,
            faulty: r#"
(module sumt
  (provide [main (-> integer? integer?)])
  (define (sum n) (if (<= n 0) 0 (+ n (sum (- n 1)))))
  (define (main n) (begin (assert (> (sum n) 0)) 0)))
"#,
            diff: "the assertion is strict and runs for every input, failing at n ≤ 0",
            expected_unsolved: false,
        },
    ]
}
