//! Abridged ports of the Nguyễn et al. 2014 video-game benchmarks (snake,
//! tetris, zombie — the largest Table 1 programs). The originals are
//! 150–270 lines of Racket; these ports keep the data representation
//! (structs for positions and blocks, and the higher-order message-passing
//! object encoding of zombie), the contract style (flat predicates checking
//! structure fields, as the originals do before `struct/c`), and the way the
//! paper introduced the bugs; the game loops that cannot affect which errors
//! are reachable are abridged.

use super::{BenchProgram, Group};

/// The programs of this group.
pub fn programs() -> Vec<BenchProgram> {
    vec![
        BenchProgram {
            name: "snake",
            group: Group::Games,
            correct: r#"
(module snake
  (struct posn (x y))
  (struct snake (dir segs))
  (provide
    [move-posn (-> posn/c (one-of/c "up" "down" "left" "right") posn?)]
    [posn-in-board? (-> posn/c integer? integer? boolean?)]
    [snake-head (-> (and/c snake? nonempty-snake/c) posn?)]
    [snake-grow (-> (and/c snake? nonempty-snake/c) snake?)])
  (define (posn/c p) (and (posn? p) (integer? (posn-x p)) (integer? (posn-y p))))
  (define (nonempty-snake/c s)
    (and (pair? (snake-segs s)) (posn/c (car (snake-segs s)))))
  (define (move-posn p dir)
    (cond [(equal? dir "up") (posn (posn-x p) (+ (posn-y p) 1))]
          [(equal? dir "down") (posn (posn-x p) (- (posn-y p) 1))]
          [(equal? dir "left") (posn (- (posn-x p) 1) (posn-y p))]
          [else (posn (+ (posn-x p) 1) (posn-y p))]))
  (define (posn-in-board? p w h)
    (and (>= (posn-x p) 0) (< (posn-x p) w)
         (>= (posn-y p) 0) (< (posn-y p) h)))
  (define (snake-head s) (car (snake-segs s)))
  (define (snake-grow s)
    (snake (snake-dir s) (cons (snake-head s) (snake-segs s)))))
"#,
            faulty: r#"
(module snake
  (struct posn (x y))
  (struct snake (dir segs))
  (provide
    [move-posn (-> posn/c (one-of/c "up" "down" "left" "right") posn?)]
    [posn-in-board? (-> posn/c integer? integer? boolean?)]
    [snake-head (-> snake? posn?)]
    [snake-grow (-> snake? snake?)])
  (define (posn/c p) (and (posn? p) (integer? (posn-x p)) (integer? (posn-y p))))
  (define (nonempty-snake/c s)
    (and (pair? (snake-segs s)) (posn/c (car (snake-segs s)))))
  (define (move-posn p dir)
    (cond [(equal? dir "up") (posn (posn-x p) (+ (posn-y p) 1))]
          [(equal? dir "down") (posn (posn-x p) (- (posn-y p) 1))]
          [(equal? dir "left") (posn (- (posn-x p) 1) (posn-y p))]
          [else (posn (+ (posn-x p) 1) (posn-y p))]))
  (define (posn-in-board? p w h)
    (and (>= (posn-x p) 0) (< (posn-x p) w)
         (>= (posn-y p) 0) (< (posn-y p) h)))
  (define (snake-head s) (car (snake-segs s)))
  (define (snake-grow s)
    (snake (snake-dir s) (cons (snake-head s) (snake-segs s)))))
"#,
            diff: "snake-head and snake-grow's preconditions were weakened from a snake with a non-empty, position-carrying segment list to any snake, so a snake whose segments are empty crashes car",
            expected_unsolved: false,
        },
        BenchProgram {
            name: "tetris",
            group: Group::Games,
            correct: r#"
(module tetris
  (struct block (x y color))
  (provide
    [block/c (-> any/c boolean?)]
    [block-rotate-cw (-> block/c block/c block/c)]
    [block-shift (-> block/c integer? integer? block/c)]
    [blocks-first-x (-> (and/c (listof block/c) pair?) integer?)])
  (define (block/c b)
    (and (block? b) (integer? (block-x b)) (integer? (block-y b))))
  (define (block-rotate-cw c b)
    (block (+ (block-x c) (- (block-y c) (block-y b)))
           (+ (block-y c) (- (block-x b) (block-x c)))
           (block-color b)))
  (define (block-shift b dx dy)
    (block (+ (block-x b) dx) (+ (block-y b) dy) (block-color b)))
  (define (blocks-first-x bs) (block-x (car bs))))
"#,
            faulty: r#"
(module tetris
  (struct block (x y color))
  (provide
    [block/c (-> any/c boolean?)]
    [block-rotate-cw (-> block/c block/c block/c)]
    [block-shift (-> block/c integer? integer? block/c)]
    [blocks-first-x (-> (listof block/c) integer?)])
  (define (block/c b)
    (and (block? b) (integer? (block-x b)) (integer? (block-y b))))
  (define (block-rotate-cw c b)
    (block (+ (block-x c) (- (block-y c) (block-y b)))
           (+ (block-y c) (- (block-x b) (block-x c)))
           (block-color b)))
  (define (block-shift b dx dy)
    (block (+ (block-x b) dx) (+ (block-y b) dy) (block-color b)))
  (define (blocks-first-x bs) (block-x (car bs))))
"#,
            diff: "blocks-first-x's precondition was weakened from a non-empty list of blocks to any list of blocks, so the empty list crashes car",
            expected_unsolved: false,
        },
        BenchProgram {
            name: "zombie",
            group: Group::Games,
            correct: r#"
(module zombie
  (provide
    [make-posn (-> integer? integer? (-> (one-of/c "x" "y") integer?))]
    [posn-dist (-> (-> (one-of/c "x" "y") integer?) (-> (one-of/c "x" "y") integer?) integer?)]
    [first-quadrant? (-> (-> (one-of/c "x" "y") integer?) boolean?)])
  (define (make-posn x y)
    (lambda (msg) (if (equal? msg "x") x y)))
  (define (abs n) (if (< n 0) (- 0 n) n))
  (define (posn-dist p q)
    (+ (abs (- (p "x") (q "x"))) (abs (- (p "y") (q "y")))))
  (define (first-quadrant? p)
    (and (>= (p "x") 0) (>= (p "y") 0))))
"#,
            faulty: r#"
(module zombie
  (provide
    [make-posn (-> integer? integer? (-> (one-of/c "x" "y") integer?))]
    [posn-dist (-> (-> (one-of/c "x" "y") number?) (-> (one-of/c "x" "y") number?) integer?)]
    [first-quadrant? (-> (-> (one-of/c "x" "y") number?) boolean?)])
  (define (make-posn x y)
    (lambda (msg) (if (equal? msg "x") x y)))
  (define (abs n) (if (< n 0) (- 0 n) n))
  (define (posn-dist p q)
    (+ (abs (- (p "x") (q "x"))) (abs (- (p "y") (q "y")))))
  (define (first-quadrant? p)
    (and (>= (p "x") 0) (>= (p "y") 0))))
"#,
            diff: "the message-passing position interface now only promises number? (not integer?) for its answers, so a conforming object can answer with a complex number and crash the comparison — the paper's §5.2 object-encoding counterexample",
            expected_unsolved: false,
        },
    ]
}
