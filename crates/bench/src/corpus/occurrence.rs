//! Ports of the Tobin-Hochstadt & Felleisen 2010 occurrence-typing
//! benchmarks (the third Table 1 group). The paper aggregates 14 small
//! dynamically-typed modules into one row; we keep that aggregate module
//! and widen the group with mutable-box rows in the same occurrence-typed
//! style: union-contracted values flowing *through a box*, so every call
//! journals a non-monotone overwrite of the box's content — the workload
//! that exercises solver-state retraction and per-query cone slicing (each
//! box cell is its own constraint island until a comparison links it).

use super::{BenchProgram, Group};

/// The programs of this group.
pub fn programs() -> Vec<BenchProgram> {
    vec![
        BenchProgram {
            name: "occurrence",
            group: Group::Occurrence,
            correct: r#"
(module occurrence
  (provide [succ-or-len (-> (or/c integer? string?) integer?)]
           [safe-inc (-> any/c integer?)]
           [bool-to-int (-> (or/c integer? boolean?) integer?)]
           [first-or-zero (-> any/c integer?)])
  (define (succ-or-len x) (if (integer? x) (+ x 1) (string-length x)))
  (define (safe-inc x) (if (integer? x) (+ x 1) 0))
  (define (bool-to-int x) (if (integer? x) x (if x 1 0)))
  (define (first-or-zero x) (if (pair? x) (if (integer? (car x)) (car x) 0) 0)))
"#,
            faulty: r#"
(module occurrence
  (provide [succ-or-len (-> (or/c integer? string?) integer?)]
           [safe-inc (-> any/c integer?)]
           [bool-to-int (-> (or/c integer? boolean?) integer?)]
           [first-or-zero (-> any/c integer?)])
  (define (succ-or-len x) (if (integer? x) (+ x 1) (string-length x)))
  (define (safe-inc x) (+ x 1))
  (define (bool-to-int x) (if (integer? x) x (if x 1 0)))
  (define (first-or-zero x) (if (pair? x) (if (integer? (car x)) (car x) 0) 0)))
"#,
            diff: "safe-inc no longer tests integer? before adding, so any non-number \
                   input crashes it",
            expected_unsolved: false,
        },
        // A union-contracted value stored through a box before the
        // occurrence test: the set-box! overwrites the cell's previous
        // (integer) content, journalling a rebase on every call. The
        // faulty variant drops the zero? guard on the integer side, so the
        // counterexample witness is numeric (v = 0) and validates.
        BenchProgram {
            name: "box-swap",
            group: Group::Occurrence,
            correct: r#"
(module box-swap
  (provide [toggle (-> (or/c integer? boolean?) integer?)])
  (define cell (box 0))
  (define (toggle v)
    (begin
      (set-box! cell v)
      (if (integer? (unbox cell))
          (if (zero? (unbox cell)) 1 (/ 100 (unbox cell)))
          0))))
"#,
            faulty: r#"
(module box-swap
  (provide [toggle (-> (or/c integer? boolean?) integer?)])
  (define cell (box 0))
  (define (toggle v)
    (begin
      (set-box! cell v)
      (if (integer? (unbox cell))
          (/ 100 (unbox cell))
          0))))
"#,
            diff: "divides by the unboxed value without the zero? test, so storing 0 \
                   through the box divides by zero",
            expected_unsolved: false,
        },
        // An accumulator cell whose every overwrite depends on the cell's
        // previous content ((+ (unbox acc) n)) — the journalled rebase
        // carries a constraint chaining old state to new, the hardest case
        // for retraction bookkeeping.
        BenchProgram {
            name: "box-acc",
            group: Group::Occurrence,
            correct: r#"
(module box-acc
  (provide [bump (-> integer? integer?)])
  (define acc (box 0))
  (define (bump n)
    (begin
      (if (>= n 0) (set-box! acc (+ (unbox acc) n)) 0)
      (assert (>= (unbox acc) 0))
      (unbox acc))))
"#,
            faulty: r#"
(module box-acc
  (provide [bump (-> integer? integer?)])
  (define acc (box 0))
  (define (bump n)
    (begin
      (set-box! acc (+ (unbox acc) n))
      (assert (>= (unbox acc) 0))
      (unbox acc))))
"#,
            diff: "accumulates unconditionally, so a negative argument drives the \
                   cell below zero and fails the invariant assert",
            expected_unsolved: false,
        },
        // An (or/c integer? string?) union routed through a box; the
        // faulty variant swaps the occurrence-test branches.
        BenchProgram {
            name: "union-cell",
            group: Group::Occurrence,
            correct: r#"
(module union-cell
  (provide [store-len (-> (or/c integer? string?) integer?)])
  (define cell (box 0))
  (define (store-len v)
    (begin
      (set-box! cell v)
      (if (string? (unbox cell))
          (string-length (unbox cell))
          (unbox cell)))))
"#,
            faulty: r#"
(module union-cell
  (provide [store-len (-> (or/c integer? string?) integer?)])
  (define cell (box 0))
  (define (store-len v)
    (begin
      (set-box! cell v)
      (if (string? (unbox cell))
          (unbox cell)
          (string-length (unbox cell))))))
"#,
            diff: "swaps the occurrence-test branches, calling string-length on the \
                   integer side of the union",
            expected_unsolved: false,
        },
        // A resource-protocol state machine whose state cell is overwritten
        // with a *symbolic* value in the faulty variant — the journalled
        // rebase carries the argument's constraints, which retraction must
        // pop and the counterexample search must solve (n ≠ 1).
        BenchProgram {
            name: "box-flip",
            group: Group::Occurrence,
            correct: r#"
(module box-flip
  (provide [flip (-> integer? integer?)])
  (define st (box 0))
  (define (flip n)
    (begin
      (assert (zero? (unbox st)))
      (set-box! st 1)
      (assert (= (unbox st) 1))
      (set-box! st 0)
      n)))
"#,
            faulty: r#"
(module box-flip
  (provide [flip (-> integer? integer?)])
  (define st (box 0))
  (define (flip n)
    (begin
      (assert (zero? (unbox st)))
      (set-box! st n)
      (assert (= (unbox st) 1))
      (set-box! st 0)
      n)))
"#,
            diff: "stores the argument instead of the literal 1, so the protocol \
                   assert fails for every n other than 1",
            expected_unsolved: false,
        },
        // A monotone-maximum cell: the guarded overwrite keeps the invariant
        // (unbox best) ≥ 0; storing unconditionally lets a negative argument
        // through, and refuting it needs the solver to reason about the
        // overwritten cell's new numeric refinement.
        BenchProgram {
            name: "box-max",
            group: Group::Occurrence,
            correct: r#"
(module box-max
  (provide [observe (-> integer? integer?)])
  (define best (box 0))
  (define (observe n)
    (begin
      (if (> n (unbox best)) (set-box! best n) 0)
      (assert (>= (unbox best) 0))
      (unbox best))))
"#,
            faulty: r#"
(module box-max
  (provide [observe (-> integer? integer?)])
  (define best (box 0))
  (define (observe n)
    (begin
      (set-box! best n)
      (assert (>= (unbox best) 0))
      (unbox best))))
"#,
            diff: "stores every observation unconditionally, so a negative argument \
                   breaks the non-negativity invariant of the cell",
            expected_unsolved: false,
        },
    ]
}
