//! Ports of the Tobin-Hochstadt & Felleisen 2010 occurrence-typing
//! benchmarks (the third Table 1 group). The paper aggregates 14 small
//! dynamically-typed modules into one row; we do the same with a module
//! exporting several occurrence-typed functions.

use super::{BenchProgram, Group};

/// The programs of this group.
pub fn programs() -> Vec<BenchProgram> {
    vec![BenchProgram {
        name: "occurrence",
        group: Group::Occurrence,
        correct: r#"
(module occurrence
  (provide [succ-or-len (-> (or/c integer? string?) integer?)]
           [safe-inc (-> any/c integer?)]
           [bool-to-int (-> (or/c integer? boolean?) integer?)]
           [first-or-zero (-> any/c integer?)])
  (define (succ-or-len x) (if (integer? x) (+ x 1) (string-length x)))
  (define (safe-inc x) (if (integer? x) (+ x 1) 0))
  (define (bool-to-int x) (if (integer? x) x (if x 1 0)))
  (define (first-or-zero x) (if (pair? x) (if (integer? (car x)) (car x) 0) 0)))
"#,
        faulty: r#"
(module occurrence
  (provide [succ-or-len (-> (or/c integer? string?) integer?)]
           [safe-inc (-> any/c integer?)]
           [bool-to-int (-> (or/c integer? boolean?) integer?)]
           [first-or-zero (-> any/c integer?)])
  (define (succ-or-len x) (if (integer? x) (+ x 1) (string-length x)))
  (define (safe-inc x) (+ x 1))
  (define (bool-to-int x) (if (integer? x) x (if x 1 0)))
  (define (first-or-zero x) (if (pair? x) (if (integer? (car x)) (car x) 0) 0)))
"#,
        diff: "safe-inc no longer tests integer? before adding, so any non-number input crashes it",
        expected_unsolved: false,
    }]
}
