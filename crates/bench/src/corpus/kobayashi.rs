//! Ports of the Kobayashi et al. 2011 higher-order model-checking
//! benchmarks (the first Table 1 group).

use super::{BenchProgram, Group};

/// The programs of this group.
pub fn programs() -> Vec<BenchProgram> {
    vec![
        BenchProgram {
            name: "fhnhn",
            group: Group::Kobayashi,
            correct: r#"
(module fhnhn
  (provide [main (-> integer? integer?)])
  (define (check x) (if (>= x 0) x (error "negative")))
  (define (h y) (lambda (z) (check (+ y z))))
  (define (main n) ((h (if (< n 0) (- 0 n) n)) 0)))
"#,
            faulty: r#"
(module fhnhn
  (provide [main (-> integer? integer?)])
  (define (check x) (if (>= x 0) x (error "negative")))
  (define (h y) (lambda (z) (check (+ y z))))
  (define (main n) ((h n) 0)))
"#,
            diff: "dropped the absolute-value guard on the argument of h",
            expected_unsolved: false,
        },
        BenchProgram {
            name: "fold-div",
            group: Group::Kobayashi,
            correct: r#"
(module fold-div
  (provide [main (-> (listof integer?) integer?)])
  (define (foldl f acc xs)
    (if (null? xs) acc (foldl f (f acc (car xs)) (cdr xs))))
  (define (main xs)
    (foldl (lambda (a x) (/ a (if (zero? x) 1 x))) 100 xs)))
"#,
            faulty: r#"
(module fold-div
  (provide [main (-> (listof integer?) integer?)])
  (define (foldl f acc xs)
    (if (null? xs) acc (foldl f (f acc (car xs)) (cdr xs))))
  (define (main xs)
    (foldl (lambda (a x) (/ a x)) 100 xs)))
"#,
            diff: "removed the zero? guard on the divisor inside the folded function",
            expected_unsolved: false,
        },
        BenchProgram {
            name: "fold-fun-list",
            group: Group::Kobayashi,
            correct: r#"
(module fold-fun-list
  (provide [main (-> (listof (-> integer? integer?)) integer? integer?)])
  (define (compose-all fs x)
    (if (null? fs) x (compose-all (cdr fs) ((car fs) x))))
  (define (main fs n)
    (let ([r (compose-all fs n)])
      (/ 100 (if (zero? r) 1 r)))))
"#,
            faulty: r#"
(module fold-fun-list
  (provide [main (-> (listof (-> integer? integer?)) integer? integer?)])
  (define (compose-all fs x)
    (if (null? fs) x (compose-all (cdr fs) ((car fs) x))))
  (define (main fs n)
    (/ 100 (compose-all fs n))))
"#,
            diff: "removed the zero? guard on the composed result before dividing",
            expected_unsolved: false,
        },
        BenchProgram {
            name: "hors",
            group: Group::Kobayashi,
            correct: r#"
(module hors
  (provide [main (-> integer? integer?)])
  (define (twice f x) (f (f x)))
  (define (check x) (if (>= x 0) x (error "negative")))
  (define (main n) (twice check (if (< n 0) 0 n))))
"#,
            faulty: r#"
(module hors
  (provide [main (-> integer? integer?)])
  (define (twice f x) (f (f x)))
  (define (check x) (if (>= x 0) x (error "negative")))
  (define (main n) (twice check n)))
"#,
            diff: "dropped the clamp of negative inputs before the checked recursion",
            expected_unsolved: false,
        },
        BenchProgram {
            name: "hrec",
            group: Group::Kobayashi,
            correct: r#"
(module hrec
  (provide [main (-> integer? integer?)])
  (define (check x) (if (>= x 0) x (error "negative")))
  (define (walk n) (if (<= n 0) (check 0) (walk (- n 1))))
  (define (main n) (walk n)))
"#,
            faulty: r#"
(module hrec
  (provide [main (-> integer? integer?)])
  (define (check x) (if (>= x 0) x (error "negative")))
  (define (walk n) (if (<= n 0) (check n) (walk (- n 1))))
  (define (main n) (walk n)))
"#,
            diff: "the base case checks the raw argument instead of the clamped value",
            expected_unsolved: false,
        },
        BenchProgram {
            name: "intro1",
            group: Group::Kobayashi,
            correct: r#"
(module intro1
  (provide [main (-> integer? integer?)])
  (define (main n) (if (zero? n) 0 (/ 100 n))))
"#,
            faulty: r#"
(module intro1
  (provide [main (-> integer? integer?)])
  (define (main n) (/ 100 n)))
"#,
            diff: "removed the zero? guard on the divisor",
            expected_unsolved: false,
        },
        BenchProgram {
            name: "intro2",
            group: Group::Kobayashi,
            correct: r#"
(module intro2
  (provide [main (-> integer? integer?)])
  (define (main n) (/ 100 (+ 1 (if (< n 0) (- 0 n) n)))))
"#,
            faulty: r#"
(module intro2
  (provide [main (-> integer? integer?)])
  (define (main n) (/ 100 (+ 1 n))))
"#,
            diff: "the denominator is no longer 1 plus an absolute value, so n = -1 crashes",
            expected_unsolved: false,
        },
        BenchProgram {
            name: "intro3",
            group: Group::Kobayashi,
            correct: r#"
(module intro3
  (provide [main (-> integer? integer?)])
  (define (abs n) (if (< n 0) (- 0 n) n))
  (define (main n) (begin (assert (>= (+ (abs n) 1) 1)) 0)))
"#,
            faulty: r#"
(module intro3
  (provide [main (-> integer? integer?)])
  (define (abs n) (if (< n 0) (- 0 n) n))
  (define (main n) (begin (assert (>= n 0)) 0)))
"#,
            diff: "the assertion is about the raw input instead of the derived non-negative value",
            expected_unsolved: false,
        },
        BenchProgram {
            name: "isnil",
            group: Group::Kobayashi,
            correct: r#"
(module isnil
  (provide [head (-> (and/c (listof integer?) pair?) integer?)])
  (define (head xs) (car xs)))
"#,
            faulty: r#"
(module isnil
  (provide [head (-> (listof integer?) integer?)])
  (define (head xs) (car xs)))
"#,
            diff: "weakened the precondition from non-empty list to any list",
            expected_unsolved: false,
        },
        BenchProgram {
            name: "max",
            group: Group::Kobayashi,
            correct: r#"
(module maxbench
  (provide [main (-> integer? integer? integer?)])
  (define (mymax a b) (if (< a b) b a))
  (define (main a b) (begin (assert (>= (mymax a b) a)) (mymax a b))))
"#,
            faulty: r#"
(module maxbench
  (provide [main (-> integer? integer? integer?)])
  (define (mymax a b) (if (< a b) b a))
  (define (main a b) (begin (assert (> (mymax a b) a)) (mymax a b))))
"#,
            diff: "strengthened >= to > in the assertion, which fails when a = max",
            expected_unsolved: false,
        },
        BenchProgram {
            name: "mem",
            group: Group::Kobayashi,
            correct: r#"
(module mem
  (provide [main (-> integer? (listof integer?) integer?)])
  (define (mem? x xs)
    (if (null? xs) #f (if (= x (car xs)) #t (mem? x (cdr xs)))))
  (define (main x xs) (if (pair? xs) (car xs) 0)))
"#,
            faulty: r#"
(module mem
  (provide [main (-> integer? (listof integer?) integer?)])
  (define (mem? x xs)
    (if (null? xs) #f (if (= x (car xs)) #t (mem? x (cdr xs)))))
  (define (main x xs) (car xs)))
"#,
            diff: "removed the pair? guard before taking the head of the list",
            expected_unsolved: false,
        },
        BenchProgram {
            name: "mult",
            group: Group::Kobayashi,
            correct: r#"
(module multk
  (provide [main (-> integer? integer? integer?)])
  (define (mult x y) (if (or (<= x 0) (<= y 0)) 0 (+ x (mult x (- y 1)))))
  (define (main x y) (if (<= x 0) 0 (/ 100 x))))
"#,
            faulty: r#"
(module multk
  (provide [main (-> integer? integer? integer?)])
  (define (mult x y) (if (or (<= x 0) (<= y 0)) 0 (+ x (mult x (- y 1)))))
  (define (main x y) (if (< x 0) 0 (/ 100 x))))
"#,
            diff: "the guard excludes negative divisors but no longer zero",
            expected_unsolved: false,
        },
        BenchProgram {
            name: "nth0",
            group: Group::Kobayashi,
            correct: r#"
(module nth0
  (provide [main (-> (and/c (listof integer?) pair?) integer?)])
  (define (nth n xs) (if (zero? n) (car xs) (nth (- n 1) (cdr xs))))
  (define (main xs) (nth 0 xs)))
"#,
            faulty: r#"
(module nth0
  (provide [main (-> (and/c (listof integer?) pair?) integer?)])
  (define (nth n xs) (if (zero? n) (car xs) (nth (- n 1) (cdr xs))))
  (define (main xs) (nth 1 xs)))
"#,
            diff: "asks for the second element of a list only known to be non-empty",
            expected_unsolved: false,
        },
        BenchProgram {
            name: "r-file",
            group: Group::Kobayashi,
            correct: r#"
(module r-file
  (provide [main (-> integer? integer?)])
  (define st (box 0))
  (define (fopen) (begin (assert (zero? (unbox st))) (set-box! st 1)))
  (define (fread) (begin (assert (= (unbox st) 1)) 7))
  (define (fclose) (begin (assert (= (unbox st) 1)) (set-box! st 0)))
  (define (main n) (begin (fopen) (fread) (fclose) 0)))
"#,
            faulty: r#"
(module r-file
  (provide [main (-> integer? integer?)])
  (define st (box 0))
  (define (fopen) (begin (assert (zero? (unbox st))) (set-box! st 1)))
  (define (fread) (begin (assert (= (unbox st) 1)) 7))
  (define (fclose) (begin (assert (= (unbox st) 1)) (set-box! st 0)))
  (define (main n) (begin (fread) (fclose) 0)))
"#,
            diff: "reads from the file before opening it",
            expected_unsolved: false,
        },
        BenchProgram {
            name: "r-lock",
            group: Group::Kobayashi,
            correct: r#"
(module r-lock
  (provide [main (-> integer? integer?)])
  (define lock (box 0))
  (define (acquire) (begin (assert (zero? (unbox lock))) (set-box! lock 1)))
  (define (release) (begin (assert (= (unbox lock) 1)) (set-box! lock 0)))
  (define (main n) (begin (acquire) (release) 0)))
"#,
            faulty: r#"
(module r-lock
  (provide [main (-> integer? integer?)])
  (define lock (box 0))
  (define (acquire) (begin (assert (zero? (unbox lock))) (set-box! lock 1)))
  (define (release) (begin (assert (= (unbox lock) 1)) (set-box! lock 0)))
  (define (main n) (begin (acquire) (acquire) 0)))
"#,
            diff: "acquires the lock twice without releasing",
            expected_unsolved: false,
        },
        // The step-contract port of the r-file/r-lock resource protocol:
        // instead of hiding the 0/1 automaton state in a module-local box
        // behind a fixed call sequence, the transition function itself is
        // exported and the state crosses the module boundary guarded by an
        // enumeration contract. This is the benchmark family's "unknown
        // client" reading — any state/command the contract admits may come
        // in — and its `and/c`-guarded `one-of/c` domains are the corpus's
        // exercise of non-monotone contract concretization: the flat lambda
        // check refines the opaque state numerically, then the enumeration
        // check overwrites it with each literal, retracting solver state.
        BenchProgram {
            name: "r-proto-step",
            group: Group::Kobayashi,
            correct: r#"
(module r-proto-step
  (provide [step (-> (and/c integer? (lambda (s) (>= s 0)) (one-of/c 0 1))
                     (and/c integer? (lambda (c) (>= c 0)) (one-of/c 0 1))
                     (one-of/c 0 1))])
  (define (step s c) (if (= c 0) s (if (= s 0) 1 0))))
"#,
            faulty: r#"
(module r-proto-step
  (provide [step (-> (and/c integer? (lambda (s) (>= s 0)) (one-of/c 0 1))
                     (and/c integer? (lambda (c) (>= c 0)) (one-of/c 0 1))
                     (one-of/c 0 1))])
  (define (step s c) (+ s c)))
"#,
            diff: "adds the command to the state instead of toggling, stepping to 2 on (1, 1)",
            expected_unsolved: false,
        },
        BenchProgram {
            name: "reverse",
            group: Group::Kobayashi,
            correct: r#"
(module reverse
  (provide [main (-> (listof integer?) (listof integer?))])
  (define (rev acc xs) (if (null? xs) acc (rev (cons (car xs) acc) (cdr xs))))
  (define (main xs) (rev '() xs)))
"#,
            faulty: r#"
(module reverse
  (provide [main (-> (listof integer?) integer?)])
  (define (rev acc xs) (if (null? xs) acc (rev (cons (car xs) acc) (cdr xs))))
  (define (main xs) (car (rev '() xs))))
"#,
            diff: "takes the head of the reversed list, which is empty when the input is empty",
            expected_unsolved: false,
        },
    ]
}
