//! Programs standing in for the paper's "others", "others-e" and "others-w"
//! rows: the paper's own small benchmarks plus anonymous web submissions.
//! The web submissions are not published, so these are synthetic programs
//! with the properties the paper reports (2–51 lines, contract order ≤ 3;
//! five programs — the "-w" rows — defeat counterexample generation because
//! of numeric-tower/solver limitations, and the paper's own example of that
//! failure, `1/(1+n²)` under an `integer? → integer?` contract, is included
//! verbatim).

use super::{BenchProgram, Group};

/// The programs of this group.
pub fn programs() -> Vec<BenchProgram> {
    vec![
        BenchProgram {
            name: "argmin",
            group: Group::Others,
            correct: r#"
(module argmin
  (provide [argmin (-> (-> any/c integer?) (and/c (listof integer?) pair?) any/c)])
  (define (argmin/acc f b a xs)
    (cond [(null? xs) a]
          [(< b (f (car xs))) (argmin/acc f a b (cdr xs))]
          [else (argmin/acc f (car xs) (f (car xs)) (cdr xs))]))
  (define (argmin f xs)
    (argmin/acc f (car xs) (f (car xs)) (cdr xs))))
"#,
            faulty: r#"
(module argmin
  (provide [argmin (-> (-> any/c number?) (and/c (listof integer?) pair?) any/c)])
  (define (argmin/acc f b a xs)
    (cond [(null? xs) a]
          [(< b (f (car xs))) (argmin/acc f a b (cdr xs))]
          [else (argmin/acc f (car xs) (f (car xs)) (cdr xs))]))
  (define (argmin f xs)
    (argmin/acc f (car xs) (f (car xs)) (cdr xs))))
"#,
            diff: "the key function's contract promises number? instead of integer?; number? accepts complex numbers, which < rejects — the paper's §5.2 argmin counterexample",
            expected_unsolved: false,
        },
        BenchProgram {
            name: "first-quadrant",
            group: Group::Others,
            correct: r#"
(module first-quadrant
  (provide [first-quadrant? (-> (-> (one-of/c "x" "y") integer?) boolean?)])
  (define (first-quadrant? p)
    (and (>= (p "x") 0) (>= (p "y") 0))))
"#,
            faulty: r#"
(module first-quadrant
  (provide [first-quadrant? (-> (-> (one-of/c "x" "y") number?) boolean?)])
  (define (first-quadrant? p)
    (and (>= (p "x") 0) (>= (p "y") 0))))
"#,
            diff: "the posn/c-style interface answers number? instead of integer?; a conforming implementation answering 0+1i crashes the comparison (the paper's §5.2 example)",
            expected_unsolved: false,
        },
        BenchProgram {
            name: "braun-tree",
            group: Group::Others,
            correct: r#"
(module braun-tree
  (struct node (left value right))
  (provide [tree-value (-> (and/c node? well-formed?) integer?)])
  (define (well-formed? t) (and (node? t) (integer? (node-value t))))
  (define (tree-value t) (node-value t)))
"#,
            faulty: r#"
(module braun-tree
  (struct node (left value right))
  (provide [tree-value (-> any/c integer?)])
  (define (well-formed? t) (and (node? t) (integer? (node-value t))))
  (define (tree-value t) (node-value t)))
"#,
            diff: "the deep precondition on the tree was dropped entirely, so a non-node input crashes the accessor",
            expected_unsolved: false,
        },
        BenchProgram {
            name: "last-pair",
            group: Group::Others,
            correct: r#"
(module last-pair
  (provide [last (-> (and/c (listof integer?) pair?) integer?)])
  (define (last xs)
    (if (null? (cdr xs)) (car xs) (last (cdr xs)))))
"#,
            faulty: r#"
(module last-pair
  (provide [last (-> (listof integer?) integer?)])
  (define (last xs)
    (if (null? (cdr xs)) (car xs) (last (cdr xs)))))
"#,
            diff: "weakened the precondition to allow the empty list, whose cdr is an error",
            expected_unsolved: false,
        },
        BenchProgram {
            name: "abs-div",
            group: Group::Others,
            correct: r#"
(module abs-div
  (provide [f (-> integer? integer? integer?)])
  (define (abs n) (if (< n 0) (- 0 n) n))
  (define (f a b) (/ a (+ 1 (abs b)))))
"#,
            faulty: r#"
(module abs-div
  (provide [f (-> integer? integer? integer?)])
  (define (abs n) (if (< n 0) (- 0 n) n))
  (define (f a b) (/ a (+ 1 b))))
"#,
            diff: "the denominator is no longer 1 plus an absolute value, so b = -1 divides by zero",
            expected_unsolved: false,
        },
        BenchProgram {
            name: "filter-pos",
            group: Group::Others,
            correct: r#"
(module filter-pos
  (provide [keep-pos (-> (listof integer?) (listof integer?))])
  (define (keep-pos xs)
    (if (null? xs)
        '()
        (if (> (car xs) 0)
            (cons (car xs) (keep-pos (cdr xs)))
            (keep-pos (cdr xs))))))
"#,
            faulty: r#"
(module filter-pos
  (provide [biggest-pos (-> (listof integer?) integer?)])
  (define (keep-pos xs)
    (if (null? xs)
        '()
        (if (> (car xs) 0)
            (cons (car xs) (keep-pos (cdr xs)))
            (keep-pos (cdr xs)))))
  (define (biggest-pos xs) (car (keep-pos xs))))
"#,
            diff: "the new export takes the head of the filtered list, which is empty whenever no element is positive",
            expected_unsolved: false,
        },
        // --- the "others-w" style rows: probable violations the tool cannot
        // --- confirm with a counterexample (solver limitation, as in §5.3).
        BenchProgram {
            name: "w-square-div",
            group: Group::Others,
            correct: r#"
(module w-square-div
  (provide [f (-> integer? integer?)])
  (define (f n) (if (zero? n) 1 (/ 1 n))))
"#,
            faulty: r#"
(module w-square-div
  (provide [f (-> integer? integer?)])
  (define (f n) (/ 1 (+ 1 (* n n)))))
"#,
            diff: "the paper's own hard case: under an integer?→integer? contract the result of 1/(1+n²) need not be an integer, but the solver cannot produce a model for the non-integrality constraint",
            expected_unsolved: true,
        },
        BenchProgram {
            name: "w-nonlinear",
            group: Group::Others,
            correct: r#"
(module w-nonlinear
  (provide [f (-> integer? integer?)])
  (define (f n) (+ (* n n) 1)))
"#,
            faulty: r#"
(module w-nonlinear
  (provide [f (-> integer? integer?)])
  (define (f n) (/ 100 (- (* n n) 2))))
"#,
            diff: "the divisor n² − 2 is never zero over the integers, so the symbolically reachable error has no model; the tool must report a probable (unconfirmed) violation rather than a counterexample",
            expected_unsolved: true,
        },
    ]
}
