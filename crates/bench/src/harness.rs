//! Running the analysis on corpus programs and collecting Table 1 rows.
//!
//! Parallelism operates at two grains, both driven by
//! [`AnalyzeOptions::workers`]: inside `cpcf` the per-export analyses of a
//! module are sharded across worker threads, and here the corpus programs
//! themselves are sharded across the same number of threads
//! ([`run_all`]) — the corpus is dominated by single-export modules, so the
//! program-level grain is where most of the wall-clock saving comes from.
//! Each program gets one [`SharedVerdictCache`] spanning its correct and
//! faulty variant runs; the cache's epoch counter makes the cross-variant
//! verdict reuse measurable ([`ProgramResult::cross_variant_cache_hits`]).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use cpcf::{
    analyze_module, AnalyzeOptions, EvalOptions, ExportAnalysis, Expr, SessionStats,
    SharedVerdictCache,
};
use serde::{JsonObject, Serialize};

use crate::corpus::{BenchProgram, Group};

/// Options for a harness run.
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// Options handed to the analyzer. `analyze.workers` doubles as the
    /// program-level shard count of [`run_all`].
    pub analyze: AnalyzeOptions,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            analyze: AnalyzeOptions {
                eval: EvalOptions {
                    fuel: 3_000,
                    max_branches: 32,
                    havoc_depth: 2,
                    ..EvalOptions::default()
                },
                validate: true,
                context_depth: 2,
                ..AnalyzeOptions::default()
            },
        }
    }
}

impl BenchOptions {
    /// A drastically reduced budget for micro-benchmarking (Criterion) runs,
    /// where each program is analysed many times: deep enough to find the
    /// shallow bugs, small enough that a single run takes milliseconds.
    pub fn quick() -> Self {
        BenchOptions {
            analyze: AnalyzeOptions {
                eval: EvalOptions {
                    fuel: 800,
                    max_branches: 16,
                    havoc_depth: 1,
                    ..EvalOptions::default()
                },
                validate: true,
                context_depth: 1,
                ..AnalyzeOptions::default()
            },
        }
    }

    /// The same budget with the incremental prover session replaced by the
    /// original fresh-solver-per-query engine (the ablation baseline).
    pub fn fresh_per_query(mut self) -> Self {
        self.analyze.eval.prove.fresh_per_query = true;
        self
    }

    /// The same budget with pop-to-write-point retraction disabled: every
    /// non-monotone overwrite discards the live solver and re-encodes the
    /// heap (the pre-retraction engine, the second ablation baseline).
    /// Pins the incremental session explicitly so the comparison against the
    /// default engine holds even under `CPCF_PROVE_MODE=fresh`.
    pub fn rebase(mut self) -> Self {
        self.analyze.eval.prove.fresh_per_query = false;
        self.analyze.eval.prove.retraction = false;
        self
    }

    /// The same budget with pop-to-write-point retraction explicitly on
    /// (the default engine), regardless of `CPCF_PROVE_MODE`.
    pub fn retraction(mut self) -> Self {
        self.analyze.eval.prove.fresh_per_query = false;
        self.analyze.eval.prove.retraction = true;
        self
    }

    /// The same budget sharded over `workers` threads (both the per-export
    /// and the program-level grain). `0` means "auto": one worker per
    /// hardware thread.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.analyze.workers = workers;
        self
    }
}

/// The aggregate verdict for one program variant (all of its exports).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Every export verified.
    Verified,
    /// Some export has a validated concrete counterexample.
    Counterexample,
    /// Some export has an unconfirmed (probable) violation and none has a
    /// confirmed counterexample.
    ProbableError,
    /// The budget ran out before anything conclusive was found.
    Exhausted,
    /// The program failed to parse (a harness bug, not a benchmark result).
    ParseError,
}

impl Verdict {
    /// Short marker used in the rendered table.
    pub fn marker(self) -> &'static str {
        match self {
            Verdict::Verified => "ok",
            Verdict::Counterexample => "cex",
            Verdict::ProbableError => "probable",
            Verdict::Exhausted => "budget",
            Verdict::ParseError => "parse!",
        }
    }
}

impl Serialize for Verdict {
    fn to_json(&self) -> String {
        serde::escape_string(self.marker())
    }
}

/// Prover-session statistics aggregated over an analysis run, in a
/// JSON-friendly shape.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSummary {
    /// Total prover queries (tag + numeric + model).
    pub queries: u64,
    /// Queries answered from the verdict cache.
    pub cache_hits: u64,
    /// The subset of `cache_hits` inherited from a shared cache — verdicts
    /// computed by another session (a sibling worker or an earlier variant
    /// run).
    pub shared_cache_hits: u64,
    /// The subset of `shared_cache_hits` served by the persistent on-disk
    /// store (verdicts inherited from an earlier *process*; zero without
    /// `--store`).
    pub store_hits: u64,
    /// Queries that missed both cache tiers while a store was attached.
    pub store_misses: u64,
    /// Verdicts newly appended to the persistent store.
    pub store_writes: u64,
    /// Whole-heap encodings performed.
    pub full_encodings: u64,
    /// Incremental journal-suffix encodings performed.
    pub delta_encodings: u64,
    /// Solver-backed queries that reused the live solver state unchanged.
    pub reused_encodings: u64,
    /// Non-monotone overwrites absorbed by pop-to-write-point retraction
    /// instead of a whole-heap re-encode.
    pub retractions: u64,
    /// Solver frames popped by retractions.
    pub frames_popped: u64,
    /// Formulas re-asserted while replaying journal suffixes after
    /// retraction pops.
    pub assertions_replayed: u64,
    /// Heap snapshots (cheap copy-on-write `Heap::clone`s) taken by the
    /// evaluator's state splits.
    pub snapshots: u64,
    /// Persistent-map nodes structurally copied by writes that hit
    /// snapshot-shared state — the entire copying cost of the heap's
    /// copy-on-write representation.
    pub nodes_copied: u64,
    /// Journal bytes snapshots shared by reference instead of deep-copying
    /// (what the old `Vec`-journal representation memcpy'd per split).
    pub journal_bytes_shared: u64,
    /// Satisfiability checks issued to the first-order solver.
    pub solver_checks: u64,
    /// Conflicts encountered by the CDCL core.
    pub solver_conflicts: u64,
    /// Unit propagations performed by the CDCL core.
    pub solver_propagations: u64,
    /// Clauses the persistent solver core reused across checks (already in
    /// the database when a CDCL check started; zero under
    /// `CPCF_SOLVER_CORE=scratch`).
    pub clauses_reused: u64,
    /// Distinct atoms interned into the persistent core's hash-consing
    /// arena.
    pub atoms_interned: u64,
    /// Variables excluded from queries' searches by per-query cone slicing.
    pub cone_vars_pruned: u64,
    /// Clauses learnt by first-UIP conflict analysis in the CDCL core.
    pub learnt_clauses: u64,
    /// Learnt clauses discarded by clause-database reduction.
    pub clauses_deleted: u64,
    /// Luby-sequence restarts performed by the CDCL core.
    pub restarts_luby: u64,
    /// Theory lemmas published into the cross-worker lemma pool (zero under
    /// `CPCF_LEMMA_SHARING=off`).
    pub lemmas_published: u64,
    /// Sibling theory lemmas imported from the cross-worker lemma pool
    /// (zero under `CPCF_LEMMA_SHARING=off`).
    pub lemmas_imported: u64,
    /// Conjunction checks the difference-logic module ran (zero under
    /// `CPCF_THEORY_DL=off`).
    pub dl_checks: u64,
    /// Negative constraint cycles refuted by the difference-logic module.
    pub dl_conflicts: u64,
    /// Potential-repair edge relaxations in the difference-logic module.
    pub dl_propagations: u64,
    /// Theory dispatches routed to the difference-logic module.
    pub theory_dispatch_dl: u64,
    /// Theory dispatches routed to the general LIA engine.
    pub theory_dispatch_lia: u64,
    /// Lazy SMT loops that ran out of their iteration budget and answered
    /// `Unknown`.
    pub theory_iterations_exhausted: u64,
    /// LIA interval-propagation fixpoints cut off by the round ceiling —
    /// the difference-cycle divergence symptom; should be zero when the
    /// difference-logic module is enabled.
    pub propagation_ceiling_hits: u64,
    /// Satisfiable LIA verdicts demoted to `Unknown` because the model
    /// could not be reconstructed after presolve elimination.
    pub model_reconstruction_failures: u64,
    /// Wall-clock milliseconds spent inside the first-order solver.
    pub solver_ms: u128,
}

impl StatsSummary {
    /// Flattens a session's counters into the summary shape.
    pub fn from_session(stats: &SessionStats) -> Self {
        StatsSummary {
            queries: stats.queries,
            cache_hits: stats.cache_hits,
            shared_cache_hits: stats.shared_cache_hits,
            store_hits: stats.store_hits,
            store_misses: stats.store_misses,
            store_writes: stats.store_writes,
            full_encodings: stats.full_encodings,
            delta_encodings: stats.delta_encodings,
            reused_encodings: stats.reused_encodings,
            retractions: stats.retractions,
            frames_popped: stats.frames_popped,
            assertions_replayed: stats.assertions_replayed,
            snapshots: stats.snapshots,
            nodes_copied: stats.nodes_copied,
            journal_bytes_shared: stats.journal_bytes_shared,
            solver_checks: stats.solver.checks,
            solver_conflicts: stats.solver.conflicts,
            solver_propagations: stats.solver.propagations,
            clauses_reused: stats.solver.clauses_reused,
            atoms_interned: stats.solver.atoms_interned,
            cone_vars_pruned: stats.solver.cone_vars_pruned,
            learnt_clauses: stats.solver.learnt_clauses,
            clauses_deleted: stats.solver.clauses_deleted,
            restarts_luby: stats.solver.restarts_luby,
            lemmas_published: stats.solver.lemmas_published,
            lemmas_imported: stats.solver.lemmas_imported,
            dl_checks: stats.solver.dl_checks,
            dl_conflicts: stats.solver.dl_conflicts,
            dl_propagations: stats.solver.dl_propagations,
            theory_dispatch_dl: stats.solver.theory_dispatch_dl,
            theory_dispatch_lia: stats.solver.theory_dispatch_lia,
            theory_iterations_exhausted: stats.solver.theory_iterations_exhausted,
            propagation_ceiling_hits: stats.solver.propagation_ceiling_hits,
            model_reconstruction_failures: stats.solver.model_reconstruction_failures,
            solver_ms: stats.solver.time.as_millis(),
        }
    }

    /// Accumulates another summary into this one.
    pub fn merge(&mut self, other: &StatsSummary) {
        self.queries += other.queries;
        self.cache_hits += other.cache_hits;
        self.shared_cache_hits += other.shared_cache_hits;
        self.store_hits += other.store_hits;
        self.store_misses += other.store_misses;
        self.store_writes += other.store_writes;
        self.full_encodings += other.full_encodings;
        self.delta_encodings += other.delta_encodings;
        self.reused_encodings += other.reused_encodings;
        self.retractions += other.retractions;
        self.frames_popped += other.frames_popped;
        self.assertions_replayed += other.assertions_replayed;
        self.snapshots += other.snapshots;
        self.nodes_copied += other.nodes_copied;
        self.journal_bytes_shared += other.journal_bytes_shared;
        self.solver_checks += other.solver_checks;
        self.solver_conflicts += other.solver_conflicts;
        self.solver_propagations += other.solver_propagations;
        self.clauses_reused += other.clauses_reused;
        self.atoms_interned += other.atoms_interned;
        self.cone_vars_pruned += other.cone_vars_pruned;
        self.learnt_clauses += other.learnt_clauses;
        self.clauses_deleted += other.clauses_deleted;
        self.restarts_luby += other.restarts_luby;
        self.lemmas_published += other.lemmas_published;
        self.lemmas_imported += other.lemmas_imported;
        self.dl_checks += other.dl_checks;
        self.dl_conflicts += other.dl_conflicts;
        self.dl_propagations += other.dl_propagations;
        self.theory_dispatch_dl += other.theory_dispatch_dl;
        self.theory_dispatch_lia += other.theory_dispatch_lia;
        self.theory_iterations_exhausted += other.theory_iterations_exhausted;
        self.propagation_ceiling_hits += other.propagation_ceiling_hits;
        self.model_reconstruction_failures += other.model_reconstruction_failures;
        self.solver_ms += other.solver_ms;
    }
}

impl Serialize for StatsSummary {
    fn to_json(&self) -> String {
        JsonObject::new()
            .field("queries", &self.queries)
            .field("cache_hits", &self.cache_hits)
            .field("shared_cache_hits", &self.shared_cache_hits)
            .field("store_hits", &self.store_hits)
            .field("store_misses", &self.store_misses)
            .field("store_writes", &self.store_writes)
            .field("full_encodings", &self.full_encodings)
            .field("delta_encodings", &self.delta_encodings)
            .field("reused_encodings", &self.reused_encodings)
            .field("retractions", &self.retractions)
            .field("frames_popped", &self.frames_popped)
            .field("assertions_replayed", &self.assertions_replayed)
            .field("snapshots", &self.snapshots)
            .field("nodes_copied", &self.nodes_copied)
            .field("journal_bytes_shared", &self.journal_bytes_shared)
            .field("solver_checks", &self.solver_checks)
            .field("solver_conflicts", &self.solver_conflicts)
            .field("solver_propagations", &self.solver_propagations)
            .field("clauses_reused", &self.clauses_reused)
            .field("atoms_interned", &self.atoms_interned)
            .field("cone_vars_pruned", &self.cone_vars_pruned)
            .field("learnt_clauses", &self.learnt_clauses)
            .field("clauses_deleted", &self.clauses_deleted)
            .field("restarts_luby", &self.restarts_luby)
            .field("lemmas_published", &self.lemmas_published)
            .field("lemmas_imported", &self.lemmas_imported)
            .field("dl_checks", &self.dl_checks)
            .field("dl_conflicts", &self.dl_conflicts)
            .field("dl_propagations", &self.dl_propagations)
            .field("theory_dispatch_dl", &self.theory_dispatch_dl)
            .field("theory_dispatch_lia", &self.theory_dispatch_lia)
            .field(
                "theory_iterations_exhausted",
                &self.theory_iterations_exhausted,
            )
            .field("propagation_ceiling_hits", &self.propagation_ceiling_hits)
            .field(
                "model_reconstruction_failures",
                &self.model_reconstruction_failures,
            )
            .field("solver_ms", &self.solver_ms)
            .finish()
    }
}

/// The Table 1 row produced for one corpus program.
#[derive(Debug, Clone)]
pub struct ProgramResult {
    /// Program name.
    pub name: String,
    /// Group title.
    pub group: String,
    /// Source lines of the analysed (faulty) variant.
    pub lines: usize,
    /// Highest contract order among the exports.
    pub order: u32,
    /// Verdict on the correct variant (expected: `Verified`).
    pub correct_verdict: Verdict,
    /// Analysis time for the correct variant, in milliseconds.
    pub correct_ms: u128,
    /// Verdict on the faulty variant (expected: `Counterexample`, or
    /// `ProbableError` for the `*`-marked rows).
    pub faulty_verdict: Verdict,
    /// Analysis time for the faulty variant, in milliseconds.
    pub faulty_ms: u128,
    /// True for rows the paper itself reports as unsolved ("others-w").
    pub expected_unsolved: bool,
    /// Prover-session statistics summed over both variants.
    pub stats: StatsSummary,
    /// Shared-cache hits during the faulty variant run on verdicts computed
    /// during the correct variant run (both variants share one cache whose
    /// epoch is advanced between them). Zero when the cache is disabled
    /// (fresh-per-query mode).
    pub cross_variant_cache_hits: u64,
    /// Per-analysis-worker statistics, summed across both variants by
    /// worker index (a single entry when the analysis ran sequentially).
    pub worker_summaries: Vec<StatsSummary>,
    /// Stored theory lemmas re-published into this program's lemma pool
    /// before analysis (zero without `--store`, and on the cold run).
    pub lemmas_warm_started: u64,
    /// Exports answered straight from the store because their
    /// dependency-cone hash was unchanged (zero without `--incremental`).
    pub exports_skipped: u64,
}

impl Serialize for ProgramResult {
    fn to_json(&self) -> String {
        JsonObject::new()
            .field("name", &self.name)
            .field("group", &self.group)
            .field("lines", &self.lines)
            .field("order", &self.order)
            .field("correct_verdict", &self.correct_verdict)
            .field("correct_ms", &self.correct_ms)
            .field("faulty_verdict", &self.faulty_verdict)
            .field("faulty_ms", &self.faulty_ms)
            .field("expected_unsolved", &self.expected_unsolved)
            .field("stats", &self.stats)
            .field("cross_variant_cache_hits", &self.cross_variant_cache_hits)
            .field("per_worker", &self.worker_summaries)
            .field("lemmas_warm_started", &self.lemmas_warm_started)
            .field("exports_skipped", &self.exports_skipped)
            .finish()
    }
}

impl ProgramResult {
    /// True if the row behaves as the paper's evaluation expects: the
    /// correct variant produces no counterexample and the faulty variant
    /// produces one (or, for the `*` rows, a probable violation).
    pub fn matches_expectation(&self) -> bool {
        let correct_ok = self.correct_verdict != Verdict::Counterexample
            && self.correct_verdict != Verdict::ParseError;
        let faulty_ok = if self.expected_unsolved {
            matches!(
                self.faulty_verdict,
                Verdict::ProbableError | Verdict::Exhausted
            )
        } else {
            self.faulty_verdict == Verdict::Counterexample
        };
        correct_ok && faulty_ok
    }
}

/// The contract order of an export's contract expression (the paper's
/// "Order" column: `int → int` is order 1, `(int → int) → int` order 2, …).
pub fn contract_order(contract: &Expr) -> u32 {
    match contract {
        Expr::CArrow(doms, rng) => {
            let dom_order = doms.iter().map(contract_order).max().unwrap_or(0) + 1;
            dom_order.max(contract_order(rng))
        }
        Expr::CAnd(parts) | Expr::COr(parts) | Expr::COneOf(parts) => {
            parts.iter().map(contract_order).max().unwrap_or(0)
        }
        Expr::CCons(a, b) => contract_order(a).max(contract_order(b)),
        Expr::CListOf(inner) => contract_order(inner),
        _ => 0,
    }
}

fn analyze_variant(
    source: &str,
    options: &BenchOptions,
) -> (Verdict, u128, u32, StatsSummary, Vec<StatsSummary>, u64) {
    let start = Instant::now();
    let Ok((program, _)) = cpcf::parse_program(source) else {
        return (
            Verdict::ParseError,
            0,
            0,
            StatsSummary::default(),
            Vec::new(),
            0,
        );
    };
    let module_name = program
        .modules
        .last()
        .map(|m| m.name.clone())
        .unwrap_or_else(|| "main".to_string());
    let order = program
        .module(&module_name)
        .map(|m| {
            m.provides
                .iter()
                .map(|p| contract_order(&p.contract))
                .max()
                .unwrap_or(0)
        })
        .unwrap_or(0);
    let report = analyze_module(&program, &module_name, &options.analyze);
    let elapsed = start.elapsed().as_millis();
    let mut verdict = Verdict::Verified;
    for (_, export) in &report.exports {
        match export {
            ExportAnalysis::Counterexample(_) => {
                verdict = Verdict::Counterexample;
                break;
            }
            ExportAnalysis::ProbableError(_) => verdict = Verdict::ProbableError,
            ExportAnalysis::Exhausted => {
                if verdict == Verdict::Verified {
                    verdict = Verdict::Exhausted;
                }
            }
            ExportAnalysis::Verified => {}
        }
    }
    (
        verdict,
        elapsed,
        order,
        StatsSummary::from_session(&report.stats),
        report
            .worker_stats
            .iter()
            .map(StatsSummary::from_session)
            .collect(),
        report.skipped.len() as u64,
    )
}

/// Sums two per-worker summary lists by worker index.
fn merge_worker_summaries(
    mut left: Vec<StatsSummary>,
    right: &[StatsSummary],
) -> Vec<StatsSummary> {
    if left.len() < right.len() {
        left.resize(right.len(), StatsSummary::default());
    }
    for (slot, summary) in left.iter_mut().zip(right) {
        slot.merge(summary);
    }
    left
}

/// Runs both variants of a corpus program. The two runs share one
/// [`SharedVerdictCache`] with an epoch boundary between them, so the faulty
/// run reuses every verdict the correct run computed on their (large) shared
/// evaluation prefix — and the reuse is reported as
/// [`ProgramResult::cross_variant_cache_hits`]. When lemma sharing is on
/// (`CPCF_LEMMA_SHARING`, see [`cpcf::default_lemma_sharing`]) the variants
/// likewise share one [`cpcf::SharedLemmaPool`]: theory lemmas derived while
/// analysing the correct variant prune the faulty variant's searches.
pub fn run_program(program: &BenchProgram, options: &BenchOptions) -> ProgramResult {
    eprintln!("[table1] analysing {} ...", program.name);
    let mut options = options.clone();
    // With a persistent store attached (`--store`), the per-program shared
    // cache gains the disk tier: misses fall through to verdicts an earlier
    // process proved, and new verdicts are appended for the next one.
    let cache = match &options.analyze.store {
        Some(store) => SharedVerdictCache::with_store(store.clone()),
        None => SharedVerdictCache::new(),
    };
    options.analyze.shared_cache = Some(cache.clone());
    if options.analyze.shared_lemmas.is_none() && cpcf::default_lemma_sharing() {
        options.analyze.shared_lemmas = Some(cpcf::SharedLemmaPool::new());
    }
    // Warm-start the program's lemma pool from the store up front so the
    // per-program count is attributable (the scheduler's own warm start is
    // content-deduplicated, so it then re-publishes nothing).
    let mut lemmas_warm_started = 0;
    if let (Some(store), Some(pool)) = (&options.analyze.store, &options.analyze.shared_lemmas) {
        lemmas_warm_started = store.warm_start_lemmas(pool);
    }
    let (correct_verdict, correct_ms, order, correct_stats, correct_workers, correct_skipped) =
        analyze_variant(program.correct, &options);
    cache.advance_epoch();
    let (faulty_verdict, faulty_ms, faulty_order, faulty_stats, faulty_workers, faulty_skipped) =
        analyze_variant(program.faulty, &options);
    eprintln!(
        "[table1]   {}: correct {:?} in {} ms, faulty {:?} in {} ms",
        program.name, correct_verdict, correct_ms, faulty_verdict, faulty_ms
    );
    let mut stats = correct_stats;
    stats.merge(&faulty_stats);
    ProgramResult {
        name: program.name.to_string(),
        group: program.group.title().to_string(),
        lines: program.lines(),
        order: order.max(faulty_order),
        correct_verdict,
        correct_ms,
        faulty_verdict,
        faulty_ms,
        expected_unsolved: program.expected_unsolved,
        stats,
        cross_variant_cache_hits: cache.cross_epoch_hits(),
        worker_summaries: merge_worker_summaries(correct_workers, &faulty_workers),
        lemmas_warm_started,
        exports_skipped: correct_skipped + faulty_skipped,
    }
}

/// Runs a list of programs, sharding them across `options.analyze.workers`
/// threads (each program's two variants stay on one thread so the
/// cross-variant cache sharing is preserved). Results come back in corpus
/// order regardless of completion order.
pub fn run_all(programs: &[BenchProgram], options: &BenchOptions) -> Vec<ProgramResult> {
    // `workers: 0` means "auto" (one per hardware thread), then capped by
    // the number of programs there actually are to run.
    let workers = cpcf::resolve_workers(options.analyze.workers).clamp(1, programs.len().max(1));
    if workers <= 1 {
        return programs.iter().map(|p| run_program(p, options)).collect();
    }
    // The thread budget is shared, not multiplied: with the programs already
    // sharded across `workers` threads, each program's analysis runs its
    // exports sequentially (export-level sharding pays off when a single
    // program is analysed in isolation, e.g. via `run_program`).
    let mut options = options.clone();
    options.analyze.workers = 1;
    let options = &options;
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<ProgramResult>> = vec![None; programs.len()];
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut rows = Vec::new();
                    loop {
                        let index = next.fetch_add(1, Ordering::SeqCst);
                        let Some(program) = programs.get(index) else {
                            break;
                        };
                        rows.push((index, run_program(program, options)));
                    }
                    rows
                })
            })
            .collect();
        for handle in handles {
            for (index, row) in handle.join().expect("bench worker panicked") {
                slots[index] = Some(row);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every program slot is filled"))
        .collect()
}

/// Runs every program of a group.
pub fn run_group(group: Group, options: &BenchOptions) -> Vec<ProgramResult> {
    run_all(&crate::corpus::group_programs(group), options)
}

/// The result of running one program under both prover engines.
#[derive(Debug, Clone)]
pub struct DifferentialResult {
    /// The row produced with the incremental prover session (the default).
    pub incremental: ProgramResult,
    /// The row produced with the `fresh_per_query` ablation (the original
    /// solver-per-query engine).
    pub fresh: ProgramResult,
}

impl DifferentialResult {
    /// True if both engines agreed on both variants' verdicts.
    pub fn verdicts_match(&self) -> bool {
        self.incremental.correct_verdict == self.fresh.correct_verdict
            && self.incremental.faulty_verdict == self.fresh.faulty_verdict
    }
}

/// Runs a program with the incremental session and with the
/// `fresh_per_query` ablation, for differential comparison. The incremental
/// leg pins `fresh_per_query = false` (keeping the caller's retraction
/// setting), so the two legs genuinely run different engines even when
/// `CPCF_PROVE_MODE=fresh` has flipped the configuration default.
pub fn run_program_differential(
    program: &BenchProgram,
    options: &BenchOptions,
) -> DifferentialResult {
    let mut incremental_options = options.clone();
    incremental_options.analyze.eval.prove.fresh_per_query = false;
    let incremental = run_program(program, &incremental_options);
    let fresh = run_program(program, &options.clone().fresh_per_query());
    DifferentialResult { incremental, fresh }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::group_programs;

    #[test]
    fn contract_order_matches_paper_convention() {
        let first = cpcf::parse_expr("(-> integer? integer?)").expect("parses");
        assert_eq!(contract_order(&first), 1);
        let second = cpcf::parse_expr("(-> (-> integer? integer?) integer?)").expect("parses");
        assert_eq!(contract_order(&second), 2);
        let third =
            cpcf::parse_expr("(-> (-> (-> integer? integer?) integer?) integer?)").expect("parses");
        assert_eq!(contract_order(&third), 3);
        let flat = cpcf::parse_expr("(and/c integer? pair?)").expect("parses");
        assert_eq!(contract_order(&flat), 0);
    }

    #[test]
    fn intro1_row_matches_the_paper_shape() {
        let program = group_programs(crate::corpus::Group::Kobayashi)
            .into_iter()
            .find(|p| p.name == "intro1")
            .expect("intro1 exists");
        let result = run_program(&program, &BenchOptions::default());
        assert_eq!(result.correct_verdict, Verdict::Verified);
        assert_eq!(result.faulty_verdict, Verdict::Counterexample);
        assert!(result.matches_expectation());
    }

    #[test]
    fn unsolved_rows_report_probable_errors() {
        let program = group_programs(crate::corpus::Group::Others)
            .into_iter()
            .find(|p| p.name == "w-square-div")
            .expect("w-square-div exists");
        let result = run_program(&program, &BenchOptions::default());
        assert!(result.expected_unsolved);
        assert_ne!(result.faulty_verdict, Verdict::ParseError);
    }

    #[test]
    fn occurrence_incremental_matches_fresh_and_caches() {
        // The acceptance check for the incremental prover session: on the
        // occurrence group, verdicts are identical between the incremental
        // and fresh-per-query engines, the cache is exercised, and far fewer
        // full-heap encodings than queries are needed.
        let options = BenchOptions::quick();
        let programs: Vec<_> = group_programs(crate::corpus::Group::Occurrence)
            .into_iter()
            .take(2)
            .collect();
        let mut incremental_total = StatsSummary::default();
        for program in &programs {
            let differential = run_program_differential(program, &options);
            assert!(
                differential.verdicts_match(),
                "{}: incremental ({:?}/{:?}) and fresh ({:?}/{:?}) engines disagree",
                program.name,
                differential.incremental.correct_verdict,
                differential.incremental.faulty_verdict,
                differential.fresh.correct_verdict,
                differential.fresh.faulty_verdict,
            );
            incremental_total.merge(&differential.incremental.stats);
            // The ablation re-encodes the heap for every solver-backed query.
            let fresh = &differential.fresh.stats;
            assert_eq!(fresh.cache_hits, 0, "fresh mode must not use the cache");
        }
        assert!(
            incremental_total.cache_hits >= 1,
            "no cache hits: {incremental_total:?}"
        );
        assert!(
            incremental_total.full_encodings < incremental_total.queries,
            "incremental mode should encode the heap far less often than it queries: \
             {incremental_total:?}"
        );
    }

    #[test]
    fn program_results_serialize_to_json() {
        let result = ProgramResult {
            name: "a".to_string(),
            group: "G".to_string(),
            lines: 10,
            order: 1,
            correct_verdict: Verdict::Verified,
            correct_ms: 5,
            faulty_verdict: Verdict::Counterexample,
            faulty_ms: 7,
            expected_unsolved: false,
            stats: StatsSummary {
                queries: 10,
                cache_hits: 3,
                ..StatsSummary::default()
            },
            cross_variant_cache_hits: 2,
            worker_summaries: vec![StatsSummary {
                queries: 10,
                ..StatsSummary::default()
            }],
            lemmas_warm_started: 4,
            exports_skipped: 1,
        };
        let json = result.to_json();
        assert!(json.contains("\"name\":\"a\""));
        assert!(json.contains("\"correct_verdict\":\"ok\""));
        assert!(json.contains("\"cache_hits\":3"));
        assert!(json.contains("\"cross_variant_cache_hits\":2"));
        assert!(json.contains("\"per_worker\":[{"));
        assert!(json.contains("\"lemmas_warm_started\":4"));
        assert!(json.contains("\"exports_skipped\":1"));
    }

    #[test]
    fn variants_share_verdicts_across_the_epoch_boundary() {
        let program = group_programs(crate::corpus::Group::Kobayashi)
            .into_iter()
            .find(|p| p.name == "intro1")
            .expect("intro1 exists");
        let result = run_program(&program, &BenchOptions::quick());
        assert!(
            result.cross_variant_cache_hits > 0,
            "the faulty variant must reuse verdicts from the correct run: {result:?}"
        );
        assert!(
            result.stats.shared_cache_hits >= result.cross_variant_cache_hits,
            "shared hits include the cross-variant ones: {:?}",
            result.stats
        );
    }

    #[test]
    fn worker_count_does_not_change_row_verdicts() {
        let program = group_programs(crate::corpus::Group::Kobayashi)
            .into_iter()
            .find(|p| p.name == "intro1")
            .expect("intro1 exists");
        let sequential = run_program(&program, &BenchOptions::quick());
        let sharded = run_program(&program, &BenchOptions::quick().with_workers(4));
        assert_eq!(sequential.correct_verdict, sharded.correct_verdict);
        assert_eq!(sequential.faulty_verdict, sharded.faulty_verdict);
    }

    #[test]
    fn run_all_keeps_corpus_order_under_program_sharding() {
        let programs: Vec<_> = group_programs(crate::corpus::Group::Occurrence)
            .into_iter()
            .take(3)
            .collect();
        let rows = run_all(&programs, &BenchOptions::quick().with_workers(3));
        let names: Vec<&str> = rows.iter().map(|r| r.name.as_str()).collect();
        let expected: Vec<&str> = programs.iter().map(|p| p.name).collect();
        assert_eq!(names, expected);
    }

    #[test]
    fn cdcl_counters_flow_into_row_stats() {
        // fold-div's division constraints introduce witness variables with
        // boolean structure (implication/disjunction side conditions), and
        // its verification queries are UNSAT-heavy — the lazy SMT loop must
        // run the CDCL core, so its counters must surface as nonzero.
        let program = group_programs(crate::corpus::Group::Kobayashi)
            .into_iter()
            .find(|p| p.name == "fold-div")
            .expect("fold-div exists");
        let result = run_program(&program, &BenchOptions::quick());
        assert!(
            result.stats.solver_propagations > 0,
            "no CDCL propagations surfaced: {:?}",
            result.stats
        );
        assert!(
            result.stats.solver_conflicts > 0,
            "no CDCL conflicts surfaced: {:?}",
            result.stats
        );
    }
}
