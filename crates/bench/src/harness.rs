//! Running the analysis on corpus programs and collecting Table 1 rows.

use std::time::Instant;

use cpcf::{analyze_module, AnalyzeOptions, EvalOptions, Expr, ExportAnalysis};
use serde::Serialize;

use crate::corpus::{BenchProgram, Group};

/// Options for a harness run.
#[derive(Debug, Clone, Copy)]
pub struct BenchOptions {
    /// Options handed to the analyzer.
    pub analyze: AnalyzeOptions,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            analyze: AnalyzeOptions {
                eval: EvalOptions {
                    fuel: 3_000,
                    max_branches: 32,
                    havoc_depth: 2,
                    ..EvalOptions::default()
                },
                validate: true,
                context_depth: 2,
            },
        }
    }
}

/// The aggregate verdict for one program variant (all of its exports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Verdict {
    /// Every export verified.
    Verified,
    /// Some export has a validated concrete counterexample.
    Counterexample,
    /// Some export has an unconfirmed (probable) violation and none has a
    /// confirmed counterexample.
    ProbableError,
    /// The budget ran out before anything conclusive was found.
    Exhausted,
    /// The program failed to parse (a harness bug, not a benchmark result).
    ParseError,
}

impl Verdict {
    /// Short marker used in the rendered table.
    pub fn marker(self) -> &'static str {
        match self {
            Verdict::Verified => "ok",
            Verdict::Counterexample => "cex",
            Verdict::ProbableError => "probable",
            Verdict::Exhausted => "budget",
            Verdict::ParseError => "parse!",
        }
    }
}

/// The Table 1 row produced for one corpus program.
#[derive(Debug, Clone, Serialize)]
pub struct ProgramResult {
    /// Program name.
    pub name: String,
    /// Group title.
    pub group: String,
    /// Source lines of the analysed (faulty) variant.
    pub lines: usize,
    /// Highest contract order among the exports.
    pub order: u32,
    /// Verdict on the correct variant (expected: `Verified`).
    pub correct_verdict: Verdict,
    /// Analysis time for the correct variant, in milliseconds.
    pub correct_ms: u128,
    /// Verdict on the faulty variant (expected: `Counterexample`, or
    /// `ProbableError` for the `*`-marked rows).
    pub faulty_verdict: Verdict,
    /// Analysis time for the faulty variant, in milliseconds.
    pub faulty_ms: u128,
    /// True for rows the paper itself reports as unsolved ("others-w").
    pub expected_unsolved: bool,
}

impl ProgramResult {
    /// True if the row behaves as the paper's evaluation expects: the
    /// correct variant produces no counterexample and the faulty variant
    /// produces one (or, for the `*` rows, a probable violation).
    pub fn matches_expectation(&self) -> bool {
        let correct_ok = self.correct_verdict != Verdict::Counterexample
            && self.correct_verdict != Verdict::ParseError;
        let faulty_ok = if self.expected_unsolved {
            matches!(self.faulty_verdict, Verdict::ProbableError | Verdict::Exhausted)
        } else {
            self.faulty_verdict == Verdict::Counterexample
        };
        correct_ok && faulty_ok
    }
}

/// The contract order of an export's contract expression (the paper's
/// "Order" column: `int → int` is order 1, `(int → int) → int` order 2, …).
pub fn contract_order(contract: &Expr) -> u32 {
    match contract {
        Expr::CArrow(doms, rng) => {
            let dom_order = doms.iter().map(contract_order).max().unwrap_or(0) + 1;
            dom_order.max(contract_order(rng))
        }
        Expr::CAnd(parts) | Expr::COr(parts) | Expr::COneOf(parts) => {
            parts.iter().map(contract_order).max().unwrap_or(0)
        }
        Expr::CCons(a, b) => contract_order(a).max(contract_order(b)),
        Expr::CListOf(inner) => contract_order(inner),
        _ => 0,
    }
}

fn analyze_variant(source: &str, options: &BenchOptions) -> (Verdict, u128, u32) {
    let start = Instant::now();
    let Ok((program, _)) = cpcf::parse_program(source) else {
        return (Verdict::ParseError, 0, 0);
    };
    let module_name = program
        .modules
        .last()
        .map(|m| m.name.clone())
        .unwrap_or_else(|| "main".to_string());
    let order = program
        .module(&module_name)
        .map(|m| {
            m.provides
                .iter()
                .map(|p| contract_order(&p.contract))
                .max()
                .unwrap_or(0)
        })
        .unwrap_or(0);
    let report = analyze_module(&program, &module_name, &options.analyze);
    let elapsed = start.elapsed().as_millis();
    let mut verdict = Verdict::Verified;
    for (_, export) in &report.exports {
        match export {
            ExportAnalysis::Counterexample(_) => {
                verdict = Verdict::Counterexample;
                break;
            }
            ExportAnalysis::ProbableError(_) => verdict = Verdict::ProbableError,
            ExportAnalysis::Exhausted => {
                if verdict == Verdict::Verified {
                    verdict = Verdict::Exhausted;
                }
            }
            ExportAnalysis::Verified => {}
        }
    }
    (verdict, elapsed, order)
}

impl BenchOptions {
    /// A drastically reduced budget for micro-benchmarking (Criterion) runs,
    /// where each program is analysed many times: deep enough to find the
    /// shallow bugs, small enough that a single run takes milliseconds.
    pub fn quick() -> Self {
        BenchOptions {
            analyze: AnalyzeOptions {
                eval: EvalOptions {
                    fuel: 800,
                    max_branches: 16,
                    havoc_depth: 1,
                    ..EvalOptions::default()
                },
                validate: true,
                context_depth: 1,
            },
        }
    }
}

/// Runs both variants of a corpus program.
pub fn run_program(program: &BenchProgram, options: &BenchOptions) -> ProgramResult {
    eprintln!("[table1] analysing {} ...", program.name);
    let (correct_verdict, correct_ms, order) = analyze_variant(program.correct, options);
    let (faulty_verdict, faulty_ms, faulty_order) = analyze_variant(program.faulty, options);
    eprintln!(
        "[table1]   {}: correct {:?} in {} ms, faulty {:?} in {} ms",
        program.name, correct_verdict, correct_ms, faulty_verdict, faulty_ms
    );
    ProgramResult {
        name: program.name.to_string(),
        group: program.group.title().to_string(),
        lines: program.lines(),
        order: order.max(faulty_order),
        correct_verdict,
        correct_ms,
        faulty_verdict,
        faulty_ms,
        expected_unsolved: program.expected_unsolved,
    }
}

/// Runs a list of programs.
pub fn run_all(programs: &[BenchProgram], options: &BenchOptions) -> Vec<ProgramResult> {
    programs.iter().map(|p| run_program(p, options)).collect()
}

/// Runs every program of a group.
pub fn run_group(group: Group, options: &BenchOptions) -> Vec<ProgramResult> {
    run_all(&crate::corpus::group_programs(group), options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::group_programs;

    #[test]
    fn contract_order_matches_paper_convention() {
        let first = cpcf::parse_expr("(-> integer? integer?)").expect("parses");
        assert_eq!(contract_order(&first), 1);
        let second = cpcf::parse_expr("(-> (-> integer? integer?) integer?)").expect("parses");
        assert_eq!(contract_order(&second), 2);
        let third =
            cpcf::parse_expr("(-> (-> (-> integer? integer?) integer?) integer?)").expect("parses");
        assert_eq!(contract_order(&third), 3);
        let flat = cpcf::parse_expr("(and/c integer? pair?)").expect("parses");
        assert_eq!(contract_order(&flat), 0);
    }

    #[test]
    fn intro1_row_matches_the_paper_shape() {
        let program = group_programs(crate::corpus::Group::Kobayashi)
            .into_iter()
            .find(|p| p.name == "intro1")
            .expect("intro1 exists");
        let result = run_program(&program, &BenchOptions::default());
        assert_eq!(result.correct_verdict, Verdict::Verified);
        assert_eq!(result.faulty_verdict, Verdict::Counterexample);
        assert!(result.matches_expectation());
    }

    #[test]
    fn unsolved_rows_report_probable_errors() {
        let program = group_programs(crate::corpus::Group::Others)
            .into_iter()
            .find(|p| p.name == "w-square-div")
            .expect("w-square-div exists");
        let result = run_program(&program, &BenchOptions::default());
        assert!(result.expected_unsolved);
        assert_ne!(result.faulty_verdict, Verdict::ParseError);
    }
}
