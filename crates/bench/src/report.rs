//! Rendering harness results in the shape of the paper's Table 1.

use std::fmt::Write as _;

use crate::harness::{ProgramResult, Verdict};

/// Renders results as a text table with the same columns as Table 1:
/// program, lines, order, time to analyse the correct variant, time to
/// refute the incorrect variant. Cells show the verdict marker when the
/// outcome is not the expected one (so "probable"/"budget" stand out the
/// way the paper's `*` rows do).
pub fn render_table(results: &[ProgramResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:>6} {:>6} {:>16} {:>18}",
        "Program", "Lines", "Order", "Correct (ms)", "Incorrect (ms)"
    );
    let mut current_group = None;
    for result in results {
        if current_group != Some(&result.group) {
            let _ = writeln!(out, "--- {}", result.group);
            current_group = Some(&result.group);
        }
        let correct_cell = match result.correct_verdict {
            Verdict::Verified => format!("{}", result.correct_ms),
            other => format!("{} ({})", result.correct_ms, other.marker()),
        };
        let faulty_cell = match result.faulty_verdict {
            Verdict::Counterexample => format!("{}", result.faulty_ms),
            other if result.expected_unsolved => format!("{} ({})*", result.faulty_ms, other.marker()),
            other => format!("{} ({})", result.faulty_ms, other.marker()),
        };
        let _ = writeln!(
            out,
            "{:<16} {:>6} {:>6} {:>16} {:>18}",
            result.name, result.lines, result.order, correct_cell, faulty_cell
        );
    }
    out
}

/// A short summary: how many rows match the paper's expectation.
pub fn summarize(results: &[ProgramResult]) -> String {
    let total = results.len();
    let matching = results.iter().filter(|r| r.matches_expectation()).count();
    let counterexamples = results
        .iter()
        .filter(|r| r.faulty_verdict == Verdict::Counterexample)
        .count();
    let verified = results
        .iter()
        .filter(|r| r.correct_verdict == Verdict::Verified)
        .count();
    format!(
        "{matching}/{total} rows match the paper's expectation \
         ({verified} correct variants verified, {counterexamples} faulty variants refuted \
         with validated concrete counterexamples)"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(name: &str, verdict: Verdict) -> ProgramResult {
        ProgramResult {
            name: name.to_string(),
            group: "G".to_string(),
            lines: 10,
            order: 1,
            correct_verdict: Verdict::Verified,
            correct_ms: 5,
            faulty_verdict: verdict,
            faulty_ms: 7,
            expected_unsolved: false,
        }
    }

    #[test]
    fn table_contains_rows_and_headers() {
        let rows = vec![sample("a", Verdict::Counterexample), sample("b", Verdict::ProbableError)];
        let table = render_table(&rows);
        assert!(table.contains("Program"));
        assert!(table.contains("a"));
        assert!(table.contains("probable"));
    }

    #[test]
    fn summary_counts_expectations() {
        let rows = vec![sample("a", Verdict::Counterexample), sample("b", Verdict::ProbableError)];
        let summary = summarize(&rows);
        assert!(summary.starts_with("1/2"));
    }
}
