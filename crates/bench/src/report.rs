//! Rendering harness results in the shape of the paper's Table 1, plus a
//! machine-readable JSON report carrying the prover-session statistics.

use std::fmt::Write as _;

use serde::{JsonObject, Serialize};

use crate::harness::{ProgramResult, StatsSummary, Verdict};

/// Renders results as a text table with the same columns as Table 1:
/// program, lines, order, time to analyse the correct variant, time to
/// refute the incorrect variant. Cells show the verdict marker when the
/// outcome is not the expected one (so "probable"/"budget" stand out the
/// way the paper's `*` rows do).
pub fn render_table(results: &[ProgramResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:>6} {:>6} {:>16} {:>18}",
        "Program", "Lines", "Order", "Correct (ms)", "Incorrect (ms)"
    );
    let mut current_group = None;
    for result in results {
        if current_group != Some(&result.group) {
            let _ = writeln!(out, "--- {}", result.group);
            current_group = Some(&result.group);
        }
        let correct_cell = match result.correct_verdict {
            Verdict::Verified => format!("{}", result.correct_ms),
            other => format!("{} ({})", result.correct_ms, other.marker()),
        };
        let faulty_cell = match result.faulty_verdict {
            Verdict::Counterexample => format!("{}", result.faulty_ms),
            other if result.expected_unsolved => {
                format!("{} ({})*", result.faulty_ms, other.marker())
            }
            other => format!("{} ({})", result.faulty_ms, other.marker()),
        };
        let _ = writeln!(
            out,
            "{:<16} {:>6} {:>6} {:>16} {:>18}",
            result.name, result.lines, result.order, correct_cell, faulty_cell
        );
    }
    out
}

/// A short summary: how many rows match the paper's expectation.
pub fn summarize(results: &[ProgramResult]) -> String {
    let total = results.len();
    let matching = results.iter().filter(|r| r.matches_expectation()).count();
    let counterexamples = results
        .iter()
        .filter(|r| r.faulty_verdict == Verdict::Counterexample)
        .count();
    let verified = results
        .iter()
        .filter(|r| r.correct_verdict == Verdict::Verified)
        .count();
    format!(
        "{matching}/{total} rows match the paper's expectation \
         ({verified} correct variants verified, {counterexamples} faulty variants refuted \
         with validated concrete counterexamples)"
    )
}

/// Sums the prover-session statistics over all rows.
pub fn total_stats(results: &[ProgramResult]) -> StatsSummary {
    let mut total = StatsSummary::default();
    for result in results {
        total.merge(&result.stats);
    }
    total
}

/// Sums the cross-variant cache hits over all rows.
pub fn total_cross_variant_hits(results: &[ProgramResult]) -> u64 {
    results.iter().map(|r| r.cross_variant_cache_hits).sum()
}

/// Sums the warm-started lemmas over all rows (each row's per-program pool
/// is warm-started independently from the store).
pub fn total_lemmas_warm_started(results: &[ProgramResult]) -> u64 {
    results.iter().map(|r| r.lemmas_warm_started).sum()
}

/// Sums the incrementally skipped exports over all rows.
pub fn total_exports_skipped(results: &[ProgramResult]) -> u64 {
    results.iter().map(|r| r.exports_skipped).sum()
}

/// A one-line rendering of the aggregated solver statistics: how much work
/// the incremental prover session and the shared verdict cache saved.
pub fn summarize_stats(results: &[ProgramResult]) -> String {
    let total = total_stats(results);
    format!(
        "solver stats: {} prover queries, {} cache hits ({} shared, {} cross-variant), \
         {} full + {} delta heap encodings ({} reused), {} retractions \
         ({} frames popped, {} assertions replayed), {} heap snapshots \
         ({} map nodes copied, {} journal bytes shared), {} solver checks \
         ({} conflicts, {} propagations, {} clauses reused, {} atoms interned, \
         {} cone vars pruned, {} clauses learnt, {} deleted, {} luby restarts, \
         {} lemmas published, {} imported), {} dl checks \
         ({} conflicts, {} relaxations, {} dl + {} lia dispatches, \
         {} iteration exhaustions, {} ceiling hits, {} reconstruction failures), \
         store: {} hits, {} misses, {} writes, {} lemmas warm-started, \
         {} exports skipped, in {} ms",
        total.queries,
        total.cache_hits,
        total.shared_cache_hits,
        total_cross_variant_hits(results),
        total.full_encodings,
        total.delta_encodings,
        total.reused_encodings,
        total.retractions,
        total.frames_popped,
        total.assertions_replayed,
        total.snapshots,
        total.nodes_copied,
        total.journal_bytes_shared,
        total.solver_checks,
        total.solver_conflicts,
        total.solver_propagations,
        total.clauses_reused,
        total.atoms_interned,
        total.cone_vars_pruned,
        total.learnt_clauses,
        total.clauses_deleted,
        total.restarts_luby,
        total.lemmas_published,
        total.lemmas_imported,
        total.dl_checks,
        total.dl_conflicts,
        total.dl_propagations,
        total.theory_dispatch_dl,
        total.theory_dispatch_lia,
        total.theory_iterations_exhausted,
        total.propagation_ceiling_hits,
        total.model_reconstruction_failures,
        total.store_hits,
        total.store_misses,
        total.store_writes,
        total_lemmas_warm_started(results),
        total_exports_skipped(results),
        total.solver_ms,
    )
}

/// Per-row and aggregate wall-clock timing (the `--timing` view): analysis
/// milliseconds for each variant and their sum per row, the aggregate
/// analysis time across rows, and the harness's end-to-end monotonic
/// wall-clock (which also covers parsing and, under `--workers`, reflects
/// thread-level overlap).
pub fn timing_table(results: &[ProgramResult], wall_ms: u128) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:>12} {:>12} {:>12}",
        "Program", "Correct(ms)", "Faulty(ms)", "Total(ms)"
    );
    let mut aggregate = 0u128;
    for result in results {
        let total = result.correct_ms + result.faulty_ms;
        aggregate += total;
        let _ = writeln!(
            out,
            "{:<16} {:>12} {:>12} {:>12}",
            result.name, result.correct_ms, result.faulty_ms, total
        );
    }
    let _ = writeln!(
        out,
        "timing: {} rows, {} ms analysis time, {} ms wall-clock",
        results.len(),
        aggregate,
        wall_ms
    );
    out
}

/// The summed per-row analysis time (correct + faulty variants), in
/// milliseconds.
pub fn total_analysis_ms(results: &[ProgramResult]) -> u128 {
    results.iter().map(|r| r.correct_ms + r.faulty_ms).sum()
}

/// Renders the full result set as a JSON document (an object with a `rows`
/// array, aggregate `stats`, and monotonic wall-clock timing), for
/// downstream tooling. `wall_ms` is the harness's end-to-end run time as
/// measured by a monotonic clock ([`std::time::Instant`]).
pub fn to_json(results: &[ProgramResult], wall_ms: u128) -> String {
    JsonObject::new()
        .raw_field("rows", results.to_json())
        .field("stats", &total_stats(results))
        .field(
            "cross_variant_cache_hits",
            &total_cross_variant_hits(results),
        )
        .field("lemmas_warm_started", &total_lemmas_warm_started(results))
        .field("exports_skipped", &total_exports_skipped(results))
        .field("analysis_ms", &total_analysis_ms(results))
        .field("wall_ms", &wall_ms)
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(name: &str, verdict: Verdict) -> ProgramResult {
        ProgramResult {
            name: name.to_string(),
            group: "G".to_string(),
            lines: 10,
            order: 1,
            correct_verdict: Verdict::Verified,
            correct_ms: 5,
            faulty_verdict: verdict,
            faulty_ms: 7,
            expected_unsolved: false,
            stats: StatsSummary {
                queries: 20,
                cache_hits: 4,
                shared_cache_hits: 2,
                store_hits: 1,
                store_misses: 3,
                store_writes: 2,
                full_encodings: 2,
                delta_encodings: 5,
                reused_encodings: 3,
                retractions: 2,
                frames_popped: 3,
                assertions_replayed: 4,
                snapshots: 9,
                nodes_copied: 11,
                journal_bytes_shared: 13,
                solver_checks: 11,
                solver_conflicts: 6,
                solver_propagations: 40,
                clauses_reused: 15,
                atoms_interned: 17,
                cone_vars_pruned: 19,
                learnt_clauses: 21,
                clauses_deleted: 8,
                restarts_luby: 3,
                lemmas_published: 5,
                lemmas_imported: 2,
                dl_checks: 7,
                dl_conflicts: 4,
                dl_propagations: 23,
                theory_dispatch_dl: 7,
                theory_dispatch_lia: 4,
                theory_iterations_exhausted: 1,
                propagation_ceiling_hits: 0,
                model_reconstruction_failures: 0,
                solver_ms: 1,
            },
            cross_variant_cache_hits: 1,
            worker_summaries: vec![StatsSummary {
                queries: 20,
                ..StatsSummary::default()
            }],
            lemmas_warm_started: 2,
            exports_skipped: 1,
        }
    }

    #[test]
    fn table_contains_rows_and_headers() {
        let rows = vec![
            sample("a", Verdict::Counterexample),
            sample("b", Verdict::ProbableError),
        ];
        let table = render_table(&rows);
        assert!(table.contains("Program"));
        assert!(table.contains("a"));
        assert!(table.contains("probable"));
    }

    #[test]
    fn summary_counts_expectations() {
        let rows = vec![
            sample("a", Verdict::Counterexample),
            sample("b", Verdict::ProbableError),
        ];
        let summary = summarize(&rows);
        assert!(summary.starts_with("1/2"));
    }

    #[test]
    fn stats_summary_aggregates_rows() {
        let rows = vec![
            sample("a", Verdict::Counterexample),
            sample("b", Verdict::Verified),
        ];
        let total = total_stats(&rows);
        assert_eq!(total.queries, 40);
        assert_eq!(total.cache_hits, 8);
        let line = summarize_stats(&rows);
        assert!(line.contains("40 prover queries"));
        assert!(line.contains("8 cache hits"));
    }

    #[test]
    fn json_report_carries_rows_and_stats() {
        let rows = vec![sample("a", Verdict::Counterexample)];
        let json = to_json(&rows, 123);
        assert!(json.starts_with('{'));
        assert!(json.contains("\"rows\":[{"));
        assert!(json.contains("\"stats\":{\"queries\":20"));
        assert!(json.contains("\"snapshots\":9"));
        assert!(json.contains("\"nodes_copied\":11"));
        assert!(json.contains("\"journal_bytes_shared\":13"));
        assert!(json.contains("\"dl_checks\":7"));
        assert!(json.contains("\"dl_conflicts\":4"));
        assert!(json.contains("\"theory_dispatch_dl\":7"));
        assert!(json.contains("\"propagation_ceiling_hits\":0"));
        assert!(json.contains("\"model_reconstruction_failures\":0"));
        assert!(json.contains("\"store_hits\":1"));
        assert!(json.contains("\"store_misses\":3"));
        assert!(json.contains("\"store_writes\":2"));
        assert!(json.contains("\"lemmas_warm_started\":2"));
        assert!(json.contains("\"exports_skipped\":1"));
        assert!(json.contains("\"analysis_ms\":12"), "5 + 7 ms of analysis");
        assert!(json.contains("\"wall_ms\":123"));
    }

    #[test]
    fn timing_table_reports_rows_and_aggregates() {
        let rows = vec![
            sample("a", Verdict::Counterexample),
            sample("b", Verdict::Verified),
        ];
        let table = timing_table(&rows, 99);
        assert!(table.contains("Correct(ms)"));
        assert!(table.contains("a"));
        assert!(
            table.contains("2 rows, 24 ms analysis time, 99 ms wall-clock"),
            "{table}"
        );
        assert_eq!(total_analysis_ms(&rows), 24);
    }
}
