//! The §5.2 qualitative comparison: symbolic counterexample generation
//! versus QuickCheck-style random testing on `f n = 1/(100 - n)`.
//!
//! The paper's point is that a random tester with the default small-integer
//! generator (−99..=99) never tries `n = 100`, while symbolic execution
//! derives it directly from the program's own arithmetic.
//!
//! Usage: `cargo run --release -p scv-bench --bin quickcheck_compare`

use std::time::Instant;

use cpcf::{analyze_source_with, AnalyzeOptions};
use randtest::{test_source, RandTestConfig, RandTestResult};

const DIV100: &str = r#"
(module div100
  (provide [f (-> integer? integer?)])
  (define (f n) (/ 1 (- 100 n))))
"#;

fn main() {
    println!("program: f n = 1 / (100 - n)   (bug requires exactly n = 100)\n");

    // Symbolic analysis.
    let start = Instant::now();
    let report = analyze_source_with(DIV100, &AnalyzeOptions::default()).expect("parses");
    let elapsed = start.elapsed();
    match report.first_counterexample() {
        Some(cex) => println!(
            "symbolic execution : found a validated counterexample in {:?}: {:?}",
            elapsed,
            cex.bindings.iter().map(|(_, e)| e).collect::<Vec<_>>()
        ),
        None => println!("symbolic execution : no counterexample ({elapsed:?})"),
    }

    // Random testing with the paper's quoted default range, then widened.
    for (label, range, tests) in [
        ("random (-99..=99)  ", (-99, 99), 10_000u32),
        ("random (-200..=200)", (-200, 200), 10_000u32),
    ] {
        let config = RandTestConfig {
            int_range: range,
            num_tests: tests,
            ..RandTestConfig::default()
        };
        let start = Instant::now();
        let result = test_source(DIV100, config).expect("parses");
        let elapsed = start.elapsed();
        match result {
            RandTestResult::Failed { tests, inputs } => println!(
                "{label}: found a failing input after {tests} tests in {elapsed:?}: {inputs:?}"
            ),
            RandTestResult::Passed { tests } => {
                println!("{label}: no failing input after {tests} tests in {elapsed:?}")
            }
        }
    }
}
