//! Regenerates the paper's Table 1: for every corpus program, analyse the
//! correct variant (expected: verified) and the erroneous variant (expected:
//! a validated concrete counterexample), reporting sizes, contract orders
//! and analysis times.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p scv-bench --bin table1 [--group kobayashi|terauchi|occurrence|games|others]
//! ```

use scv_bench::corpus::{all_programs, group_programs, Group};
use scv_bench::harness::{run_all, BenchOptions};
use scv_bench::report::{render_table, summarize};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let group = args
        .iter()
        .position(|a| a == "--group")
        .and_then(|i| args.get(i + 1))
        .map(|name| match name.as_str() {
            "kobayashi" => Group::Kobayashi,
            "terauchi" => Group::Terauchi,
            "occurrence" => Group::Occurrence,
            "games" => Group::Games,
            "others" => Group::Others,
            other => {
                eprintln!("unknown group `{other}`");
                std::process::exit(2);
            }
        });

    let programs = match group {
        Some(group) => group_programs(group),
        None => all_programs(),
    };
    let options = BenchOptions::default();
    let results = run_all(&programs, &options);

    println!("{}", render_table(&results));
    println!("{}", summarize(&results));
}
