//! Regenerates the paper's Table 1: for every corpus program, analyse the
//! correct variant (expected: verified) and the erroneous variant (expected:
//! a validated concrete counterexample), reporting sizes, contract orders,
//! analysis times and the prover-session statistics.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin table1 \
//!     [--group kobayashi|terauchi|occurrence|games|others] \
//!     [--workers N] [--fresh-per-query] [--rebase] [--differential] \
//!     [--store DIR] [--incremental] [--timing] [--json]
//! ```
//!
//! `--workers N` shards the run over `N` threads (programs across threads,
//! and a module's exports across threads inside the analyzer; `0` means one
//! worker per hardware thread; default: the `ANALYZE_WORKERS` environment
//! variable, or 1); `--fresh-per-query` runs the original solver-per-query
//! engine instead of the incremental prover session; `--rebase` keeps the
//! incremental session but disables pop-to-write-point retraction (every
//! non-monotone overwrite re-encodes the heap, the pre-retraction engine);
//! `--differential` runs both the incremental and fresh engines and checks
//! the verdicts agree; `--store DIR` attaches the persistent analysis store
//! in `DIR` (verdicts and theory lemmas survive the process: the first run
//! populates it, later runs warm-start from it — see the store section of
//! this crate's README); `--incremental` additionally skips exports whose
//! dependency-cone hash already has a stored verdict (requires `--store`);
//! `--timing` appends a per-row and aggregate wall-clock table (monotonic
//! clock); `--json` emits the machine-readable report (per-row and
//! aggregate stats — including retraction, heap snapshot/sharing,
//! per-worker, cross-variant cache-hit and store counters — plus
//! `analysis_ms`/`wall_ms` timing) on stdout.

use std::time::Instant;

use scv_bench::corpus::{all_programs, group_programs, Group};
use scv_bench::harness::{run_all, run_program_differential, BenchOptions};
use scv_bench::report::{render_table, summarize, summarize_stats, timing_table, to_json};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let group = args
        .iter()
        .position(|a| a == "--group")
        .and_then(|i| args.get(i + 1))
        .map(|name| match name.as_str() {
            "kobayashi" => Group::Kobayashi,
            "terauchi" => Group::Terauchi,
            "occurrence" => Group::Occurrence,
            "games" => Group::Games,
            "others" => Group::Others,
            other => {
                eprintln!("unknown group `{other}`");
                std::process::exit(2);
            }
        });
    let json = args.iter().any(|a| a == "--json");
    let timing = args.iter().any(|a| a == "--timing");
    let differential = args.iter().any(|a| a == "--differential");
    let fresh = args.iter().any(|a| a == "--fresh-per-query");
    let rebase = args.iter().any(|a| a == "--rebase");
    let workers = args.iter().position(|a| a == "--workers").map(|i| {
        let Some(value) = args.get(i + 1) else {
            eprintln!("--workers requires a count");
            std::process::exit(2);
        };
        value.parse::<usize>().unwrap_or_else(|_| {
            eprintln!("invalid worker count `{value}`");
            std::process::exit(2);
        })
    });
    let store_dir = args.iter().position(|a| a == "--store").map(|i| {
        let Some(value) = args.get(i + 1) else {
            eprintln!("--store requires a directory");
            std::process::exit(2);
        };
        value.clone()
    });
    let incremental = args.iter().any(|a| a == "--incremental");
    if incremental && store_dir.is_none() {
        eprintln!("--incremental requires --store DIR");
        std::process::exit(2);
    }

    let programs = match group {
        Some(group) => group_programs(group),
        None => all_programs(),
    };
    let mut options = if fresh {
        BenchOptions::default().fresh_per_query()
    } else if rebase {
        BenchOptions::default().rebase()
    } else {
        BenchOptions::default()
    };
    if let Some(workers) = workers {
        options = options.with_workers(workers);
    }
    if let Some(dir) = &store_dir {
        // The engine fingerprint is computed after every engine-shaping flag
        // has been applied, so each ablation leg gets its own store file.
        let fingerprint = cpcf::EngineFingerprint::for_analyze(&options.analyze);
        match cpcf::AnalysisStore::open(dir, fingerprint) {
            Ok(store) => {
                eprintln!(
                    "[table1] store {}: {} verdicts, {} lemmas, {} export cones",
                    store.path().display(),
                    store.verdict_count(),
                    store.lemma_count(),
                    store.cone_count(),
                );
                options.analyze.store = Some(store);
                options.analyze.incremental = incremental;
            }
            Err(error) => {
                eprintln!("cannot open store in `{dir}`: {error}");
                std::process::exit(2);
            }
        }
    }

    if differential {
        let mut mismatches = 0usize;
        let mut incremental_rows = Vec::new();
        let mut fresh_rows = Vec::new();
        for program in &programs {
            let result = run_program_differential(program, &options);
            if !result.verdicts_match() {
                eprintln!(
                    "[differential] MISMATCH on {}: incremental {:?}/{:?} vs fresh {:?}/{:?}",
                    program.name,
                    result.incremental.correct_verdict,
                    result.incremental.faulty_verdict,
                    result.fresh.correct_verdict,
                    result.fresh.faulty_verdict,
                );
                mismatches += 1;
            }
            incremental_rows.push(result.incremental);
            fresh_rows.push(result.fresh);
        }
        println!("{}", render_table(&incremental_rows));
        println!("{}", summarize(&incremental_rows));
        println!("incremental {}", summarize_stats(&incremental_rows));
        println!("fresh       {}", summarize_stats(&fresh_rows));
        if mismatches == 0 {
            println!(
                "differential check: all {} programs agree between the incremental \
                 session and the fresh-per-query baseline",
                programs.len()
            );
        } else {
            println!("differential check: {mismatches} verdict mismatches");
            std::process::exit(1);
        }
        return;
    }

    let start = Instant::now();
    let results = run_all(&programs, &options);
    let wall_ms = start.elapsed().as_millis();
    if json {
        println!("{}", to_json(&results, wall_ms));
        return;
    }
    println!("{}", render_table(&results));
    if timing {
        println!("{}", timing_table(&results, wall_ms));
    }
    println!("{}", summarize(&results));
    println!("{}", summarize_stats(&results));
}
