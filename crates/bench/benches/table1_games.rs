//! Criterion benchmark regenerating the "games" group of Table 1.

use criterion::{criterion_group, criterion_main, Criterion};
use scv_bench::corpus::{group_programs, Group};
use scv_bench::harness::{run_program, BenchOptions};

fn bench_group(c: &mut Criterion) {
    // Criterion re-runs each program many times, so use the quick budget and
    // only the first two programs of the group; the table1 binary covers the
    // full corpus with the full budget.
    let programs: Vec<_> = group_programs(Group::Games).into_iter().take(2).collect();
    let options = BenchOptions::quick();
    let mut group = c.benchmark_group("table1_games");
    group.sample_size(10);
    for program in programs {
        group.bench_function(program.name, |b| {
            b.iter(|| run_program(&program, &options));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_group);
criterion_main!(benches);
