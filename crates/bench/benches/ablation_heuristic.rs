//! Ablation of the search budget that replaces the paper's §5.3
//! "suspect expression" prioritisation in our engine.
//!
//! The paper's tool prioritises branches whose innermost contract monitor
//! guards a concrete module value, cutting a non-terminating search on the
//! braun-tree benchmark down to two seconds. Our big-step engine bounds the
//! search with an explicit fuel/branch budget and an unknown-context depth
//! instead; this benchmark measures how sensitive analysis time is to those
//! knobs on a deep-precondition program, which is the behaviour the
//! heuristic was introduced to control.

use criterion::{criterion_group, criterion_main, Criterion};

use cpcf::{analyze_source_with, AnalyzeOptions, EvalOptions};

const DEEP_PRECONDITION: &str = r#"
(module deep
  (struct node (left value right))
  (provide [tree-value (-> (and/c node? well-formed?) integer?)])
  (define (well-formed? t)
    (and (node? t)
         (integer? (node-value t))
         (or (null? (node-left t)) (node? (node-left t)))
         (or (null? (node-right t)) (node? (node-right t)))))
  (define (tree-value t) (/ 100 (+ 1 (node-value t)))))
"#;

fn bench_budgets(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_heuristic");
    group.sample_size(10);
    for (label, fuel, havoc_depth) in [
        ("small_budget", 5_000u64, 1u32),
        ("default_budget", 30_000, 2),
        ("large_budget", 120_000, 3),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let options = AnalyzeOptions {
                    eval: EvalOptions {
                        fuel,
                        havoc_depth,
                        ..EvalOptions::default()
                    },
                    ..AnalyzeOptions::default()
                };
                analyze_source_with(DEEP_PRECONDITION, &options).expect("parses")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_budgets);
criterion_main!(benches);
