//! Ablation of the paper's completeness device: the `case` maps that
//! memoise applications of opaque functions (§3.2, rules AppOpq1/AppCase).
//!
//! With case maps disabled the semantics degenerates to the original SCPCF
//! behaviour: repeated applications of the same unknown function to the same
//! argument may yield unrelated results, so path conditions are weaker and
//! some counterexamples are lost or take longer to confirm. The benchmark
//! measures the analysis of the paper's §2 worked example and of a CPCF
//! module that calls its functional argument twice, with the device on and
//! off.

use criterion::{criterion_group, criterion_main, Criterion};

use cpcf::{analyze_source_with, AnalyzeOptions, EvalOptions};
use spcf::{parse, AnalysisOptions, Engine, StepOptions};

const TWICE: &str = r#"
(module twice
  (provide [f (-> (-> integer? integer?) integer?)])
  (define (f g) (/ 1 (- (g 0) (g 0)))))
"#;

fn spcf_worked_example() -> spcf::Expr {
    parse::parse(
        "((• (-> (-> (-> int int) int int) int))
          (lambda (g : (-> int int)) (lambda (n : int)
            (div 1 (- 100 (g n))))))",
    )
    .expect("parses")
}

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_casemap");
    group.sample_size(10);

    for (label, use_case_maps) in [("with_case_maps", true), ("without_case_maps", false)] {
        let program = spcf_worked_example();
        group.bench_function(format!("spcf_worked_example/{label}"), |b| {
            b.iter(|| {
                let options = AnalysisOptions {
                    step: StepOptions { use_case_maps },
                    ..AnalysisOptions::default()
                };
                let mut engine = Engine::with_options(options);
                engine.analyze(&program)
            });
        });

        group.bench_function(format!("cpcf_twice/{label}"), |b| {
            b.iter(|| {
                let options = AnalyzeOptions {
                    eval: EvalOptions {
                        use_case_maps,
                        ..EvalOptions::default()
                    },
                    ..AnalyzeOptions::default()
                };
                analyze_source_with(TWICE, &options).expect("parses")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
