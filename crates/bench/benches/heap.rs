//! Microbenchmark: heap snapshot (+ mutate) throughput, old vs new
//! representation.
//!
//! The persistent copy-on-write `cpcf::Heap` promises O(1) snapshots: the
//! cost of `clone` (and of clone-then-mutate, the evaluator's branch-split
//! pattern) should stay flat as the heap and its constraint journal grow,
//! while the old deep-clone representation — preserved bit-for-bit as
//! `randtest::ShadowHeap` — scales linearly with heap size. Run with
//! `cargo bench -p bench --bench heap`; each heap of size N holds N opaque
//! locations with one numeric refinement each (journal length 2N).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cpcf::heap::{CRefinement, CSymExpr, Heap, SVal};
use cpcf::{Loc, Number};
use folic::CmpOp;
use randtest::ShadowHeap;

const SIZES: [usize; 3] = [10, 100, 1000];
/// Snapshots taken per sample, so one sample amortizes timer overhead.
const SNAPSHOTS_PER_SAMPLE: usize = 256;

fn build_persistent(size: usize) -> (Heap, Vec<Loc>) {
    let mut heap = Heap::new();
    let locs: Vec<Loc> = (0..size)
        .map(|i| {
            let loc = heap.alloc_fresh_opaque();
            heap.refine(
                loc,
                CRefinement::NumCmp(CmpOp::Ge, CSymExpr::int(-(i as i64))),
            );
            loc
        })
        .collect();
    // A concrete value so the store is not purely opaque.
    heap.alloc(SVal::Num(Number::Int(7)));
    (heap, locs)
}

fn build_shadow(size: usize) -> (ShadowHeap, Vec<Loc>) {
    let mut heap = ShadowHeap::new();
    let locs: Vec<Loc> = (0..size)
        .map(|i| {
            let loc = heap.alloc_fresh_opaque();
            heap.refine(
                loc,
                CRefinement::NumCmp(CmpOp::Ge, CSymExpr::int(-(i as i64))),
            );
            loc
        })
        .collect();
    heap.alloc(SVal::Num(Number::Int(7)));
    (heap, locs)
}

/// The branch-split pattern: snapshot the heap, then refine one location on
/// the snapshot (leaving the original untouched, as sibling branches do).
fn bench_snapshot_mutate(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("heap_snapshot_mutate");
    group.sample_size(20);
    for size in SIZES {
        let (heap, locs) = build_persistent(size);
        group.bench_function(format!("persistent/{size}"), |bencher| {
            bencher.iter(|| {
                let mut mix = 0u64;
                for i in 0..SNAPSHOTS_PER_SAMPLE {
                    let mut snapshot = heap.clone();
                    snapshot.refine(
                        locs[i % locs.len()],
                        CRefinement::NumCmp(CmpOp::Le, CSymExpr::int(1_000 + i as i64)),
                    );
                    mix ^= snapshot.fingerprint();
                }
                black_box(mix)
            });
        });
        let (shadow, locs) = build_shadow(size);
        group.bench_function(format!("deep_clone/{size}"), |bencher| {
            bencher.iter(|| {
                let mut mix = 0u64;
                for i in 0..SNAPSHOTS_PER_SAMPLE {
                    let mut snapshot = shadow.clone();
                    snapshot.refine(
                        locs[i % locs.len()],
                        CRefinement::NumCmp(CmpOp::Le, CSymExpr::int(1_000 + i as i64)),
                    );
                    mix ^= snapshot.fingerprint();
                }
                black_box(mix)
            });
        });
    }
    group.finish();
}

/// Pure snapshot cost, no mutation: O(1) for the persistent heap, O(n) for
/// the deep clone.
fn bench_snapshot_only(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("heap_snapshot");
    group.sample_size(20);
    for size in SIZES {
        let (heap, _) = build_persistent(size);
        group.bench_function(format!("persistent/{size}"), |bencher| {
            bencher.iter(|| {
                for _ in 0..SNAPSHOTS_PER_SAMPLE {
                    black_box(heap.clone());
                }
            });
        });
        let (shadow, _) = build_shadow(size);
        group.bench_function(format!("deep_clone/{size}"), |bencher| {
            bencher.iter(|| {
                for _ in 0..SNAPSHOTS_PER_SAMPLE {
                    black_box(shadow.clone());
                }
            });
        });
    }
    group.finish();
}

criterion_group!(heap_benches, bench_snapshot_mutate, bench_snapshot_only);
criterion_main!(heap_benches);
