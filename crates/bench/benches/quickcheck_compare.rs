//! Benchmarks the §5.2 comparison: symbolic counterexample generation versus
//! QuickCheck-style random testing on the `1/(100 - n)` program.

use criterion::{criterion_group, criterion_main, Criterion};

use cpcf::{analyze_source_with, AnalyzeOptions};
use randtest::{test_source, RandTestConfig};

const DIV100: &str = r#"
(module div100
  (provide [f (-> integer? integer?)])
  (define (f n) (/ 1 (- 100 n))))
"#;

fn bench_compare(c: &mut Criterion) {
    let mut group = c.benchmark_group("quickcheck_compare");
    group.sample_size(10);
    group.bench_function("symbolic_counterexample", |b| {
        b.iter(|| {
            let report = analyze_source_with(DIV100, &AnalyzeOptions::default()).expect("parses");
            assert!(report.first_counterexample().is_some());
        });
    });
    group.bench_function("random_testing_default_range", |b| {
        b.iter(|| {
            let result = test_source(
                DIV100,
                RandTestConfig {
                    num_tests: 200,
                    ..RandTestConfig::default()
                },
            )
            .expect("parses");
            // With the paper's quoted default range the bug is not found.
            assert!(!result.found_bug());
        });
    });
    group.finish();
}

criterion_group!(benches, bench_compare);
criterion_main!(benches);
