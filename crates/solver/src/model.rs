//! Models: integer assignments produced by a satisfiability check.

use std::collections::BTreeMap;
use std::fmt;

use crate::formula::Formula;
use crate::term::{Term, Var};

/// A (partial) assignment of integer values to first-order variables.
///
/// A model returned by [`crate::solver::Solver::check`] assigns every
/// variable that occurs in the asserted formulas; variables the solver never
/// saw can be given a default with [`Model::value_or_zero`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Model {
    values: BTreeMap<Var, i64>,
}

impl Model {
    /// Creates an empty model.
    pub fn new() -> Self {
        Model::default()
    }

    /// Creates a model from an explicit assignment.
    pub fn from_map(values: BTreeMap<Var, i64>) -> Self {
        Model { values }
    }

    /// The value of `var`, if assigned.
    pub fn value(&self, var: Var) -> Option<i64> {
        self.values.get(&var).copied()
    }

    /// The value of `var`, defaulting to zero when unassigned.
    pub fn value_or_zero(&self, var: Var) -> i64 {
        self.value(var).unwrap_or(0)
    }

    /// Assigns a value to a variable, returning the previous value if any.
    pub fn assign(&mut self, var: Var, value: i64) -> Option<i64> {
        self.values.insert(var, value)
    }

    /// Number of assigned variables.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no variables are assigned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over `(variable, value)` pairs in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (Var, i64)> + '_ {
        self.values.iter().map(|(v, n)| (*v, *n))
    }

    /// Evaluates a term under this model (unassigned variables default to 0).
    pub fn eval_term(&self, term: &Term) -> Option<i64> {
        term.eval(&|v| Some(self.value_or_zero(v)))
    }

    /// Evaluates a formula under this model (unassigned variables default to 0).
    pub fn eval_formula(&self, formula: &Formula) -> Option<bool> {
        formula.eval(&|v| Some(self.value_or_zero(v)))
    }

    /// True if every formula in `formulas` evaluates to true under this model.
    pub fn satisfies_all(&self, formulas: &[Formula]) -> bool {
        formulas
            .iter()
            .all(|f| self.eval_formula(f).unwrap_or(false))
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for (var, value) in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{var} = {value}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(Var, i64)> for Model {
    fn from_iter<I: IntoIterator<Item = (Var, i64)>>(iter: I) -> Self {
        Model {
            values: iter.into_iter().collect(),
        }
    }
}

impl Extend<(Var, i64)> for Model {
    fn extend<I: IntoIterator<Item = (Var, i64)>>(&mut self, iter: I) {
        self.values.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::Formula;

    #[test]
    fn model_evaluates_formulas() {
        let model: Model = vec![(Var::new(0), 100), (Var::new(1), 0)]
            .into_iter()
            .collect();
        let f = Formula::eq(
            Term::var(Var::new(1)),
            Term::sub(Term::int(100), Term::var(Var::new(0))),
        );
        assert_eq!(model.eval_formula(&f), Some(true));
        assert!(model.satisfies_all(&[f]));
    }

    #[test]
    fn unassigned_variables_default_to_zero() {
        let model = Model::new();
        assert_eq!(model.value(Var::new(9)), None);
        assert_eq!(model.value_or_zero(Var::new(9)), 0);
        assert_eq!(model.eval_term(&Term::var(Var::new(9))), Some(0));
    }

    #[test]
    fn display_lists_assignments() {
        let model: Model = vec![(Var::new(2), -3)].into_iter().collect();
        assert_eq!(model.to_string(), "{x2 = -3}");
    }
}
