//! Hash-consing arena for terms and atoms.
//!
//! The persistent solver core ([`crate::core::TheoryCore`]) sees the same
//! atoms over and over: every query against a symbolic heap re-asserts the
//! translation of refinements that have not changed since the last query.
//! With the boxed-tree [`Term`]/[`Atom`] representation, each occurrence
//! pays a full structural hash, a fresh `vars()` walk and (on the SAT side)
//! a fresh Tseitin variable. The arena interns both layers once:
//!
//! * structurally equal **terms** share one [`TermId`], with their free
//!   variables computed a single time;
//! * structurally equal **atoms** share one [`AtomId`], with their variable
//!   sets and negations cached — so the atom → SAT-literal map and the
//!   theory-literal collection of the lazy SMT loop work on `u32` ids
//!   instead of cloning trees.
//!
//! Ids are indices into append-only vectors: interning never invalidates an
//! id, which is what lets the persistent core keep atom ids alive across
//! queries, `push`/`pop` retractions and whole-session rebases.

use std::collections::HashMap;

use crate::formula::{Atom, CmpOp};
use crate::term::{Term, Var};

/// The id of an interned term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId(u32);

impl TermId {
    /// The dense index of the term.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The id of an interned atom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AtomId(u32);

impl AtomId {
    /// The dense index of the atom.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One interned term node: children are ids, so structural equality of
/// arbitrarily deep trees is a fixed-size comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum TermNode {
    Int(i64),
    Var(Var),
    Add(TermId, TermId),
    Sub(TermId, TermId),
    Mul(TermId, TermId),
    Neg(TermId),
}

/// One interned atom: two term ids and a comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct AtomNode {
    lhs: TermId,
    op: CmpOp,
    rhs: TermId,
}

/// The hash-consing arena.
#[derive(Debug, Default)]
pub struct Arena {
    term_ids: HashMap<TermNode, TermId>,
    /// Sorted distinct free variables per term id.
    term_vars: Vec<Vec<Var>>,
    atom_ids: HashMap<AtomNode, AtomId>,
    atom_nodes: Vec<AtomNode>,
    /// The materialized atom per id, for handing `&Atom` to the theory.
    atoms: Vec<Atom>,
    /// Sorted distinct free variables per atom id.
    atom_vars: Vec<Vec<Var>>,
    /// Cached complement per atom id (`negations[a] = ¬a`), filled lazily.
    negations: Vec<Option<AtomId>>,
}

impl Arena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Arena::default()
    }

    /// Number of distinct atoms interned so far.
    pub fn atom_count(&self) -> usize {
        self.atoms.len()
    }

    /// Number of distinct terms interned so far.
    pub fn term_count(&self) -> usize {
        self.term_vars.len()
    }

    fn intern_node(&mut self, node: TermNode) -> TermId {
        if let Some(&id) = self.term_ids.get(&node) {
            return id;
        }
        let vars = match node {
            TermNode::Int(_) => Vec::new(),
            TermNode::Var(v) => vec![v],
            TermNode::Add(a, b) | TermNode::Sub(a, b) | TermNode::Mul(a, b) => {
                let mut vars = self.term_vars[a.index()].clone();
                merge_sorted(&mut vars, &self.term_vars[b.index()]);
                vars
            }
            TermNode::Neg(a) => self.term_vars[a.index()].clone(),
        };
        let id = TermId(self.term_vars.len() as u32);
        self.term_vars.push(vars);
        self.term_ids.insert(node, id);
        id
    }

    /// Interns a term, returning its id. Structurally equal terms (and all
    /// their shared subterms) map to the same id.
    pub fn intern_term(&mut self, term: &Term) -> TermId {
        let node = match term {
            Term::Int(n) => TermNode::Int(*n),
            Term::Var(v) => TermNode::Var(*v),
            Term::Add(a, b) => TermNode::Add(self.intern_term(a), self.intern_term(b)),
            Term::Sub(a, b) => TermNode::Sub(self.intern_term(a), self.intern_term(b)),
            Term::Mul(a, b) => TermNode::Mul(self.intern_term(a), self.intern_term(b)),
            Term::Neg(a) => TermNode::Neg(self.intern_term(a)),
        };
        self.intern_node(node)
    }

    /// Interns an atom, returning its id. The first interning materializes
    /// the atom's variable set; later occurrences are a hash lookup over two
    /// term ids and an operator.
    pub fn intern_atom(&mut self, atom: &Atom) -> AtomId {
        let node = AtomNode {
            lhs: self.intern_term(&atom.lhs),
            op: atom.op,
            rhs: self.intern_term(&atom.rhs),
        };
        if let Some(&id) = self.atom_ids.get(&node) {
            return id;
        }
        let mut vars = self.term_vars[node.lhs.index()].clone();
        merge_sorted(&mut vars, &self.term_vars[node.rhs.index()]);
        let id = AtomId(self.atoms.len() as u32);
        self.atom_ids.insert(node, id);
        self.atom_nodes.push(node);
        self.atoms.push(atom.clone());
        self.atom_vars.push(vars);
        self.negations.push(None);
        id
    }

    /// The interned atom behind an id.
    pub fn atom(&self, id: AtomId) -> &Atom {
        &self.atoms[id.index()]
    }

    /// The sorted distinct free variables of an atom.
    pub fn atom_free_vars(&self, id: AtomId) -> &[Var] {
        &self.atom_vars[id.index()]
    }

    /// The id of the complementary atom (`negate(a ≤ b) = a > b`), interned
    /// on first request and cached both ways.
    pub fn negate(&mut self, id: AtomId) -> AtomId {
        if let Some(neg) = self.negations[id.index()] {
            return neg;
        }
        let node = self.atom_nodes[id.index()];
        let negated_node = AtomNode {
            lhs: node.lhs,
            op: node.op.negate(),
            rhs: node.rhs,
        };
        let neg = match self.atom_ids.get(&negated_node) {
            Some(&existing) => existing,
            None => {
                let atom = self.atoms[id.index()].negate();
                let vars = self.atom_vars[id.index()].clone();
                let neg = AtomId(self.atoms.len() as u32);
                self.atom_ids.insert(negated_node, neg);
                self.atom_nodes.push(negated_node);
                self.atoms.push(atom);
                self.atom_vars.push(vars);
                self.negations.push(Some(id));
                neg
            }
        };
        self.negations[id.index()] = Some(neg);
        self.negations[neg.index()] = Some(id);
        neg
    }
}

/// Merges the sorted distinct `extra` variables into the sorted distinct
/// `vars`, keeping the result sorted and distinct.
fn merge_sorted(vars: &mut Vec<Var>, extra: &[Var]) {
    if extra.is_empty() {
        return;
    }
    if vars.is_empty() {
        vars.extend_from_slice(extra);
        return;
    }
    let mut merged = Vec::with_capacity(vars.len() + extra.len());
    let (mut i, mut j) = (0, 0);
    while i < vars.len() && j < extra.len() {
        match vars[i].cmp(&extra[j]) {
            std::cmp::Ordering::Less => {
                merged.push(vars[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                merged.push(extra[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                merged.push(vars[i]);
                i += 1;
                j += 1;
            }
        }
    }
    merged.extend_from_slice(&vars[i..]);
    merged.extend_from_slice(&extra[j..]);
    *vars = merged;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x(i: u32) -> Term {
        Term::var(Var::new(i))
    }

    #[test]
    fn equal_terms_share_an_id() {
        let mut arena = Arena::new();
        let t1 = Term::add(x(0), Term::int(1));
        let t2 = Term::add(x(0), Term::int(1));
        assert_eq!(arena.intern_term(&t1), arena.intern_term(&t2));
        // x0, 1, x0 + 1: three distinct nodes in total.
        assert_eq!(arena.term_count(), 3);
    }

    #[test]
    fn subterms_are_shared() {
        let mut arena = Arena::new();
        let shared = Term::add(x(0), x(1));
        arena.intern_term(&Term::mul(shared.clone(), Term::int(2)));
        let before = arena.term_count();
        // Re-interning a tree whose every node is known adds nothing.
        arena.intern_term(&Term::sub(shared, x(0)));
        assert_eq!(arena.term_count(), before + 1, "only the Sub node is new");
    }

    #[test]
    fn atoms_intern_once_with_cached_vars() {
        let mut arena = Arena::new();
        let atom = Atom::new(Term::add(x(2), x(0)), CmpOp::Le, Term::int(5));
        let id = arena.intern_atom(&atom);
        assert_eq!(arena.intern_atom(&atom.clone()), id);
        assert_eq!(arena.atom_count(), 1);
        assert_eq!(arena.atom_free_vars(id), &[Var::new(0), Var::new(2)]);
        assert_eq!(arena.atom(id), &atom);
    }

    #[test]
    fn negation_round_trips_and_is_cached() {
        let mut arena = Arena::new();
        let atom = Atom::new(x(0).clone(), CmpOp::Lt, Term::int(3));
        let id = arena.intern_atom(&atom);
        let neg = arena.negate(id);
        assert_ne!(id, neg);
        assert_eq!(arena.atom(neg).op, CmpOp::Ge);
        assert_eq!(arena.negate(neg), id, "negation is an involution");
        // Interning the negated atom from scratch finds the cached id.
        assert_eq!(arena.intern_atom(&atom.negate()), neg);
        assert_eq!(arena.atom_count(), 2);
    }

    #[test]
    fn distinct_atoms_get_distinct_ids() {
        let mut arena = Arena::new();
        let a = arena.intern_atom(&Atom::new(x(0), CmpOp::Eq, Term::int(1)));
        let b = arena.intern_atom(&Atom::new(x(0), CmpOp::Eq, Term::int(2)));
        let c = arena.intern_atom(&Atom::new(x(1), CmpOp::Eq, Term::int(1)));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }
}
