//! Hash-consing arena for terms and atoms.
//!
//! The persistent solver core ([`crate::core::TheoryCore`]) sees the same
//! atoms over and over: every query against a symbolic heap re-asserts the
//! translation of refinements that have not changed since the last query.
//! With the boxed-tree [`Term`]/[`Atom`] representation, each occurrence
//! pays a full structural hash, a fresh `vars()` walk and (on the SAT side)
//! a fresh Tseitin variable. The arena interns both layers once:
//!
//! * structurally equal **terms** share one [`TermId`], with their free
//!   variables computed a single time;
//! * structurally equal **atoms** share one [`AtomId`], with their variable
//!   sets and negations cached — so the atom → SAT-literal map and the
//!   theory-literal collection of the lazy SMT loop work on `u32` ids
//!   instead of cloning trees.
//!
//! ## Process-global atom ids
//!
//! Term ids are arena-local, but **atom ids are process-global**: the first
//! time any arena interns a structurally new atom, the atom is registered in
//! a process-wide table and assigned the next global id, and every later
//! interning of that atom — by this arena or by an arena on another worker
//! thread — returns the same [`AtomId`]. This is what makes theory lemmas
//! (sets of atom ids refuted by the theory, see [`crate::lemmas`])
//! meaningful across workers: a lemma published by one solver core can be
//! imported verbatim by a sibling, because the ids name the same atoms.
//!
//! Each arena still keeps its own per-atom caches (the materialized atom,
//! its sorted variable set, its cached negation), keyed by the global id;
//! the global registry is only consulted on a local miss, so the hot path —
//! re-interning an atom the arena has seen — stays a single local hash
//! lookup over two term ids and an operator, exactly as before. Interned
//! state is append-only on both levels: an id, once returned, is valid for
//! the life of the process.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use crate::formula::{Atom, CmpOp};
use crate::term::{Term, Var};

/// The id of an interned term (arena-local).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId(u32);

impl TermId {
    /// The dense index of the term.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The id of an interned atom. Atom ids are **process-global**: two arenas
/// (on any threads) interning structurally equal atoms get the same id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AtomId(u32);

impl AtomId {
    /// The global index of the atom.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The process-global atom registry: structural atom ↔ global id, both ways
/// (the reverse direction lets an arena *adopt* an atom it has only ever
/// seen as a sibling's id — see [`Arena::adopt`]).
#[derive(Debug, Default)]
struct GlobalRegistry {
    ids: HashMap<Atom, u32>,
    atoms: Vec<Atom>,
}

static GLOBAL_ATOMS: OnceLock<Mutex<GlobalRegistry>> = OnceLock::new();

fn global_registry() -> &'static Mutex<GlobalRegistry> {
    GLOBAL_ATOMS.get_or_init(|| Mutex::new(GlobalRegistry::default()))
}

/// The structural atom registered under `id`, or `None` when no arena in
/// this process has issued the id. This is the reverse direction of
/// interning, used when lemmas leave the process: atom *ids* are
/// process-local (the registry numbers atoms in first-sight order), so a
/// persisted lemma must carry atom *content* and be re-interned on load.
pub fn global_atom(id: AtomId) -> Option<Atom> {
    let registry = global_registry()
        .lock()
        .expect("global atom registry poisoned");
    registry.atoms.get(id.index()).cloned()
}

/// The global id of `atom`, registering it on first sight (by any arena).
fn global_atom_id(atom: &Atom) -> AtomId {
    let mut registry = global_registry()
        .lock()
        .expect("global atom registry poisoned");
    let next = registry.atoms.len() as u32;
    match registry.ids.entry(atom.clone()) {
        std::collections::hash_map::Entry::Occupied(entry) => AtomId(*entry.get()),
        std::collections::hash_map::Entry::Vacant(entry) => {
            entry.insert(next);
            registry.atoms.push(atom.clone());
            AtomId(next)
        }
    }
}

/// One interned term node: children are ids, so structural equality of
/// arbitrarily deep trees is a fixed-size comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum TermNode {
    Int(i64),
    Var(Var),
    Add(TermId, TermId),
    Sub(TermId, TermId),
    Mul(TermId, TermId),
    Neg(TermId),
}

/// One interned atom: two term ids and a comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct AtomNode {
    lhs: TermId,
    op: CmpOp,
    rhs: TermId,
}

/// This arena's cached knowledge about one (globally-identified) atom.
#[derive(Debug)]
struct AtomData {
    node: AtomNode,
    /// The materialized atom, for handing `&Atom` to the theory.
    atom: Atom,
    /// Sorted distinct free variables.
    vars: Vec<Var>,
    /// Cached complement (`¬a`), filled lazily.
    negation: Option<AtomId>,
}

/// The hash-consing arena.
#[derive(Debug, Default)]
pub struct Arena {
    term_ids: HashMap<TermNode, TermId>,
    /// Sorted distinct free variables per term id.
    term_vars: Vec<Vec<Var>>,
    /// Local fast path: structural node → global id, no registry lock.
    atom_ids: HashMap<AtomNode, AtomId>,
    /// Per-atom caches, keyed by the global id.
    atom_data: HashMap<AtomId, AtomData>,
}

impl Arena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Arena::default()
    }

    /// Number of distinct atoms *this arena* has interned so far (other
    /// arenas' registrations in the global table are not counted).
    pub fn atom_count(&self) -> usize {
        self.atom_data.len()
    }

    /// Number of distinct terms interned so far.
    pub fn term_count(&self) -> usize {
        self.term_vars.len()
    }

    /// True when this arena has local knowledge of the atom behind `id`
    /// (its tree, variable set and negation caches). An id minted by a
    /// sibling arena is unknown here until this arena interns the same atom.
    pub fn has_atom(&self, id: AtomId) -> bool {
        self.atom_data.contains_key(&id)
    }

    /// Interns the atom behind a global id this arena has never seen
    /// locally — the entry point for consuming another worker's atom ids
    /// (e.g. an imported theory lemma). Returns `false` only when the id
    /// was never minted by any arena in this process.
    pub fn adopt(&mut self, id: AtomId) -> bool {
        if self.atom_data.contains_key(&id) {
            return true;
        }
        let atom = {
            let registry = global_registry()
                .lock()
                .expect("global atom registry poisoned");
            registry.atoms.get(id.index()).cloned()
        };
        match atom {
            Some(atom) => {
                let adopted = self.intern_atom(&atom);
                debug_assert_eq!(adopted, id, "global ids are stable");
                true
            }
            None => false,
        }
    }

    fn intern_node(&mut self, node: TermNode) -> TermId {
        if let Some(&id) = self.term_ids.get(&node) {
            return id;
        }
        let vars = match node {
            TermNode::Int(_) => Vec::new(),
            TermNode::Var(v) => vec![v],
            TermNode::Add(a, b) | TermNode::Sub(a, b) | TermNode::Mul(a, b) => {
                let mut vars = self.term_vars[a.index()].clone();
                merge_sorted(&mut vars, &self.term_vars[b.index()]);
                vars
            }
            TermNode::Neg(a) => self.term_vars[a.index()].clone(),
        };
        let id = TermId(self.term_vars.len() as u32);
        self.term_vars.push(vars);
        self.term_ids.insert(node, id);
        id
    }

    /// Interns a term, returning its id. Structurally equal terms (and all
    /// their shared subterms) map to the same id.
    pub fn intern_term(&mut self, term: &Term) -> TermId {
        let node = match term {
            Term::Int(n) => TermNode::Int(*n),
            Term::Var(v) => TermNode::Var(*v),
            Term::Add(a, b) => TermNode::Add(self.intern_term(a), self.intern_term(b)),
            Term::Sub(a, b) => TermNode::Sub(self.intern_term(a), self.intern_term(b)),
            Term::Mul(a, b) => TermNode::Mul(self.intern_term(a), self.intern_term(b)),
            Term::Neg(a) => TermNode::Neg(self.intern_term(a)),
        };
        self.intern_node(node)
    }

    /// Interns an atom, returning its (process-global) id. The first local
    /// interning materializes the atom's variable set and consults the
    /// global registry; later occurrences are a hash lookup over two term
    /// ids and an operator.
    pub fn intern_atom(&mut self, atom: &Atom) -> AtomId {
        let node = AtomNode {
            lhs: self.intern_term(&atom.lhs),
            op: atom.op,
            rhs: self.intern_term(&atom.rhs),
        };
        if let Some(&id) = self.atom_ids.get(&node) {
            return id;
        }
        let mut vars = self.term_vars[node.lhs.index()].clone();
        merge_sorted(&mut vars, &self.term_vars[node.rhs.index()]);
        let id = global_atom_id(atom);
        self.atom_ids.insert(node, id);
        self.atom_data.insert(
            id,
            AtomData {
                node,
                atom: atom.clone(),
                vars,
                negation: None,
            },
        );
        id
    }

    /// The interned atom behind an id.
    ///
    /// # Panics
    ///
    /// Panics when this arena has never interned the atom (see
    /// [`Arena::has_atom`]).
    pub fn atom(&self, id: AtomId) -> &Atom {
        &self.data(id).atom
    }

    /// The sorted distinct free variables of an atom.
    pub fn atom_free_vars(&self, id: AtomId) -> &[Var] {
        &self.data(id).vars
    }

    fn data(&self, id: AtomId) -> &AtomData {
        self.atom_data
            .get(&id)
            .expect("atom id not interned by this arena")
    }

    /// The id of the complementary atom (`negate(a ≤ b) = a > b`), interned
    /// on first request and cached both ways.
    pub fn negate(&mut self, id: AtomId) -> AtomId {
        let data = self.data(id);
        if let Some(neg) = data.negation {
            return neg;
        }
        let node = data.node;
        let negated_node = AtomNode {
            lhs: node.lhs,
            op: node.op.negate(),
            rhs: node.rhs,
        };
        let neg = match self.atom_ids.get(&negated_node) {
            Some(&existing) => existing,
            None => {
                let atom = data.atom.negate();
                let vars = data.vars.clone();
                let neg = global_atom_id(&atom);
                self.atom_ids.insert(negated_node, neg);
                self.atom_data.insert(
                    neg,
                    AtomData {
                        node: negated_node,
                        atom,
                        vars,
                        negation: Some(id),
                    },
                );
                neg
            }
        };
        self.atom_data.get_mut(&id).expect("present").negation = Some(neg);
        self.atom_data.get_mut(&neg).expect("present").negation = Some(id);
        neg
    }
}

/// Merges the sorted distinct `extra` variables into the sorted distinct
/// `vars`, keeping the result sorted and distinct.
fn merge_sorted(vars: &mut Vec<Var>, extra: &[Var]) {
    if extra.is_empty() {
        return;
    }
    if vars.is_empty() {
        vars.extend_from_slice(extra);
        return;
    }
    let mut merged = Vec::with_capacity(vars.len() + extra.len());
    let (mut i, mut j) = (0, 0);
    while i < vars.len() && j < extra.len() {
        match vars[i].cmp(&extra[j]) {
            std::cmp::Ordering::Less => {
                merged.push(vars[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                merged.push(extra[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                merged.push(vars[i]);
                i += 1;
                j += 1;
            }
        }
    }
    merged.extend_from_slice(&vars[i..]);
    merged.extend_from_slice(&extra[j..]);
    *vars = merged;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x(i: u32) -> Term {
        Term::var(Var::new(i))
    }

    #[test]
    fn equal_terms_share_an_id() {
        let mut arena = Arena::new();
        let t1 = Term::add(x(0), Term::int(1));
        let t2 = Term::add(x(0), Term::int(1));
        assert_eq!(arena.intern_term(&t1), arena.intern_term(&t2));
        // x0, 1, x0 + 1: three distinct nodes in total.
        assert_eq!(arena.term_count(), 3);
    }

    #[test]
    fn subterms_are_shared() {
        let mut arena = Arena::new();
        let shared = Term::add(x(0), x(1));
        arena.intern_term(&Term::mul(shared.clone(), Term::int(2)));
        let before = arena.term_count();
        // Re-interning a tree whose every node is known adds nothing.
        arena.intern_term(&Term::sub(shared, x(0)));
        assert_eq!(arena.term_count(), before + 1, "only the Sub node is new");
    }

    #[test]
    fn atoms_intern_once_with_cached_vars() {
        let mut arena = Arena::new();
        let atom = Atom::new(Term::add(x(2), x(0)), CmpOp::Le, Term::int(5));
        let id = arena.intern_atom(&atom);
        assert_eq!(arena.intern_atom(&atom.clone()), id);
        assert_eq!(arena.atom_count(), 1);
        assert_eq!(arena.atom_free_vars(id), &[Var::new(0), Var::new(2)]);
        assert_eq!(arena.atom(id), &atom);
        assert!(arena.has_atom(id));
    }

    #[test]
    fn negation_round_trips_and_is_cached() {
        let mut arena = Arena::new();
        let atom = Atom::new(x(0).clone(), CmpOp::Lt, Term::int(3));
        let id = arena.intern_atom(&atom);
        let neg = arena.negate(id);
        assert_ne!(id, neg);
        assert_eq!(arena.atom(neg).op, CmpOp::Ge);
        assert_eq!(arena.negate(neg), id, "negation is an involution");
        // Interning the negated atom from scratch finds the cached id.
        assert_eq!(arena.intern_atom(&atom.negate()), neg);
        assert_eq!(arena.atom_count(), 2);
    }

    #[test]
    fn distinct_atoms_get_distinct_ids() {
        let mut arena = Arena::new();
        let a = arena.intern_atom(&Atom::new(x(0), CmpOp::Eq, Term::int(1)));
        let b = arena.intern_atom(&Atom::new(x(0), CmpOp::Eq, Term::int(2)));
        let c = arena.intern_atom(&Atom::new(x(1), CmpOp::Eq, Term::int(1)));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn atom_ids_are_stable_across_arenas_and_threads() {
        let atom = Atom::new(Term::add(x(40), x(41)), CmpOp::Ge, Term::int(-17));
        let mut here = Arena::new();
        let local = here.intern_atom(&atom);
        let sibling = {
            let atom = atom.clone();
            std::thread::spawn(move || {
                let mut there = Arena::new();
                there.intern_atom(&atom)
            })
            .join()
            .expect("sibling arena thread")
        };
        assert_eq!(local, sibling, "global interning gives stable ids");
        // A fresh arena has no local knowledge of a globally-known atom
        // until it interns the atom itself.
        let fresh = Arena::new();
        assert!(!fresh.has_atom(local));
    }

    #[test]
    fn adopt_materializes_a_siblings_atom() {
        let atom = Atom::new(Term::mul(x(50), x(51)), CmpOp::Lt, Term::int(99));
        let id = {
            // The minting arena is dropped; only the global id survives.
            let mut minter = Arena::new();
            minter.intern_atom(&atom)
        };
        let mut arena = Arena::new();
        assert!(!arena.has_atom(id));
        assert!(arena.adopt(id), "the registry remembers the atom");
        assert!(arena.has_atom(id));
        assert_eq!(arena.atom(id), &atom);
        assert_eq!(
            arena.atom_free_vars(id),
            &[Var::new(50), Var::new(51)],
            "adoption computes the variable set like a local intern"
        );
        assert!(!arena.adopt(AtomId(u32::MAX)), "an unminted id is refused");
    }
}
