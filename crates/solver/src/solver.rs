//! The public solver façade: an assertion stack with `push`/`pop`, variable
//! allocation, satisfiability checks and validity queries.

use crate::formula::Formula;
use crate::term::Var;
use crate::theory::{check_conjunction, SmtResult, TheoryConfig};

pub use crate::theory::SmtResult as CheckResult;

/// Outcome of a validity query ([`Solver::check_valid`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Validity {
    /// The formula holds under every assignment consistent with the
    /// assertions.
    Valid,
    /// There is an assignment consistent with the assertions that falsifies
    /// the formula.
    Invalid,
    /// The solver could not decide.
    Unknown,
}

/// Configuration for [`Solver`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SolverConfig {
    /// Theory-level configuration (iteration limits, value bounds).
    pub theory: TheoryConfig,
}

/// An incremental first-order solver over integer base values.
///
/// This plays the role Z3 plays in the paper: the symbolic executor asserts
/// the translation of the heap, then asks validity questions (for the proof
/// relation) or requests a model (to build a counterexample).
///
/// ```
/// use folic::{Formula, Solver, Term, Var};
///
/// let mut solver = Solver::new();
/// let l4 = Term::var(Var::new(4));
/// let l5 = Term::var(Var::new(5));
/// solver.assert(Formula::eq(l5.clone(), Term::sub(Term::int(100), l4)));
/// solver.assert(Formula::eq(Term::int(0), l5));
/// let model = solver.check().model().cloned().expect("satisfiable");
/// assert_eq!(model.value(Var::new(4)), Some(100));
/// ```
#[derive(Debug, Default)]
pub struct Solver {
    assertions: Vec<Formula>,
    scopes: Vec<usize>,
    next_var: u32,
    config: SolverConfig,
}

impl Solver {
    /// Creates a solver with the default configuration.
    pub fn new() -> Self {
        Solver::default()
    }

    /// Creates a solver with an explicit configuration.
    pub fn with_config(config: SolverConfig) -> Self {
        Solver {
            config,
            ..Solver::default()
        }
    }

    /// Allocates a fresh first-order variable (one never returned before by
    /// this solver).
    pub fn fresh_var(&mut self) -> Var {
        let var = Var::new(self.next_var);
        self.next_var += 1;
        var
    }

    /// Informs the solver that variables up to and including `var` are in
    /// use, so [`Solver::fresh_var`] never collides with them.
    pub fn reserve_through(&mut self, var: Var) {
        self.next_var = self.next_var.max(var.index() + 1);
    }

    /// Adds an assertion to the current scope.
    pub fn assert(&mut self, formula: Formula) {
        self.assertions.push(formula);
    }

    /// The asserted formulas, oldest first.
    pub fn assertions(&self) -> &[Formula] {
        &self.assertions
    }

    /// Pushes a new assertion scope.
    pub fn push(&mut self) {
        self.scopes.push(self.assertions.len());
    }

    /// Pops the most recent assertion scope, discarding its assertions.
    ///
    /// # Panics
    ///
    /// Panics if there is no scope to pop.
    pub fn pop(&mut self) {
        let mark = self.scopes.pop().expect("pop without matching push");
        self.assertions.truncate(mark);
    }

    /// Checks satisfiability of the current assertions.
    pub fn check(&self) -> SmtResult {
        check_conjunction(&self.assertions, &self.config.theory)
    }

    /// Checks satisfiability of the current assertions together with
    /// `extra` formulas (without changing the assertion stack).
    pub fn check_with(&self, extra: &[Formula]) -> SmtResult {
        let mut combined = self.assertions.clone();
        combined.extend_from_slice(extra);
        check_conjunction(&combined, &self.config.theory)
    }

    /// Determines whether `formula` is valid under the current assertions:
    /// valid iff `assertions ∧ ¬formula` is unsatisfiable.
    pub fn check_valid(&self, formula: &Formula) -> Validity {
        match self.check_with(&[Formula::not(formula.clone())]) {
            SmtResult::Unsat => Validity::Valid,
            SmtResult::Sat(_) => Validity::Invalid,
            SmtResult::Unknown => Validity::Unknown,
        }
    }

    /// Convenience three-valued query used by the paper's proof relation
    /// (Fig. 5): does the heap prove, refute, or leave ambiguous the goal?
    pub fn prove(&self, goal: &Formula) -> Proof {
        match self.check_valid(goal) {
            Validity::Valid => Proof::Proved,
            Validity::Unknown => Proof::Ambiguous,
            Validity::Invalid => match self.check_with(std::slice::from_ref(goal)) {
                SmtResult::Unsat => Proof::Refuted,
                SmtResult::Sat(_) => Proof::Ambiguous,
                SmtResult::Unknown => Proof::Ambiguous,
            },
        }
    }
}

/// The three-valued answer of the proof relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Proof {
    /// The assertions entail the goal (`Σ ⊢ L : P ✓`).
    Proved,
    /// The assertions entail the negation of the goal (`Σ ⊢ L : P ✗`).
    Refuted,
    /// Neither could be established (`Σ ⊢ L : P ?`).
    Ambiguous,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    fn x(i: u32) -> Term {
        Term::var(Var::new(i))
    }

    #[test]
    fn fresh_vars_are_distinct() {
        let mut solver = Solver::new();
        let a = solver.fresh_var();
        let b = solver.fresh_var();
        assert_ne!(a, b);
        solver.reserve_through(Var::new(10));
        let c = solver.fresh_var();
        assert!(c.index() > 10);
    }

    #[test]
    fn push_pop_restores_assertions() {
        let mut solver = Solver::new();
        solver.assert(Formula::ge(x(0), Term::int(0)));
        solver.push();
        solver.assert(Formula::eq(x(0), Term::int(5)));
        assert_eq!(solver.assertions().len(), 2);
        solver.pop();
        assert_eq!(solver.assertions().len(), 1);
        assert!(solver.check().is_sat());
    }

    #[test]
    fn validity_of_entailed_formula() {
        let mut solver = Solver::new();
        solver.assert(Formula::eq(x(0), Term::int(3)));
        assert_eq!(
            solver.check_valid(&Formula::gt(x(0), Term::int(0))),
            Validity::Valid
        );
        assert_eq!(
            solver.check_valid(&Formula::gt(x(0), Term::int(5))),
            Validity::Invalid
        );
    }

    #[test]
    fn proof_relation_three_values() {
        let mut solver = Solver::new();
        solver.assert(Formula::ge(x(0), Term::int(1)));
        // x ≥ 1 proves x ≠ 0 ...
        assert_eq!(solver.prove(&Formula::ne(x(0), Term::int(0))), Proof::Proved);
        // ... refutes x = 0 ...
        assert_eq!(solver.prove(&Formula::eq(x(0), Term::int(0))), Proof::Refuted);
        // ... and says nothing about x = 5.
        assert_eq!(solver.prove(&Formula::eq(x(0), Term::int(5))), Proof::Ambiguous);
    }

    #[test]
    fn unconstrained_solver_is_sat() {
        let solver = Solver::new();
        assert!(solver.check().is_sat());
    }

    #[test]
    fn check_with_does_not_mutate() {
        let mut solver = Solver::new();
        solver.assert(Formula::ge(x(0), Term::int(0)));
        let result = solver.check_with(&[Formula::lt(x(0), Term::int(0))]);
        assert!(result.is_unsat());
        // The contradictory extra assertion was not retained.
        assert!(solver.check().is_sat());
        assert_eq!(solver.assertions().len(), 1);
    }
}
