//! The public solver façade: an assertion stack with `push`/`pop`, variable
//! allocation, satisfiability checks and validity queries.
//!
//! The assertion stack is the *primary* analysis-facing API: a symbolic
//! executor keeps one long-lived solver, asserts the translation of its path
//! condition once, and brackets branch-local assumptions with
//! [`Solver::push`]/[`Solver::pop`] (or passes them per query via
//! [`Solver::check_assuming`]) instead of rebuilding a solver per query.
//! Every satisfiability check is counted in [`SolverStats`], so callers can
//! measure how much re-encoding the incremental interface saves.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::time::{Duration, Instant};

use crate::core::TheoryCore;
use crate::formula::Formula;
use crate::term::Var;
use crate::theory::{check_conjunction_counted, SmtResult, TheoryConfig};

pub use crate::theory::SmtResult as CheckResult;

/// Which satisfiability engine a [`Solver`] runs its checks on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreMode {
    /// The incremental engine: one long-lived [`TheoryCore`] per solver,
    /// with hash-consed atoms, a persistent CDCL clause database whose
    /// frames retract by activation literals, retained theory lemmas, and
    /// per-query cone slicing. The default.
    Persistent,
    /// The original engine: every check rebuilds the SAT instance and
    /// re-runs Tseitin encoding from nothing. Kept as an ablation for
    /// differential testing and for measuring what persistence buys.
    Scratch,
}

/// The default solver core, taken from the `CPCF_SOLVER_CORE` environment
/// variable: `persistent` (the default when unset) or `scratch` (the
/// re-encode-per-check engine). An unrecognised value falls back to
/// `persistent` with a once-per-process warning, mirroring
/// `CPCF_PROVE_MODE`'s behaviour so a typo in a CI matrix cannot silently
/// test the wrong engine.
pub fn default_core_mode() -> CoreMode {
    match std::env::var("CPCF_SOLVER_CORE").ok().as_deref() {
        Some("scratch") => CoreMode::Scratch,
        Some("persistent") | None => CoreMode::Persistent,
        Some(other) => {
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| {
                eprintln!(
                    "warning: unrecognised CPCF_SOLVER_CORE `{other}` \
                     (expected persistent|scratch); using persistent"
                );
            });
            CoreMode::Persistent
        }
    }
}

/// Cumulative statistics for one [`Solver`] instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Satisfiability checks issued (a validity query issues one or two).
    pub checks: u64,
    /// Checks that came back satisfiable.
    pub sat: u64,
    /// Checks that came back unsatisfiable.
    pub unsat: u64,
    /// Checks the theory could not decide.
    pub unknown: u64,
    /// Formulas asserted over the solver's lifetime (pops do not subtract).
    pub assertions: u64,
    /// Conflicts encountered by the CDCL core across all checks (zero for
    /// checks decided by the atom-conjunction fast path, which bypasses the
    /// propositional search entirely).
    pub conflicts: u64,
    /// Unit propagations performed by the CDCL core across all checks.
    pub propagations: u64,
    /// Clauses already present in the persistent core's database at the
    /// start of a CDCL check — work the scratch engine would redo (zero
    /// under [`CoreMode::Scratch`] and on the atom-conjunction fast path).
    pub clauses_reused: u64,
    /// Distinct atoms interned into the persistent core's hash-consing
    /// arena (zero under [`CoreMode::Scratch`]).
    pub atoms_interned: u64,
    /// Variables excluded from queries' searches by cone slicing (zero
    /// under [`CoreMode::Scratch`]).
    pub cone_vars_pruned: u64,
    /// Learnt clauses produced by first-UIP conflict analysis across all
    /// CDCL checks.
    pub learnt_clauses: u64,
    /// Learnt clauses discarded by clause-database reduction.
    pub clauses_deleted: u64,
    /// Luby-sequence restarts performed by the CDCL search.
    pub restarts_luby: u64,
    /// Theory lemmas this solver published into a shared lemma pool (zero
    /// without a pool; see [`Solver::set_lemma_pool`]).
    pub lemmas_published: u64,
    /// Sibling theory lemmas imported from a shared lemma pool (zero
    /// without a pool).
    pub lemmas_imported: u64,
    /// Atom conjunctions the theory dispatcher routed to the
    /// difference-logic module (zero under `CPCF_THEORY_DL=off`).
    pub dl_checks: u64,
    /// Difference-logic refutations: negative constraint cycles whose
    /// explanations became blocking clauses and shared lemmas.
    pub dl_conflicts: u64,
    /// Potential-repair edge relaxations performed by the difference-logic
    /// module.
    pub dl_propagations: u64,
    /// Dispatcher routings to the difference-logic module.
    pub theory_dispatch_dl: u64,
    /// Dispatcher routings to the general LIA module (conjunctions outside
    /// the difference fragment, or everything when the DL gate is off).
    pub theory_dispatch_lia: u64,
    /// Lazy-SMT loops that exhausted `TheoryConfig::max_iterations` and
    /// degraded their verdict to `Unknown`.
    pub theory_iterations_exhausted: u64,
    /// Interval-propagation fixpoint loops cut off by the LIA engine's
    /// round ceiling — the difference-cycle divergence symptom. Zero for
    /// difference cycles when the DL module handles the fragment;
    /// out-of-fragment divergences (e.g. division intervals) can still
    /// ride the ceiling under either gate setting.
    pub propagation_ceiling_hits: u64,
    /// LIA models that failed re-verification after eliminated variables
    /// were reconstructed (each conservatively degraded to `Unknown`).
    pub model_reconstruction_failures: u64,
    /// Total wall-clock time spent inside satisfiability checks.
    pub time: Duration,
}

impl SolverStats {
    /// Accumulates another stats record into this one.
    pub fn merge(&mut self, other: &SolverStats) {
        self.checks += other.checks;
        self.sat += other.sat;
        self.unsat += other.unsat;
        self.unknown += other.unknown;
        self.assertions += other.assertions;
        self.conflicts += other.conflicts;
        self.propagations += other.propagations;
        self.clauses_reused += other.clauses_reused;
        self.atoms_interned += other.atoms_interned;
        self.cone_vars_pruned += other.cone_vars_pruned;
        self.learnt_clauses += other.learnt_clauses;
        self.clauses_deleted += other.clauses_deleted;
        self.restarts_luby += other.restarts_luby;
        self.lemmas_published += other.lemmas_published;
        self.lemmas_imported += other.lemmas_imported;
        self.dl_checks += other.dl_checks;
        self.dl_conflicts += other.dl_conflicts;
        self.dl_propagations += other.dl_propagations;
        self.theory_dispatch_dl += other.theory_dispatch_dl;
        self.theory_dispatch_lia += other.theory_dispatch_lia;
        self.theory_iterations_exhausted += other.theory_iterations_exhausted;
        self.propagation_ceiling_hits += other.propagation_ceiling_hits;
        self.model_reconstruction_failures += other.model_reconstruction_failures;
        self.time += other.time;
    }
}

/// The error returned by [`Solver::pop_to`] when the requested depth is
/// deeper than the scopes actually open — the checked counterpart of the
/// panic in [`Solver::pop`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnbalancedPop {
    /// The scope depth the caller asked to return to.
    pub requested: usize,
    /// The scope depth that was actually open.
    pub depth: usize,
}

impl fmt::Display for UnbalancedPop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot pop to scope depth {} with only {} scopes open",
            self.requested, self.depth
        )
    }
}

impl std::error::Error for UnbalancedPop {}

/// Outcome of a validity query ([`Solver::check_valid`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Validity {
    /// The formula holds under every assignment consistent with the
    /// assertions.
    Valid,
    /// There is an assignment consistent with the assertions that falsifies
    /// the formula.
    Invalid,
    /// The solver could not decide.
    Unknown,
}

/// Configuration for [`Solver`].
#[derive(Debug, Clone, Copy)]
pub struct SolverConfig {
    /// Theory-level configuration (iteration limits, value bounds).
    pub theory: TheoryConfig,
    /// Which engine runs the satisfiability checks (default: the value of
    /// the `CPCF_SOLVER_CORE` environment variable, or
    /// [`CoreMode::Persistent`] when unset).
    pub core: CoreMode,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            theory: TheoryConfig::default(),
            core: default_core_mode(),
        }
    }
}

/// An incremental first-order solver over integer base values.
///
/// This plays the role Z3 plays in the paper: the symbolic executor asserts
/// the translation of the heap, then asks validity questions (for the proof
/// relation) or requests a model (to build a counterexample).
///
/// ```
/// use folic::{Formula, Solver, Term, Var};
///
/// let mut solver = Solver::new();
/// let l4 = Term::var(Var::new(4));
/// let l5 = Term::var(Var::new(5));
/// solver.assert(Formula::eq(l5.clone(), Term::sub(Term::int(100), l4)));
/// solver.assert(Formula::eq(Term::int(0), l5));
/// let model = solver.check().model().cloned().expect("satisfiable");
/// assert_eq!(model.value(Var::new(4)), Some(100));
/// ```
#[derive(Debug)]
pub struct Solver {
    assertions: Vec<Formula>,
    scopes: Vec<usize>,
    next_var: u32,
    config: SolverConfig,
    stats: Cell<SolverStats>,
    /// The persistent core (interior-mutable because checks take `&self`,
    /// like the stats cell). Unused under [`CoreMode::Scratch`].
    core: RefCell<TheoryCore>,
}

impl Default for Solver {
    fn default() -> Self {
        Solver::with_config(SolverConfig::default())
    }
}

impl Solver {
    /// Creates a solver with the default configuration.
    pub fn new() -> Self {
        Solver::default()
    }

    /// Creates a solver with an explicit configuration.
    pub fn with_config(config: SolverConfig) -> Self {
        Solver {
            assertions: Vec::new(),
            scopes: Vec::new(),
            next_var: 0,
            config,
            stats: Cell::new(SolverStats::default()),
            core: RefCell::new(TheoryCore::new(config.theory)),
        }
    }

    /// Allocates a fresh first-order variable (one never returned before by
    /// this solver).
    pub fn fresh_var(&mut self) -> Var {
        let var = Var::new(self.next_var);
        self.next_var += 1;
        var
    }

    /// Informs the solver that variables up to and including `var` are in
    /// use, so [`Solver::fresh_var`] never collides with them.
    pub fn reserve_through(&mut self, var: Var) {
        self.next_var = self.next_var.max(var.index() + 1);
    }

    fn persistent(&self) -> bool {
        self.config.core == CoreMode::Persistent
    }

    /// Adds an assertion to the current scope.
    pub fn assert(&mut self, formula: Formula) {
        let mut stats = self.stats.get();
        stats.assertions += 1;
        self.stats.set(stats);
        if self.persistent() {
            self.core.get_mut().assert(&formula);
        }
        self.assertions.push(formula);
    }

    /// The asserted formulas, oldest first.
    pub fn assertions(&self) -> &[Formula] {
        &self.assertions
    }

    /// Pushes a new assertion scope.
    pub fn push(&mut self) {
        self.scopes.push(self.assertions.len());
    }

    /// Pops the most recent assertion scope, discarding its assertions.
    ///
    /// # Panics
    ///
    /// Panics if there is no scope to pop.
    pub fn pop(&mut self) {
        let mark = self.scopes.pop().expect("pop without matching push");
        self.assertions.truncate(mark);
        if self.persistent() {
            self.core.get_mut().truncate(mark);
        }
    }

    /// Pops scopes until exactly `depth` remain open, discarding the
    /// assertions of every popped scope. `pop_to(scope_depth())` is a no-op.
    ///
    /// This is the checked retraction entry point used by incremental
    /// consumers that track their own frame ledger: asking for a depth that
    /// is not currently open is reported as an [`UnbalancedPop`] instead of
    /// the panic [`Solver::pop`] raises on an empty scope stack.
    ///
    /// # Errors
    ///
    /// Returns [`UnbalancedPop`] (leaving the solver untouched) when `depth`
    /// exceeds the current [`Solver::scope_depth`].
    pub fn pop_to(&mut self, depth: usize) -> Result<(), UnbalancedPop> {
        if depth > self.scopes.len() {
            return Err(UnbalancedPop {
                requested: depth,
                depth: self.scopes.len(),
            });
        }
        if let Some(&mark) = self.scopes.get(depth) {
            self.scopes.truncate(depth);
            self.assertions.truncate(mark);
            if self.persistent() {
                self.core.get_mut().truncate(mark);
            }
        }
        Ok(())
    }

    /// Retracts every assertion and scope while keeping everything the
    /// persistent core has learned: interned atoms, Tseitin encodings and
    /// theory lemmas survive, so re-asserting formulas the solver has seen
    /// before costs a hash lookup instead of a re-encode. Under
    /// [`CoreMode::Scratch`] this is equivalent to building a fresh solver
    /// (statistics are kept either way).
    pub fn clear_assertions(&mut self) {
        self.assertions.clear();
        self.scopes.clear();
        if self.persistent() {
            self.core.get_mut().clear();
        }
    }

    /// How many assertion scopes are currently open.
    pub fn scope_depth(&self) -> usize {
        self.scopes.len()
    }

    /// The statistics accumulated so far by this solver.
    pub fn stats(&self) -> SolverStats {
        self.stats.get()
    }

    /// Resets the statistics counters (the assertion stack is untouched).
    pub fn reset_stats(&self) {
        self.stats.set(SolverStats::default());
        self.core.borrow_mut().reset_stats();
    }

    /// Connects this solver to a cross-worker theory-lemma pool (see
    /// [`crate::lemmas::SharedLemmaPool`]): lemmas derived here are
    /// published, and sibling lemmas are imported at check boundaries. Only
    /// meaningful under [`CoreMode::Persistent`]; the scratch engine
    /// rebuilds its state per check and keeps no clause database to import
    /// into, so the pool is ignored there.
    pub fn set_lemma_pool(&mut self, pool: crate::lemmas::SharedLemmaPool) {
        if self.persistent() {
            self.core.get_mut().set_lemma_pool(pool);
        }
    }

    /// Runs one counted satisfiability check of the current assertions
    /// together with `assumptions`.
    fn run_check(&self, assumptions: &[Formula]) -> SmtResult {
        let start = Instant::now();
        let mut stats = self.stats.get();
        // Theory-layer events (dispatch decisions, DL work, ceiling hits)
        // are counted in thread-local probes by code with no stats handle;
        // snapshot around the check to attribute this check's delta here.
        let probes_before = crate::probes::totals();
        let result = match self.config.core {
            CoreMode::Scratch => {
                let (result, sat_stats) = if assumptions.is_empty() {
                    check_conjunction_counted(&self.assertions, &self.config.theory)
                } else {
                    let mut combined = self.assertions.clone();
                    combined.extend_from_slice(assumptions);
                    check_conjunction_counted(&combined, &self.config.theory)
                };
                stats.conflicts += sat_stats.conflicts;
                stats.propagations += sat_stats.propagations;
                stats.learnt_clauses += sat_stats.learned;
                stats.clauses_deleted += sat_stats.clauses_deleted;
                stats.restarts_luby += sat_stats.restarts_luby;
                result
            }
            CoreMode::Persistent => {
                let mut core = self.core.borrow_mut();
                debug_assert_eq!(
                    core.len(),
                    self.assertions.len(),
                    "core assertions out of sync with the solver's"
                );
                let (result, sat_stats) = core.check(assumptions);
                stats.conflicts += sat_stats.conflicts;
                stats.propagations += sat_stats.propagations;
                stats.learnt_clauses += sat_stats.learned;
                stats.clauses_deleted += sat_stats.clauses_deleted;
                stats.restarts_luby += sat_stats.restarts_luby;
                // The core's counters are cumulative since the last reset;
                // mirror them instead of re-adding per check.
                let core_stats = core.stats();
                stats.clauses_reused = core_stats.clauses_reused;
                stats.atoms_interned = core_stats.atoms_interned;
                stats.cone_vars_pruned = core_stats.cone_vars_pruned;
                stats.lemmas_published = core_stats.lemmas_published;
                stats.lemmas_imported = core_stats.lemmas_imported;
                result
            }
        };
        let probe_delta = crate::probes::totals().delta_since(&probes_before);
        stats.dl_checks += probe_delta.dl_checks;
        stats.dl_conflicts += probe_delta.dl_conflicts;
        stats.dl_propagations += probe_delta.dl_propagations;
        stats.theory_dispatch_dl += probe_delta.theory_dispatch_dl;
        stats.theory_dispatch_lia += probe_delta.theory_dispatch_lia;
        stats.theory_iterations_exhausted += probe_delta.theory_iterations_exhausted;
        stats.propagation_ceiling_hits += probe_delta.propagation_ceiling_hits;
        stats.model_reconstruction_failures += probe_delta.model_reconstruction_failures;
        stats.checks += 1;
        stats.time += start.elapsed();
        match &result {
            SmtResult::Sat(_) => stats.sat += 1,
            SmtResult::Unsat => stats.unsat += 1,
            SmtResult::Unknown => stats.unknown += 1,
        }
        self.stats.set(stats);
        result
    }

    /// Checks satisfiability of the current assertions.
    pub fn check(&self) -> SmtResult {
        self.run_check(&[])
    }

    /// Checks satisfiability of the current assertions together with the
    /// given `assumptions`, without changing the assertion stack — the
    /// `check-sat-assuming` entry point for branch-local queries.
    pub fn check_assuming(&self, assumptions: &[Formula]) -> SmtResult {
        self.run_check(assumptions)
    }

    /// Alias of [`Solver::check_assuming`], kept for callers written against
    /// the original API.
    pub fn check_with(&self, extra: &[Formula]) -> SmtResult {
        self.check_assuming(extra)
    }

    /// Determines whether `formula` is valid under the current assertions:
    /// valid iff `assertions ∧ ¬formula` is unsatisfiable.
    pub fn check_valid(&self, formula: &Formula) -> Validity {
        match self.check_with(&[Formula::not(formula.clone())]) {
            SmtResult::Unsat => Validity::Valid,
            SmtResult::Sat(_) => Validity::Invalid,
            SmtResult::Unknown => Validity::Unknown,
        }
    }

    /// Convenience three-valued query used by the paper's proof relation
    /// (Fig. 5): does the heap prove, refute, or leave ambiguous the goal?
    pub fn prove(&self, goal: &Formula) -> Proof {
        match self.check_valid(goal) {
            Validity::Valid => Proof::Proved,
            Validity::Unknown => Proof::Ambiguous,
            Validity::Invalid => match self.check_with(std::slice::from_ref(goal)) {
                SmtResult::Unsat => Proof::Refuted,
                SmtResult::Sat(_) => Proof::Ambiguous,
                SmtResult::Unknown => Proof::Ambiguous,
            },
        }
    }
}

/// The three-valued answer of the proof relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Proof {
    /// The assertions entail the goal (`Σ ⊢ L : P ✓`).
    Proved,
    /// The assertions entail the negation of the goal (`Σ ⊢ L : P ✗`).
    Refuted,
    /// Neither could be established (`Σ ⊢ L : P ?`).
    Ambiguous,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    fn x(i: u32) -> Term {
        Term::var(Var::new(i))
    }

    #[test]
    fn fresh_vars_are_distinct() {
        let mut solver = Solver::new();
        let a = solver.fresh_var();
        let b = solver.fresh_var();
        assert_ne!(a, b);
        solver.reserve_through(Var::new(10));
        let c = solver.fresh_var();
        assert!(c.index() > 10);
    }

    #[test]
    fn push_pop_restores_assertions() {
        let mut solver = Solver::new();
        solver.assert(Formula::ge(x(0), Term::int(0)));
        solver.push();
        solver.assert(Formula::eq(x(0), Term::int(5)));
        assert_eq!(solver.assertions().len(), 2);
        solver.pop();
        assert_eq!(solver.assertions().len(), 1);
        assert!(solver.check().is_sat());
    }

    #[test]
    fn validity_of_entailed_formula() {
        let mut solver = Solver::new();
        solver.assert(Formula::eq(x(0), Term::int(3)));
        assert_eq!(
            solver.check_valid(&Formula::gt(x(0), Term::int(0))),
            Validity::Valid
        );
        assert_eq!(
            solver.check_valid(&Formula::gt(x(0), Term::int(5))),
            Validity::Invalid
        );
    }

    #[test]
    fn proof_relation_three_values() {
        let mut solver = Solver::new();
        solver.assert(Formula::ge(x(0), Term::int(1)));
        // x ≥ 1 proves x ≠ 0 ...
        assert_eq!(
            solver.prove(&Formula::ne(x(0), Term::int(0))),
            Proof::Proved
        );
        // ... refutes x = 0 ...
        assert_eq!(
            solver.prove(&Formula::eq(x(0), Term::int(0))),
            Proof::Refuted
        );
        // ... and says nothing about x = 5.
        assert_eq!(
            solver.prove(&Formula::eq(x(0), Term::int(5))),
            Proof::Ambiguous
        );
    }

    #[test]
    fn unconstrained_solver_is_sat() {
        let solver = Solver::new();
        assert!(solver.check().is_sat());
    }

    #[test]
    fn stats_count_checks_and_outcomes() {
        let mut solver = Solver::new();
        solver.assert(Formula::ge(x(0), Term::int(0)));
        assert!(solver.check().is_sat());
        assert!(solver
            .check_assuming(&[Formula::lt(x(0), Term::int(0))])
            .is_unsat());
        let stats = solver.stats();
        assert_eq!(stats.checks, 2);
        assert_eq!(stats.sat, 1);
        assert_eq!(stats.unsat, 1);
        assert_eq!(stats.assertions, 1);
        solver.reset_stats();
        assert_eq!(solver.stats(), SolverStats::default());
    }

    #[test]
    fn cdcl_counters_surface_on_boolean_structure() {
        // A disjunctive constraint forces the lazy SMT loop through the CDCL
        // core: each disjunct conflicts with the bound, so the search must
        // propagate and learn before concluding UNSAT.
        let mut solver = Solver::new();
        solver.assert(Formula::or(vec![
            Formula::eq(x(0), Term::int(0)),
            Formula::eq(x(0), Term::int(1)),
        ]));
        solver.assert(Formula::ge(x(0), Term::int(5)));
        assert!(solver.check().is_unsat());
        let stats = solver.stats();
        assert!(stats.propagations > 0, "no propagations counted: {stats:?}");
        // A pure atom conjunction takes the fast path and counts nothing.
        let atoms_only = Solver::new();
        assert!(atoms_only.check().is_sat());
        assert_eq!(atoms_only.stats().conflicts, 0);
        assert_eq!(atoms_only.stats().propagations, 0);
    }

    #[test]
    fn difference_cycle_regression_is_decided_by_dl_without_ceiling_hits() {
        // The PR 3 fuzzer regression: y ≥ x ∧ y ≤ x − 12, seeded with
        // x ≥ 0 so interval propagation has a bound to start chasing
        // around the cycle. It used to diverge into the round ceiling and
        // answer `Unknown`; the DL module must decide it outright.
        let assert_cycle = |solver: &mut Solver| {
            solver.assert(Formula::ge(x(0), Term::int(0)));
            solver.assert(Formula::ge(x(1), x(0)));
            solver.assert(Formula::le(x(1), Term::sub(x(0), Term::int(12))));
        };
        let mut config = SolverConfig::default();
        config.theory.theory_dl = true;
        let mut with_dl = Solver::with_config(config);
        assert_cycle(&mut with_dl);
        assert!(
            with_dl.check().is_unsat(),
            "the DL module decides the cycle"
        );
        let stats = with_dl.stats();
        assert!(stats.dl_checks >= 1, "routed to the DL module: {stats:?}");
        assert!(stats.dl_conflicts >= 1, "the cycle is a DL conflict");
        assert_eq!(
            stats.propagation_ceiling_hits, 0,
            "no round ceiling involved: {stats:?}"
        );
        assert_eq!(stats.unknown, 0);

        let mut config = SolverConfig::default();
        config.theory.theory_dl = false;
        let mut without_dl = Solver::with_config(config);
        assert_cycle(&mut without_dl);
        let verdict = without_dl.check();
        assert!(!verdict.is_sat(), "the old engine must never claim sat");
        let stats = without_dl.stats();
        assert_eq!(stats.dl_checks, 0, "gated off: {stats:?}");
        assert_eq!(stats.theory_dispatch_dl, 0);
        assert!(
            stats.propagation_ceiling_hits >= 1,
            "the old engine diverges into the ceiling: {stats:?}"
        );
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = SolverStats {
            checks: 2,
            sat: 1,
            unsat: 1,
            ..SolverStats::default()
        };
        let b = SolverStats {
            checks: 3,
            unknown: 3,
            assertions: 7,
            ..SolverStats::default()
        };
        a.merge(&b);
        assert_eq!(a.checks, 5);
        assert_eq!(a.unknown, 3);
        assert_eq!(a.assertions, 7);
    }

    #[test]
    fn scope_depth_tracks_push_pop() {
        let mut solver = Solver::new();
        assert_eq!(solver.scope_depth(), 0);
        solver.push();
        solver.push();
        assert_eq!(solver.scope_depth(), 2);
        solver.pop();
        assert_eq!(solver.scope_depth(), 1);
    }

    #[test]
    fn pop_to_restores_depth_and_assertions_exactly() {
        let mut solver = Solver::new();
        solver.assert(Formula::ge(x(0), Term::int(0)));
        solver.push();
        solver.assert(Formula::eq(x(0), Term::int(5)));
        solver.push();
        solver.assert(Formula::le(x(1), Term::int(3)));
        solver.assert(Formula::ge(x(1), Term::int(1)));
        solver.push();
        assert_eq!(solver.scope_depth(), 3);
        assert_eq!(solver.assertions().len(), 4);
        // Popping to the current depth is a no-op.
        solver.pop_to(3).expect("balanced");
        assert_eq!(solver.scope_depth(), 3);
        assert_eq!(solver.assertions().len(), 4);
        // Popping two scopes at once drops exactly their assertions.
        solver.pop_to(1).expect("balanced");
        assert_eq!(solver.scope_depth(), 1);
        assert_eq!(solver.assertions().len(), 2);
        assert!(solver.check().is_sat());
        // Back to the base scope: only the base assertion survives.
        solver.pop_to(0).expect("balanced");
        assert_eq!(solver.scope_depth(), 0);
        assert_eq!(solver.assertions().len(), 1);
    }

    #[test]
    fn pop_to_rejects_unbalanced_depths() {
        let mut solver = Solver::new();
        solver.assert(Formula::ge(x(0), Term::int(0)));
        solver.push();
        solver.assert(Formula::eq(x(0), Term::int(5)));
        let err = solver.pop_to(2).expect_err("two scopes are not open");
        assert_eq!(
            err,
            UnbalancedPop {
                requested: 2,
                depth: 1
            }
        );
        assert!(err.to_string().contains("scope depth 2"));
        // A failed pop leaves the solver untouched.
        assert_eq!(solver.scope_depth(), 1);
        assert_eq!(solver.assertions().len(), 2);
        // An empty solver rejects any positive depth instead of panicking.
        let mut empty = Solver::new();
        assert!(empty.pop_to(1).is_err());
        assert!(empty.pop_to(0).is_ok());
    }

    #[test]
    fn check_with_does_not_mutate() {
        let mut solver = Solver::new();
        solver.assert(Formula::ge(x(0), Term::int(0)));
        let result = solver.check_with(&[Formula::lt(x(0), Term::int(0))]);
        assert!(result.is_unsat());
        // The contradictory extra assertion was not retained.
        assert!(solver.check().is_sat());
        assert_eq!(solver.assertions().len(), 1);
    }
}
