//! Tseitin conversion from formulas to propositional clauses.
//!
//! Each distinct theory [`Atom`] is mapped to a boolean variable; the boolean
//! structure of the formula is encoded with auxiliary variables in the usual
//! equisatisfiable way. The mapping is remembered in an [`AtomMap`] so the
//! lazy SMT loop can translate a propositional model back into a conjunction
//! of theory literals.

use std::collections::HashMap;

use crate::formula::{Atom, Formula};
use crate::sat::{BVar, Lit, SatSolver};

/// Bidirectional mapping between theory atoms and boolean variables.
#[derive(Debug, Default)]
pub struct AtomMap {
    by_atom: HashMap<Atom, BVar>,
    by_var: HashMap<BVar, Atom>,
}

impl AtomMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        AtomMap::default()
    }

    /// Returns the boolean variable for `atom`, allocating one in `sat` if
    /// the atom has not been seen before.
    pub fn var_for(&mut self, sat: &mut SatSolver, atom: &Atom) -> BVar {
        if let Some(&var) = self.by_atom.get(atom) {
            return var;
        }
        let var = sat.new_var();
        self.by_atom.insert(atom.clone(), var);
        self.by_var.insert(var, atom.clone());
        var
    }

    /// The atom associated with a boolean variable, if the variable encodes a
    /// theory atom (auxiliary Tseitin variables do not).
    pub fn atom_for(&self, var: BVar) -> Option<&Atom> {
        self.by_var.get(&var)
    }

    /// Number of registered atoms.
    pub fn len(&self) -> usize {
        self.by_atom.len()
    }

    /// True if no atoms are registered.
    pub fn is_empty(&self) -> bool {
        self.by_atom.is_empty()
    }

    /// Iterates over `(atom, var)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Atom, BVar)> + '_ {
        self.by_atom.iter().map(|(a, v)| (a, *v))
    }
}

/// Asserts `formula` into the SAT solver, registering its atoms in `atoms`.
///
/// The formula is first normalised to NNF, so only conjunction, disjunction
/// and (possibly negated, but polarity is folded into the comparison) atoms
/// remain, then Tseitin-encoded.
pub fn assert_formula(sat: &mut SatSolver, atoms: &mut AtomMap, formula: &Formula) {
    let nnf = formula.to_nnf();
    match nnf {
        Formula::True => {}
        Formula::False => sat.add_clause(vec![]),
        other => {
            let lit = encode(sat, atoms, &other);
            sat.add_clause(vec![lit]);
        }
    }
}

/// Encodes an NNF formula, returning a literal equivalent to it.
fn encode(sat: &mut SatSolver, atoms: &mut AtomMap, formula: &Formula) -> Lit {
    match formula {
        Formula::True => {
            // Fresh variable constrained to true.
            let var = sat.new_var();
            sat.add_clause(vec![var.positive()]);
            var.positive()
        }
        Formula::False => {
            let var = sat.new_var();
            sat.add_clause(vec![var.negative()]);
            var.positive()
        }
        Formula::Atom(atom) => atoms.var_for(sat, atom).positive(),
        Formula::Not(inner) => encode(sat, atoms, inner).negate(),
        Formula::And(parts) => {
            let lits: Vec<Lit> = parts.iter().map(|p| encode(sat, atoms, p)).collect();
            encode_and_gate(sat, lits)
        }
        Formula::Or(parts) => {
            let lits: Vec<Lit> = parts.iter().map(|p| encode(sat, atoms, p)).collect();
            encode_or_gate(sat, lits)
        }
        // NNF conversion eliminates these; encode the gates over the
        // subformulas' literals directly instead of cloning the subtrees
        // into an expanded formula first.
        Formula::Implies(a, b) => {
            let lits = vec![encode(sat, atoms, a).negate(), encode(sat, atoms, b)];
            encode_or_gate(sat, lits)
        }
        Formula::Iff(a, b) => {
            let lit_a = encode(sat, atoms, a);
            let lit_b = encode(sat, atoms, b);
            let forward = encode_or_gate(sat, vec![lit_a.negate(), lit_b]);
            let backward = encode_or_gate(sat, vec![lit_b.negate(), lit_a]);
            encode_and_gate(sat, vec![forward, backward])
        }
    }
}

/// Introduces `out ⇔ (l₁ ∧ … ∧ lₙ)` and returns `out`. Shared with the
/// persistent core's encoder so the two engines emit identical gates.
pub(crate) fn encode_and_gate(sat: &mut SatSolver, lits: Vec<Lit>) -> Lit {
    let out = sat.new_var();
    // out → each lit
    for &lit in &lits {
        sat.add_clause(vec![out.negative(), lit]);
    }
    // all lits → out
    let mut clause: Vec<Lit> = lits.iter().map(|l| l.negate()).collect();
    clause.push(out.positive());
    sat.add_clause(clause);
    out.positive()
}

/// Introduces `out ⇔ (l₁ ∨ … ∨ lₙ)` and returns `out`. Shared with the
/// persistent core's encoder so the two engines emit identical gates.
pub(crate) fn encode_or_gate(sat: &mut SatSolver, lits: Vec<Lit>) -> Lit {
    let out = sat.new_var();
    // each lit → out
    for &lit in &lits {
        sat.add_clause(vec![lit.negate(), out.positive()]);
    }
    // out → some lit
    let mut clause: Vec<Lit> = lits.clone();
    clause.push(out.negative());
    sat.add_clause(clause);
    out.positive()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::Formula;
    use crate::sat::SatResult;
    use crate::term::{Term, Var};

    fn x(i: u32) -> Term {
        Term::var(Var::new(i))
    }

    #[test]
    fn atoms_are_shared() {
        let mut sat = SatSolver::new();
        let mut atoms = AtomMap::new();
        let f = Formula::and(vec![
            Formula::eq(x(0), Term::int(1)),
            Formula::or(vec![
                Formula::eq(x(0), Term::int(1)),
                Formula::eq(x(1), Term::int(2)),
            ]),
        ]);
        assert_formula(&mut sat, &mut atoms, &f);
        // x0 = 1 appears twice but is registered once.
        assert_eq!(atoms.len(), 2);
    }

    #[test]
    fn propositional_structure_is_respected() {
        // (a ∧ ¬a) is propositionally unsatisfiable even before the theory.
        let mut sat = SatSolver::new();
        let mut atoms = AtomMap::new();
        let a = Formula::eq(x(0), Term::int(1));
        let f = Formula::And(vec![a.clone(), Formula::not(a)]);
        assert_formula(&mut sat, &mut atoms, &f);
        // NNF turns ¬(x0 = 1) into x0 ≠ 1, a distinct atom, so this is SAT
        // at the boolean level; the theory solver must refute it instead.
        assert!(sat.solve().is_sat());
    }

    #[test]
    fn false_formula_gives_unsat_instance() {
        let mut sat = SatSolver::new();
        let mut atoms = AtomMap::new();
        assert_formula(&mut sat, &mut atoms, &Formula::False);
        assert_eq!(sat.solve(), SatResult::Unsat);
    }

    #[test]
    fn disjunction_requires_some_atom_true() {
        let mut sat = SatSolver::new();
        let mut atoms = AtomMap::new();
        let f = Formula::or(vec![
            Formula::eq(x(0), Term::int(1)),
            Formula::eq(x(1), Term::int(2)),
        ]);
        assert_formula(&mut sat, &mut atoms, &f);
        match sat.solve() {
            SatResult::Sat(model) => {
                let some_true = atoms.iter().any(|(_, var)| model[var.index() as usize]);
                assert!(
                    some_true,
                    "at least one disjunct atom must be assigned true"
                );
            }
            SatResult::Unsat => panic!("should be sat"),
        }
    }
}
