//! Integer-sorted terms of the first-order constraint language.
//!
//! Terms are the arithmetic layer underneath [`crate::formula::Formula`]:
//! integer constants, variables, and the operations `+`, `-`, `*` and unary
//! negation. This is exactly the fragment produced by the heap-to-formula
//! translation of the paper (Fig. 4): refinements on base values only ever
//! mention arithmetic over heap locations and literals.

use std::collections::BTreeSet;
use std::fmt;

/// A first-order integer variable.
///
/// Clients (the symbolic executors) allocate variables through
/// [`crate::solver::Solver::fresh_var`] or construct them directly from a
/// `u32` index when they manage their own numbering (e.g. one variable per
/// heap location).
///
/// ```
/// use folic::term::Var;
/// let v = Var::new(3);
/// assert_eq!(v.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(u32);

impl Var {
    /// Creates a variable with the given index.
    pub fn new(index: u32) -> Self {
        Var(index)
    }

    /// The numeric index of this variable.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl From<u32> for Var {
    fn from(index: u32) -> Self {
        Var(index)
    }
}

/// An integer-sorted term.
///
/// ```
/// use folic::term::{Term, Var};
/// // 100 - x0
/// let t = Term::sub(Term::int(100), Term::var(Var::new(0)));
/// assert_eq!(t.to_string(), "(- 100 x0)");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// An integer literal.
    Int(i64),
    /// A variable.
    Var(Var),
    /// Addition.
    Add(Box<Term>, Box<Term>),
    /// Subtraction.
    Sub(Box<Term>, Box<Term>),
    /// Multiplication.
    Mul(Box<Term>, Box<Term>),
    /// Unary negation.
    Neg(Box<Term>),
}

impl Term {
    /// An integer literal term.
    pub fn int(n: i64) -> Self {
        Term::Int(n)
    }

    /// A variable term.
    pub fn var(v: Var) -> Self {
        Term::Var(v)
    }

    /// `a + b`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(a: Term, b: Term) -> Self {
        Term::Add(Box::new(a), Box::new(b))
    }

    /// `a - b`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(a: Term, b: Term) -> Self {
        Term::Sub(Box::new(a), Box::new(b))
    }

    /// `a * b`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(a: Term, b: Term) -> Self {
        Term::Mul(Box::new(a), Box::new(b))
    }

    /// `-a`.
    #[allow(clippy::should_implement_trait)]
    pub fn neg(a: Term) -> Self {
        Term::Neg(Box::new(a))
    }

    /// Collects the free variables of the term into `out`.
    pub fn collect_vars(&self, out: &mut BTreeSet<Var>) {
        match self {
            Term::Int(_) => {}
            Term::Var(v) => {
                out.insert(*v);
            }
            Term::Add(a, b) | Term::Sub(a, b) | Term::Mul(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Term::Neg(a) => a.collect_vars(out),
        }
    }

    /// The set of free variables of the term.
    pub fn vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    /// Evaluates the term under an assignment of variables to integers.
    ///
    /// Returns `None` if a variable is unassigned or the arithmetic
    /// overflows `i64`.
    pub fn eval<F>(&self, assignment: &F) -> Option<i64>
    where
        F: Fn(Var) -> Option<i64>,
    {
        match self {
            Term::Int(n) => Some(*n),
            Term::Var(v) => assignment(*v),
            Term::Add(a, b) => a.eval(assignment)?.checked_add(b.eval(assignment)?),
            Term::Sub(a, b) => a.eval(assignment)?.checked_sub(b.eval(assignment)?),
            Term::Mul(a, b) => a.eval(assignment)?.checked_mul(b.eval(assignment)?),
            Term::Neg(a) => a.eval(assignment)?.checked_neg(),
        }
    }

    /// Structurally simplifies the term by constant folding.
    pub fn simplify(&self) -> Term {
        match self {
            Term::Int(_) | Term::Var(_) => self.clone(),
            Term::Add(a, b) => match (a.simplify(), b.simplify()) {
                (Term::Int(x), Term::Int(y)) => match x.checked_add(y) {
                    Some(z) => Term::Int(z),
                    None => Term::add(Term::Int(x), Term::Int(y)),
                },
                (Term::Int(0), t) | (t, Term::Int(0)) => t,
                (x, y) => Term::add(x, y),
            },
            Term::Sub(a, b) => match (a.simplify(), b.simplify()) {
                (Term::Int(x), Term::Int(y)) => match x.checked_sub(y) {
                    Some(z) => Term::Int(z),
                    None => Term::sub(Term::Int(x), Term::Int(y)),
                },
                (t, Term::Int(0)) => t,
                (x, y) => Term::sub(x, y),
            },
            Term::Mul(a, b) => match (a.simplify(), b.simplify()) {
                (Term::Int(x), Term::Int(y)) => match x.checked_mul(y) {
                    Some(z) => Term::Int(z),
                    None => Term::mul(Term::Int(x), Term::Int(y)),
                },
                (Term::Int(0), _) | (_, Term::Int(0)) => Term::Int(0),
                (Term::Int(1), t) | (t, Term::Int(1)) => t,
                (x, y) => Term::mul(x, y),
            },
            Term::Neg(a) => match a.simplify() {
                Term::Int(x) => match x.checked_neg() {
                    Some(z) => Term::Int(z),
                    None => Term::neg(Term::Int(x)),
                },
                t => Term::neg(t),
            },
        }
    }

    /// True if the term is an integer literal.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Term::Int(n) => Some(*n),
            _ => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Int(n) => write!(f, "{n}"),
            Term::Var(v) => write!(f, "{v}"),
            Term::Add(a, b) => write!(f, "(+ {a} {b})"),
            Term::Sub(a, b) => write!(f, "(- {a} {b})"),
            Term::Mul(a, b) => write!(f, "(* {a} {b})"),
            Term::Neg(a) => write!(f, "(- {a})"),
        }
    }
}

impl From<i64> for Term {
    fn from(n: i64) -> Self {
        Term::Int(n)
    }
}

impl From<Var> for Term {
    fn from(v: Var) -> Self {
        Term::Var(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trip_shapes() {
        let t = Term::add(Term::var(Var::new(1)), Term::int(2));
        assert_eq!(t.to_string(), "(+ x1 2)");
        let t = Term::neg(Term::var(Var::new(0)));
        assert_eq!(t.to_string(), "(- x0)");
    }

    #[test]
    fn vars_collects_all_variables() {
        let t = Term::mul(
            Term::add(Term::var(Var::new(1)), Term::var(Var::new(2))),
            Term::sub(Term::var(Var::new(3)), Term::int(4)),
        );
        let vs = t.vars();
        assert_eq!(
            vs.into_iter().map(Var::index).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn eval_computes_arithmetic() {
        let t = Term::sub(Term::int(100), Term::var(Var::new(0)));
        let value = t.eval(&|v| if v.index() == 0 { Some(58) } else { None });
        assert_eq!(value, Some(42));
    }

    #[test]
    fn eval_unassigned_is_none() {
        let t = Term::var(Var::new(7));
        assert_eq!(t.eval(&|_| None), None);
    }

    #[test]
    fn eval_detects_overflow() {
        let t = Term::mul(Term::int(i64::MAX), Term::int(2));
        assert_eq!(t.eval(&|_| None), None);
    }

    #[test]
    fn simplify_folds_constants() {
        let t = Term::add(Term::int(1), Term::mul(Term::int(2), Term::int(3)));
        assert_eq!(t.simplify(), Term::Int(7));
    }

    #[test]
    fn simplify_identities() {
        let x = Term::var(Var::new(0));
        assert_eq!(Term::add(x.clone(), Term::int(0)).simplify(), x);
        assert_eq!(Term::mul(x.clone(), Term::int(1)).simplify(), x);
        assert_eq!(Term::mul(x.clone(), Term::int(0)).simplify(), Term::Int(0));
    }
}
