//! An incremental difference-logic theory module.
//!
//! Difference logic is the fragment of linear integer arithmetic whose
//! constraints normalise to `x − y ≤ c` (including single-variable bounds,
//! read as differences against a virtual zero node). A conjunction in the
//! fragment is *exactly* decidable by a negative-cycle test over its
//! constraint graph: one node per variable, one weight-`c` edge `y → x` per
//! constraint `x − y ≤ c`; the conjunction is unsatisfiable iff the graph
//! has a negative-weight cycle, and the constraints labelling that cycle
//! are an inconsistent subset — the **explanation** that becomes a blocking
//! clause and a shared theory lemma.
//!
//! This is the engine that fixes the difference-cycle `Unknown` bug for
//! real: interval propagation diverges on contradictions like
//! `y ≥ x ∧ y ≤ x − 12` (the PR 3 fuzzer regression), where each round
//! tightens the bounds by 12 forever, and the round ceiling that cuts the
//! loop off degrades the verdict to `Unknown`. The graph test decides the
//! same conjunction in two edge insertions.
//!
//! [`DlSolver`] is incremental in the style of Cotton & Maler: it maintains
//! a **potential function** π with `π(x) ≤ π(y) + c` for every asserted
//! edge. Each new edge is checked against π in O(1); only a violated edge
//! triggers an SPFA-style repair that relaxes π forward from the edge's
//! head, and a repair that propagates back into the edge's tail has closed
//! a negative cycle. Potentials stay valid across [`DlSolver::retract`]
//! (removing constraints only removes conditions on π), so asserts after a
//! pop resume from the repaired potentials instead of recomputing them.
//! Satisfiable conjunctions get their model straight from the potentials:
//! `x ↦ π(x) − π(zero)` satisfies every asserted edge by construction.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use crate::formula::{Atom, CmpOp};
use crate::linear::{linearise, LinExpr, Linearised};
use crate::probes;
use crate::term::Var;
use crate::theory::{TheoryModuleStats, TheorySolver, TheoryVerdict};

/// The default difference-logic gate, taken from the `CPCF_THEORY_DL`
/// environment variable: `on` (the default when unset) routes conjunctions
/// inside the difference fragment to the [`DlSolver`] module, `off` keeps
/// the pre-DL behaviour of sending everything to the LIA engine (the
/// ablation leg). An unrecognised value falls back to `on` with a
/// once-per-process warning, mirroring `CPCF_LEMMA_SHARING`'s behaviour so
/// a typo in a CI matrix cannot silently test the wrong configuration.
pub fn default_theory_dl() -> bool {
    match std::env::var("CPCF_THEORY_DL").ok().as_deref() {
        Some("off") => false,
        Some("on") | None => true,
        Some(other) => {
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| {
                eprintln!(
                    "warning: unrecognised CPCF_THEORY_DL `{other}` \
                     (expected on|off); using on"
                );
            });
            true
        }
    }
}

/// The difference-fragment reading of one normalised `expr ≤ 0` constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DlConstraint {
    /// `upper − lower ≤ bound`, with `None` standing for the zero node.
    Edge {
        /// The variable on the large side (or the zero node).
        upper: Option<Var>,
        /// The variable on the small side (or the zero node).
        lower: Option<Var>,
        /// The difference bound.
        bound: i64,
    },
    /// A variable-free constraint that holds.
    True,
    /// A variable-free constraint that cannot hold.
    False,
}

/// Reads `expr ≤ 0` as a difference constraint, or `None` when it lies
/// outside the fragment (three or more variables, or a non-±1 coefficient).
fn le_zero(expr: &LinExpr) -> Option<DlConstraint> {
    let terms: Vec<(Var, i64)> = expr.iter().filter(|(_, c)| *c != 0).collect();
    if terms.is_empty() {
        return Some(if expr.constant_part() <= 0 {
            DlConstraint::True
        } else {
            DlConstraint::False
        });
    }
    let bound = expr.constant_part().checked_neg()?;
    match terms.as_slice() {
        [(v, 1)] => Some(DlConstraint::Edge {
            upper: Some(*v),
            lower: None,
            bound,
        }),
        [(v, -1)] => Some(DlConstraint::Edge {
            upper: None,
            lower: Some(*v),
            bound,
        }),
        [(a, 1), (b, -1)] => Some(DlConstraint::Edge {
            upper: Some(*a),
            lower: Some(*b),
            bound,
        }),
        [(a, -1), (b, 1)] => Some(DlConstraint::Edge {
            upper: Some(*b),
            lower: Some(*a),
            bound,
        }),
        _ => None,
    }
}

/// Normalises one atom into difference constraints, exactly mirroring the
/// LIA problem builder's comparison normalisation (`x ≥ y + c` becomes
/// `y − x ≤ −c`, strict comparisons shift by one, an equality becomes the
/// two opposing `≤` edges). Returns `None` when the atom lies outside the
/// fragment: disequalities, products, non-unit coefficients, more than two
/// variables, or coefficient overflow during normalisation.
fn classify(atom: &Atom) -> Option<Vec<DlConstraint>> {
    let lhs = match linearise(&atom.lhs) {
        Linearised::Linear(e) => e,
        Linearised::NonLinear => return None,
    };
    let rhs = match linearise(&atom.rhs) {
        Linearised::Linear(e) => e,
        Linearised::NonLinear => return None,
    };
    let diff = lhs.checked_sub(&rhs)?;
    let constraints = match atom.op {
        CmpOp::Eq => {
            let negated = diff.checked_scale(-1)?;
            vec![le_zero(&diff)?, le_zero(&negated)?]
        }
        CmpOp::Ne => return None,
        CmpOp::Le => vec![le_zero(&diff)?],
        CmpOp::Lt => {
            let mut shifted = diff;
            shifted.add_constant(1)?;
            vec![le_zero(&shifted)?]
        }
        CmpOp::Ge => {
            let negated = diff.checked_scale(-1)?;
            vec![le_zero(&negated)?]
        }
        CmpOp::Gt => {
            let mut negated = diff.checked_scale(-1)?;
            negated.add_constant(1)?;
            vec![le_zero(&negated)?]
        }
    };
    Some(constraints)
}

/// True when every atom of the conjunction lies in the difference fragment,
/// i.e. [`DlSolver`] decides the conjunction exactly.
pub fn in_difference_fragment(atoms: &[&Atom]) -> bool {
    atoms.iter().all(|atom| classify(atom).is_some())
}

/// One edge of the constraint graph: `pot[to] ≤ pot[from] + weight` must
/// hold, and `atom` is the asserted atom that contributed it.
#[derive(Debug, Clone, Copy)]
struct Edge {
    from: usize,
    to: usize,
    weight: i128,
    atom: usize,
}

/// The incremental difference-logic solver. See the module docs for the
/// algorithm; node 0 is the virtual zero node that single-variable bounds
/// are differenced against.
#[derive(Debug, Default)]
pub struct DlSolver {
    /// Variable → graph node (allocated on first sight).
    node_of: HashMap<Var, usize>,
    /// Potential function, one entry per node (index 0: the zero node).
    pot: Vec<i128>,
    /// Outgoing edge ids per node.
    out: Vec<Vec<usize>>,
    /// Asserted edges, in assertion order (retraction truncates).
    edges: Vec<Edge>,
    /// Frame marks: `(edges.len(), asserted, undecidable)` at each push.
    frames: Vec<(usize, usize, bool)>,
    /// Atoms asserted so far (explanation indices refer to this order).
    asserted: usize,
    /// The first conflict found, as explanation indices; cleared by a
    /// retraction that discards one of the blamed atoms.
    conflict: Option<Vec<usize>>,
    /// An out-of-fragment atom slipped past `can_decide`: the module can
    /// no longer claim `Sat` (a recorded conflict stays sound).
    undecidable: bool,
    /// Potentials left mid-repair by a conflict; restored lazily on
    /// retraction.
    dirty: bool,
    stats: TheoryModuleStats,
}

impl DlSolver {
    /// Creates an empty solver (just the zero node).
    pub fn new() -> Self {
        DlSolver {
            pot: vec![0],
            out: vec![Vec::new()],
            ..DlSolver::default()
        }
    }

    /// The graph node of `var`, allocated on first use with potential 0.
    fn node(&mut self, var: Var) -> usize {
        if let Some(&node) = self.node_of.get(&var) {
            return node;
        }
        let node = self.pot.len();
        // A fresh node starts at the zero node's potential, which trivially
        // satisfies the no-edges-yet condition.
        self.pot.push(self.pot[0]);
        self.out.push(Vec::new());
        self.node_of.insert(var, node);
        node
    }

    /// Inserts the edge `pot[to] ≤ pot[from] + weight`, repairing the
    /// potential function when the new edge violates it. Returns `false`
    /// when the repair closes a negative cycle (the conjunction became
    /// inconsistent).
    fn add_edge(&mut self, from: usize, to: usize, weight: i128, atom: usize) -> bool {
        let id = self.edges.len();
        self.edges.push(Edge {
            from,
            to,
            weight,
            atom,
        });
        self.out[from].push(id);
        if self.pot[to] <= self.pot[from] + weight {
            return true;
        }
        if from == to {
            // A negative self-loop (cannot arise from difference atoms,
            // whose variable pairs are distinct after cancellation, but
            // guard anyway).
            self.dirty = true;
            self.conflict = Some(vec![atom]);
            return false;
        }
        // SPFA repair from the edge's head. The graph was consistent before
        // this edge, so every negative cycle runs through it — equivalently,
        // a relaxation wave that makes it back to `from` (which would let
        // the new edge lower `pot[to]` again, forever) proves a negative
        // cycle; a wave that dies out has restored a valid potential.
        self.pot[to] = self.pot[from] + weight;
        probes::bump(|p| p.dl_propagations += 1);
        self.stats.propagations += 1;
        let mut in_queue = vec![false; self.pot.len()];
        let mut queue = VecDeque::new();
        queue.push_back(to);
        in_queue[to] = true;
        while let Some(x) = queue.pop_front() {
            in_queue[x] = false;
            for i in 0..self.out[x].len() {
                let eid = self.out[x][i];
                let edge = self.edges[eid];
                if self.pot[edge.to] > self.pot[x] + edge.weight {
                    self.pot[edge.to] = self.pot[x] + edge.weight;
                    probes::bump(|p| p.dl_propagations += 1);
                    self.stats.propagations += 1;
                    if edge.to == from {
                        self.dirty = true;
                        self.conflict = Some(self.negative_cycle_explanation());
                        return false;
                    }
                    if !in_queue[edge.to] {
                        in_queue[edge.to] = true;
                        queue.push_back(edge.to);
                    }
                }
            }
        }
        true
    }

    /// Finds a negative cycle in the asserted edge set by Bellman–Ford from
    /// an implicit super-source and returns the distinct atoms labelling
    /// its edges — the conflict explanation. Only called when a cycle is
    /// known to exist; the `O(V·E)` cost is paid per refutation, not per
    /// assert.
    fn negative_cycle_explanation(&self) -> Vec<usize> {
        let n = self.pot.len();
        let mut dist = vec![0i128; n];
        let mut parent = vec![usize::MAX; n];
        let mut last_relaxed = usize::MAX;
        for _round in 0..=n {
            last_relaxed = usize::MAX;
            for (eid, edge) in self.edges.iter().enumerate() {
                if dist[edge.to] > dist[edge.from] + edge.weight {
                    dist[edge.to] = dist[edge.from] + edge.weight;
                    parent[edge.to] = eid;
                    last_relaxed = edge.to;
                }
            }
            if last_relaxed == usize::MAX {
                break;
            }
        }
        if last_relaxed == usize::MAX {
            // Defensive: no cycle found (should not happen) — blame the
            // whole conjunction, which is still a sound explanation.
            return (0..self.asserted).collect();
        }
        // After ≥ n relaxation rounds the last relaxed node's parent chain
        // is inside a negative cycle within n steps.
        let mut inside = last_relaxed;
        for _ in 0..n {
            inside = self.edges[parent[inside]].from;
        }
        let mut atoms = BTreeSet::new();
        let mut cursor = inside;
        loop {
            let eid = parent[cursor];
            atoms.insert(self.edges[eid].atom);
            cursor = self.edges[eid].from;
            if cursor == inside {
                break;
            }
        }
        atoms.into_iter().collect()
    }

    /// Rebuilds the potential function from scratch over the live edges,
    /// used after a retraction discarded the edges of a conflict that left
    /// the potentials mid-repair.
    fn restore_potentials(&mut self) {
        for p in &mut self.pot {
            *p = 0;
        }
        // Bellman–Ford from the all-zeros potential: the live edge set was
        // consistent before the retracted frame, so this converges.
        let n = self.pot.len();
        for _round in 0..=n {
            let mut changed = false;
            for edge in &self.edges {
                if self.pot[edge.to] > self.pot[edge.from] + edge.weight {
                    self.pot[edge.to] = self.pot[edge.from] + edge.weight;
                    changed = true;
                }
            }
            if !changed {
                self.dirty = false;
                return;
            }
        }
        // Still inconsistent after n rounds (cannot happen when the
        // surviving frames were conflict-free): stay dirty, so `check`
        // conservatively answers `Unknown` instead of claiming a model.
    }

    /// A model from the potentials, shifted so the zero node maps to 0.
    /// `None` when a value does not fit in `i64` (the caller falls back to
    /// `Unknown`, never a wrong answer).
    fn model(&self) -> Option<BTreeMap<Var, i64>> {
        let zero = self.pot[0];
        let mut model = BTreeMap::new();
        for (&var, &node) in &self.node_of {
            let value = i64::try_from(self.pot[node] - zero).ok()?;
            model.insert(var, value);
        }
        Some(model)
    }
}

impl TheorySolver for DlSolver {
    fn name(&self) -> &'static str {
        "dl"
    }

    fn can_decide(&self, atoms: &[&Atom]) -> bool {
        in_difference_fragment(atoms)
    }

    fn push(&mut self) {
        self.frames
            .push((self.edges.len(), self.asserted, self.undecidable));
    }

    fn assert(&mut self, atom: &Atom) -> Result<(), Vec<usize>> {
        let index = self.asserted;
        self.asserted += 1;
        if let Some(conflict) = &self.conflict {
            return Err(conflict.clone());
        }
        let Some(constraints) = classify(atom) else {
            // `can_decide` filters these; a stray out-of-fragment atom
            // makes the conjunction undecidable for this module (treating
            // it as a conflict would be unsound, ignoring it would let an
            // unchecked model through).
            self.undecidable = true;
            return Ok(());
        };
        for constraint in constraints {
            match constraint {
                DlConstraint::True => {}
                DlConstraint::False => {
                    self.conflict = Some(vec![index]);
                    self.stats.conflicts += 1;
                    probes::bump(|p| p.dl_conflicts += 1);
                    return Err(vec![index]);
                }
                DlConstraint::Edge {
                    upper,
                    lower,
                    bound,
                } => {
                    let to = match upper {
                        Some(v) => self.node(v),
                        None => 0,
                    };
                    let from = match lower {
                        Some(v) => self.node(v),
                        None => 0,
                    };
                    if !self.add_edge(from, to, i128::from(bound), index) {
                        let explanation = self.conflict.clone().expect("conflict recorded");
                        self.stats.conflicts += 1;
                        probes::bump(|p| p.dl_conflicts += 1);
                        return Err(explanation);
                    }
                }
            }
        }
        Ok(())
    }

    fn retract(&mut self) {
        let (edge_mark, atom_mark, undecidable) = self.frames.pop().unwrap_or((0, 0, false));
        while self.edges.len() > edge_mark {
            let edge = self.edges.pop().expect("length checked");
            let popped = self.out[edge.from].pop();
            debug_assert_eq!(popped, Some(self.edges.len()));
        }
        self.asserted = atom_mark;
        self.undecidable = undecidable;
        // A conflict always blames the atom whose edge closed the cycle, so
        // it survives retraction exactly when every blamed atom does.
        if let Some(explanation) = &self.conflict {
            if explanation.iter().any(|&index| index >= atom_mark) {
                self.conflict = None;
            }
        }
        if self.dirty && self.conflict.is_none() {
            self.restore_potentials();
        }
    }

    fn check(&mut self) -> TheoryVerdict {
        self.stats.checks += 1;
        if let Some(explanation) = &self.conflict {
            return TheoryVerdict::Unsat(explanation.clone());
        }
        if self.undecidable || self.dirty {
            return TheoryVerdict::Unknown;
        }
        match self.model() {
            Some(model) => TheoryVerdict::Sat(model),
            None => TheoryVerdict::Unknown,
        }
    }

    fn stats(&self) -> TheoryModuleStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    fn x(i: u32) -> Term {
        Term::var(Var::new(i))
    }

    fn check(atoms: &[Atom]) -> TheoryVerdict {
        let refs: Vec<&Atom> = atoms.iter().collect();
        let mut dl = DlSolver::new();
        assert!(dl.can_decide(&refs), "atoms must be in the fragment");
        dl.push();
        for atom in &refs {
            if dl.assert(atom).is_err() {
                break;
            }
        }
        dl.check()
    }

    #[test]
    fn difference_cycle_regression_is_unsat_with_both_atoms_blamed() {
        // The PR 3 fuzzer regression: y ≥ x ∧ y ≤ x − 12. Interval
        // propagation diverges here; the graph test closes the weight −12
        // cycle immediately.
        let atoms = vec![
            Atom::new(x(1), CmpOp::Ge, x(0)),
            Atom::new(x(1), CmpOp::Le, Term::sub(x(0), Term::int(12))),
        ];
        match check(&atoms) {
            TheoryVerdict::Unsat(explanation) => {
                assert_eq!(explanation, vec![0, 1], "both atoms form the cycle");
            }
            other => panic!("expected unsat, got {other:?}"),
        }
    }

    #[test]
    fn satisfiable_chains_get_witnessing_models() {
        // x ≤ y − 3 ∧ y ≤ z ∧ z ≤ 10 ∧ x ≥ 0.
        let atoms = vec![
            Atom::new(x(0), CmpOp::Le, Term::sub(x(1), Term::int(3))),
            Atom::new(x(1), CmpOp::Le, x(2)),
            Atom::new(x(2), CmpOp::Le, Term::int(10)),
            Atom::new(x(0), CmpOp::Ge, Term::int(0)),
        ];
        match check(&atoms) {
            TheoryVerdict::Sat(model) => {
                let v = |i| model.get(&Var::new(i)).copied().expect("assigned");
                assert!(v(0) <= v(1) - 3);
                assert!(v(1) <= v(2));
                assert!(v(2) <= 10);
                assert!(v(0) >= 0);
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn explanations_are_subsets_of_long_conjunctions() {
        // Irrelevant satisfiable constraints around a 3-edge negative
        // cycle: the explanation must name only the cycle's atoms.
        let atoms = vec![
            Atom::new(x(9), CmpOp::Le, Term::int(4)), // irrelevant
            Atom::new(x(0), CmpOp::Le, Term::sub(x(1), Term::int(1))),
            Atom::new(x(1), CmpOp::Le, Term::sub(x(2), Term::int(1))),
            Atom::new(x(2), CmpOp::Le, Term::sub(x(0), Term::int(1))),
            Atom::new(x(8), CmpOp::Ge, Term::int(2)), // irrelevant
        ];
        match check(&atoms) {
            TheoryVerdict::Unsat(explanation) => {
                assert_eq!(explanation, vec![1, 2, 3], "only the cycle is blamed");
            }
            other => panic!("expected unsat, got {other:?}"),
        }
    }

    #[test]
    fn equalities_become_two_edges() {
        let atoms = vec![
            Atom::new(x(0), CmpOp::Eq, Term::add(x(1), Term::int(5))),
            Atom::new(x(1), CmpOp::Eq, Term::int(2)),
        ];
        match check(&atoms) {
            TheoryVerdict::Sat(model) => {
                assert_eq!(model.get(&Var::new(0)), Some(&7));
                assert_eq!(model.get(&Var::new(1)), Some(&2));
            }
            other => panic!("expected sat, got {other:?}"),
        }
        let contradiction = vec![
            Atom::new(x(0), CmpOp::Eq, Term::add(x(1), Term::int(5))),
            Atom::new(x(0), CmpOp::Eq, x(1)),
        ];
        assert!(matches!(check(&contradiction), TheoryVerdict::Unsat(_)));
    }

    #[test]
    fn fragment_classification_rejects_non_difference_atoms() {
        let dl = DlSolver::new();
        let ne = Atom::new(x(0), CmpOp::Ne, x(1));
        let three_vars = Atom::new(Term::add(x(0), x(1)), CmpOp::Le, x(2));
        let scaled = Atom::new(Term::mul(Term::int(2), x(0)), CmpOp::Le, x(1));
        let product = Atom::new(Term::mul(x(0), x(1)), CmpOp::Le, Term::int(4));
        for atom in [&ne, &three_vars, &scaled, &product] {
            assert!(!dl.can_decide(&[atom]), "{atom:?} is outside the fragment");
        }
        // But bounds, strict comparisons and constants are inside.
        let bound = Atom::new(x(0), CmpOp::Lt, Term::int(3));
        let constant = Atom::new(Term::int(1), CmpOp::Le, Term::int(2));
        let cancelled = Atom::new(Term::add(x(0), x(1)), CmpOp::Le, Term::add(x(1), x(2)));
        for atom in [&bound, &constant, &cancelled] {
            assert!(dl.can_decide(&[atom]), "{atom:?} is inside the fragment");
        }
    }

    #[test]
    fn constant_falsehoods_conflict_immediately() {
        let atoms = vec![Atom::new(Term::int(3), CmpOp::Le, Term::int(1))];
        match check(&atoms) {
            TheoryVerdict::Unsat(explanation) => assert_eq!(explanation, vec![0]),
            other => panic!("expected unsat, got {other:?}"),
        }
    }

    #[test]
    fn retraction_restores_consistency_and_reuses_potentials() {
        let mut dl = DlSolver::new();
        let base = Atom::new(x(0), CmpOp::Le, Term::sub(x(1), Term::int(2)));
        let cycle = Atom::new(x(1), CmpOp::Le, Term::sub(x(0), Term::int(2)));
        dl.push();
        assert!(dl.assert(&base).is_ok());
        dl.push();
        assert!(dl.assert(&cycle).is_err(), "the cycle must conflict");
        assert!(matches!(dl.check(), TheoryVerdict::Unsat(_)));
        dl.retract();
        match dl.check() {
            TheoryVerdict::Sat(model) => {
                let v0 = model.get(&Var::new(0)).copied().expect("assigned");
                let v1 = model.get(&Var::new(1)).copied().expect("assigned");
                assert!(v0 <= v1 - 2, "retracted frame must leave a valid model");
            }
            other => panic!("expected sat after retraction, got {other:?}"),
        }
        // The surviving frame stays incremental: a compatible bound asserts
        // in O(1) against the retained potentials.
        let compatible = Atom::new(x(1), CmpOp::Ge, x(0));
        assert!(dl.assert(&compatible).is_ok());
        assert!(matches!(dl.check(), TheoryVerdict::Sat(_)));
    }

    #[test]
    fn default_gate_reads_like_lemma_sharing() {
        // Cannot mutate the process environment safely in tests; just pin
        // the unset default.
        if std::env::var("CPCF_THEORY_DL").is_err() {
            assert!(default_theory_dl());
        }
    }
}
