//! Quantifier-free first-order formulas over integer terms.
//!
//! The formula language is the target of the symbolic heap translation: the
//! path condition accumulated by symbolic execution is a conjunction of
//! these formulas, and proof-relation queries are validity/satisfiability
//! questions about them.

use std::collections::BTreeSet;
use std::fmt;

use crate::term::{Term, Var};

/// Comparison operators for atomic formulas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equality `=`.
    Eq,
    /// Disequality `≠`.
    Ne,
    /// Strictly less `<`.
    Lt,
    /// Less or equal `≤`.
    Le,
    /// Strictly greater `>`.
    Gt,
    /// Greater or equal `≥`.
    Ge,
}

impl CmpOp {
    /// The operator whose truth value is the negation of `self`.
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// Evaluates the comparison on two integers.
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "distinct",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// An atomic comparison between two terms.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// Left-hand side.
    pub lhs: Term,
    /// The comparison operator.
    pub op: CmpOp,
    /// Right-hand side.
    pub rhs: Term,
}

impl Atom {
    /// Constructs an atom.
    pub fn new(lhs: Term, op: CmpOp, rhs: Term) -> Self {
        Atom { lhs, op, rhs }
    }

    /// The atom with the complementary comparison.
    pub fn negate(&self) -> Atom {
        Atom {
            lhs: self.lhs.clone(),
            op: self.op.negate(),
            rhs: self.rhs.clone(),
        }
    }

    /// Evaluates the atom under an assignment.
    pub fn eval<F>(&self, assignment: &F) -> Option<bool>
    where
        F: Fn(Var) -> Option<i64>,
    {
        Some(
            self.op
                .eval(self.lhs.eval(assignment)?, self.rhs.eval(assignment)?),
        )
    }

    /// Collects the free variables of the atom.
    pub fn collect_vars(&self, out: &mut BTreeSet<Var>) {
        self.lhs.collect_vars(out);
        self.rhs.collect_vars(out);
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} {} {})", self.op, self.lhs, self.rhs)
    }
}

/// A quantifier-free formula.
///
/// ```
/// use folic::formula::Formula;
/// use folic::term::{Term, Var};
///
/// // x0 = 100 - x1  ∧  x0 = 0
/// let x0 = Term::var(Var::new(0));
/// let x1 = Term::var(Var::new(1));
/// let f = Formula::and(vec![
///     Formula::eq(x0.clone(), Term::sub(Term::int(100), x1)),
///     Formula::eq(x0, Term::int(0)),
/// ]);
/// assert_eq!(f.vars().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Formula {
    /// The true formula.
    True,
    /// The false formula.
    False,
    /// An atomic comparison.
    Atom(Atom),
    /// Negation.
    Not(Box<Formula>),
    /// N-ary conjunction.
    And(Vec<Formula>),
    /// N-ary disjunction.
    Or(Vec<Formula>),
    /// Implication.
    Implies(Box<Formula>, Box<Formula>),
    /// Bi-implication.
    Iff(Box<Formula>, Box<Formula>),
}

impl Formula {
    /// An atom `lhs op rhs`.
    pub fn atom(lhs: Term, op: CmpOp, rhs: Term) -> Self {
        Formula::Atom(Atom::new(lhs, op, rhs))
    }

    /// Equality atom.
    pub fn eq(lhs: Term, rhs: Term) -> Self {
        Formula::atom(lhs, CmpOp::Eq, rhs)
    }

    /// Disequality atom.
    pub fn ne(lhs: Term, rhs: Term) -> Self {
        Formula::atom(lhs, CmpOp::Ne, rhs)
    }

    /// Strict less-than atom.
    pub fn lt(lhs: Term, rhs: Term) -> Self {
        Formula::atom(lhs, CmpOp::Lt, rhs)
    }

    /// Less-or-equal atom.
    pub fn le(lhs: Term, rhs: Term) -> Self {
        Formula::atom(lhs, CmpOp::Le, rhs)
    }

    /// Strict greater-than atom.
    pub fn gt(lhs: Term, rhs: Term) -> Self {
        Formula::atom(lhs, CmpOp::Gt, rhs)
    }

    /// Greater-or-equal atom.
    pub fn ge(lhs: Term, rhs: Term) -> Self {
        Formula::atom(lhs, CmpOp::Ge, rhs)
    }

    /// Negation, with trivial simplification of constants.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Formula) -> Self {
        match f {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Not(inner) => *inner,
            other => Formula::Not(Box::new(other)),
        }
    }

    /// Conjunction, flattening nested conjunctions and dropping `True`.
    pub fn and(fs: Vec<Formula>) -> Self {
        let mut out = Vec::new();
        for f in fs {
            match f {
                Formula::True => {}
                Formula::False => return Formula::False,
                Formula::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Formula::True,
            1 => out.pop().expect("len checked"),
            _ => Formula::And(out),
        }
    }

    /// Disjunction, flattening nested disjunctions and dropping `False`.
    pub fn or(fs: Vec<Formula>) -> Self {
        let mut out = Vec::new();
        for f in fs {
            match f {
                Formula::False => {}
                Formula::True => return Formula::True,
                Formula::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Formula::False,
            1 => out.pop().expect("len checked"),
            _ => Formula::Or(out),
        }
    }

    /// Implication `a ⇒ b`.
    pub fn implies(a: Formula, b: Formula) -> Self {
        match (&a, &b) {
            (Formula::False, _) | (_, Formula::True) => Formula::True,
            (Formula::True, _) => b,
            (_, Formula::False) => Formula::not(a),
            _ => Formula::Implies(Box::new(a), Box::new(b)),
        }
    }

    /// Bi-implication `a ⇔ b`.
    pub fn iff(a: Formula, b: Formula) -> Self {
        match (&a, &b) {
            (Formula::True, _) => b,
            (_, Formula::True) => a,
            (Formula::False, _) => Formula::not(b),
            (_, Formula::False) => Formula::not(a),
            _ => Formula::Iff(Box::new(a), Box::new(b)),
        }
    }

    /// Collects the free variables of the formula.
    pub fn collect_vars(&self, out: &mut BTreeSet<Var>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Atom(a) => a.collect_vars(out),
            Formula::Not(f) => f.collect_vars(out),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_vars(out);
                }
            }
            Formula::Implies(a, b) | Formula::Iff(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }

    /// The free variables of the formula.
    pub fn vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    /// Evaluates the formula under a (total, for its variables) assignment.
    ///
    /// Returns `None` if some needed variable is unassigned or arithmetic
    /// overflows.
    pub fn eval<F>(&self, assignment: &F) -> Option<bool>
    where
        F: Fn(Var) -> Option<i64>,
    {
        match self {
            Formula::True => Some(true),
            Formula::False => Some(false),
            Formula::Atom(a) => a.eval(assignment),
            Formula::Not(f) => f.eval(assignment).map(|b| !b),
            Formula::And(fs) => {
                for f in fs {
                    if !f.eval(assignment)? {
                        return Some(false);
                    }
                }
                Some(true)
            }
            Formula::Or(fs) => {
                for f in fs {
                    if f.eval(assignment)? {
                        return Some(true);
                    }
                }
                Some(false)
            }
            Formula::Implies(a, b) => Some(!a.eval(assignment)? || b.eval(assignment)?),
            Formula::Iff(a, b) => Some(a.eval(assignment)? == b.eval(assignment)?),
        }
    }

    /// Converts the formula to negation normal form: negations pushed to the
    /// atoms (and absorbed into the comparison operator), implications and
    /// bi-implications expanded.
    pub fn to_nnf(&self) -> Formula {
        self.nnf(false)
    }

    fn nnf(&self, negated: bool) -> Formula {
        match self {
            Formula::True => {
                if negated {
                    Formula::False
                } else {
                    Formula::True
                }
            }
            Formula::False => {
                if negated {
                    Formula::True
                } else {
                    Formula::False
                }
            }
            Formula::Atom(a) => {
                if negated {
                    Formula::Atom(a.negate())
                } else {
                    Formula::Atom(a.clone())
                }
            }
            Formula::Not(f) => f.nnf(!negated),
            Formula::And(fs) => {
                let converted: Vec<Formula> = fs.iter().map(|f| f.nnf(negated)).collect();
                if negated {
                    Formula::or(converted)
                } else {
                    Formula::and(converted)
                }
            }
            Formula::Or(fs) => {
                let converted: Vec<Formula> = fs.iter().map(|f| f.nnf(negated)).collect();
                if negated {
                    Formula::and(converted)
                } else {
                    Formula::or(converted)
                }
            }
            // The expansions recurse on the subformulas directly with the
            // appropriate polarities instead of materializing the expanded
            // tree first — the old code cloned both subtrees per call (and
            // `Iff` cloned them twice) only to immediately re-walk the copy.
            Formula::Implies(a, b) => {
                if negated {
                    // ¬(a ⇒ b)  ≡  a ∧ ¬b
                    Formula::and(vec![a.nnf(false), b.nnf(true)])
                } else {
                    // a ⇒ b  ≡  ¬a ∨ b
                    Formula::or(vec![a.nnf(true), b.nnf(false)])
                }
            }
            Formula::Iff(a, b) => {
                if negated {
                    // ¬(a ⇔ b)  ≡  (a ∧ ¬b) ∨ (b ∧ ¬a)
                    Formula::or(vec![
                        Formula::and(vec![a.nnf(false), b.nnf(true)]),
                        Formula::and(vec![b.nnf(false), a.nnf(true)]),
                    ])
                } else {
                    // a ⇔ b  ≡  (¬a ∨ b) ∧ (¬b ∨ a)
                    Formula::and(vec![
                        Formula::or(vec![a.nnf(true), b.nnf(false)]),
                        Formula::or(vec![b.nnf(true), a.nnf(false)]),
                    ])
                }
            }
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => f.write_str("true"),
            Formula::False => f.write_str("false"),
            Formula::Atom(a) => write!(f, "{a}"),
            Formula::Not(inner) => write!(f, "(not {inner})"),
            Formula::And(fs) => {
                f.write_str("(and")?;
                for g in fs {
                    write!(f, " {g}")?;
                }
                f.write_str(")")
            }
            Formula::Or(fs) => {
                f.write_str("(or")?;
                for g in fs {
                    write!(f, " {g}")?;
                }
                f.write_str(")")
            }
            Formula::Implies(a, b) => write!(f, "(=> {a} {b})"),
            Formula::Iff(a, b) => write!(f, "(= {a} {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x(i: u32) -> Term {
        Term::var(Var::new(i))
    }

    #[test]
    fn smart_constructors_simplify() {
        assert_eq!(Formula::and(vec![]), Formula::True);
        assert_eq!(Formula::or(vec![]), Formula::False);
        assert_eq!(
            Formula::and(vec![Formula::True, Formula::eq(x(0), Term::int(1))]),
            Formula::eq(x(0), Term::int(1))
        );
        assert_eq!(
            Formula::and(vec![Formula::False, Formula::eq(x(0), Term::int(1))]),
            Formula::False
        );
        assert_eq!(Formula::not(Formula::not(Formula::True)), Formula::True);
    }

    #[test]
    fn nnf_pushes_negation_into_atoms() {
        let f = Formula::not(Formula::And(vec![
            Formula::eq(x(0), Term::int(1)),
            Formula::lt(x(1), Term::int(2)),
        ]));
        let nnf = f.to_nnf();
        assert_eq!(
            nnf,
            Formula::Or(vec![
                Formula::ne(x(0), Term::int(1)),
                Formula::ge(x(1), Term::int(2)),
            ])
        );
    }

    #[test]
    fn nnf_expands_implication() {
        let f = Formula::Implies(
            Box::new(Formula::eq(x(0), Term::int(0))),
            Box::new(Formula::eq(x(1), Term::int(1))),
        );
        let nnf = f.to_nnf();
        assert_eq!(
            nnf,
            Formula::Or(vec![
                Formula::ne(x(0), Term::int(0)),
                Formula::eq(x(1), Term::int(1)),
            ])
        );
    }

    #[test]
    fn eval_respects_semantics() {
        let f = Formula::Implies(
            Box::new(Formula::eq(x(0), Term::int(0))),
            Box::new(Formula::eq(x(1), Term::int(1))),
        );
        // x0 = 0, x1 = 1: antecedent and consequent hold.
        let sat = f.eval(&|v| Some(if v.index() == 0 { 0 } else { 1 }));
        assert_eq!(sat, Some(true));
        // x0 = 0, x1 = 5: antecedent holds, consequent fails.
        let unsat = f.eval(&|v| Some(if v.index() == 0 { 0 } else { 5 }));
        assert_eq!(unsat, Some(false));
        // x0 = 3: antecedent fails, implication holds vacuously.
        let vac = f.eval(&|v| Some(if v.index() == 0 { 3 } else { 5 }));
        assert_eq!(vac, Some(true));
    }

    #[test]
    fn nnf_preserves_truth_value() {
        let f = Formula::Iff(
            Box::new(Formula::lt(x(0), x(1))),
            Box::new(Formula::not(Formula::ge(x(0), x(1)))),
        );
        let nnf = f.to_nnf();
        for a in -3..3 {
            for b in -3..3 {
                let assignment = |v: Var| Some(if v.index() == 0 { a } else { b });
                assert_eq!(f.eval(&assignment), nnf.eval(&assignment));
            }
        }
    }

    #[test]
    fn cmp_op_negation_is_involutive() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_eq!(op.negate().negate(), op);
            // negation flips the truth value on every input pair
            for a in -2..=2 {
                for b in -2..=2 {
                    assert_eq!(op.eval(a, b), !op.negate().eval(a, b));
                }
            }
        }
    }
}
