//! Thread-local probe counters for theory-layer events.
//!
//! Several counters this crate reports live in code with no statistics
//! handle in scope: the interval-propagation round ceiling and the
//! model-reconstruction fallback are free functions deep in [`crate::lia`],
//! and the theory-module dispatcher runs identically under the persistent
//! core and the per-check scratch engine. Instead of threading a counter
//! through every signature, those sites bump a thread-local cell here and
//! [`crate::solver::Solver::check`] attributes the *delta* across each
//! check to its own [`crate::solver::SolverStats`]. Workers are
//! thread-confined (one solver per worker thread), so the delta accounting
//! never mixes two solvers' events.

use std::cell::Cell;

/// A snapshot of the thread-local theory-layer counters. All counters are
/// cumulative for the current thread; consumers subtract snapshots (see
/// [`TheoryProbes::delta_since`]) to attribute events to one check.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TheoryProbes {
    /// Conjunctions routed to the difference-logic module.
    pub dl_checks: u64,
    /// Difference-logic refutations (negative constraint cycles found).
    pub dl_conflicts: u64,
    /// Potential-repair edge relaxations performed by the difference-logic
    /// module across all checks.
    pub dl_propagations: u64,
    /// Dispatcher routings to the difference-logic module (equals
    /// `dl_checks`; kept separate so the dispatch split is explicit).
    pub theory_dispatch_dl: u64,
    /// Dispatcher routings to the general LIA module (conjunctions outside
    /// the difference fragment, or every conjunction when
    /// `CPCF_THEORY_DL=off`).
    pub theory_dispatch_lia: u64,
    /// Lazy-SMT loops that exhausted `TheoryConfig::max_iterations` and
    /// degraded the verdict to `Unknown`.
    pub theory_iterations_exhausted: u64,
    /// Interval-propagation fixpoint loops cut off by the
    /// `MAX_PROPAGATION_ROUNDS` ceiling (the difference-cycle divergence
    /// symptom the DL module removes).
    pub propagation_ceiling_hits: u64,
    /// Models found by the LIA search that failed re-verification after
    /// eliminated variables were reconstructed (the verdict conservatively
    /// degrades to `Unknown`).
    pub model_reconstruction_failures: u64,
}

impl TheoryProbes {
    /// Field-wise difference `self − earlier`, for attributing the events
    /// between two snapshots to one solver check.
    pub fn delta_since(&self, earlier: &TheoryProbes) -> TheoryProbes {
        TheoryProbes {
            dl_checks: self.dl_checks - earlier.dl_checks,
            dl_conflicts: self.dl_conflicts - earlier.dl_conflicts,
            dl_propagations: self.dl_propagations - earlier.dl_propagations,
            theory_dispatch_dl: self.theory_dispatch_dl - earlier.theory_dispatch_dl,
            theory_dispatch_lia: self.theory_dispatch_lia - earlier.theory_dispatch_lia,
            theory_iterations_exhausted: self.theory_iterations_exhausted
                - earlier.theory_iterations_exhausted,
            propagation_ceiling_hits: self.propagation_ceiling_hits
                - earlier.propagation_ceiling_hits,
            model_reconstruction_failures: self.model_reconstruction_failures
                - earlier.model_reconstruction_failures,
        }
    }
}

thread_local! {
    static PROBES: Cell<TheoryProbes> = const { Cell::new(TheoryProbes {
        dl_checks: 0,
        dl_conflicts: 0,
        dl_propagations: 0,
        theory_dispatch_dl: 0,
        theory_dispatch_lia: 0,
        theory_iterations_exhausted: 0,
        propagation_ceiling_hits: 0,
        model_reconstruction_failures: 0,
    }) };
}

/// The cumulative probe counters of the current thread.
pub fn totals() -> TheoryProbes {
    PROBES.with(|cell| cell.get())
}

/// Applies one mutation to the thread's counters.
pub(crate) fn bump(f: impl FnOnce(&mut TheoryProbes)) {
    PROBES.with(|cell| {
        let mut probes = cell.get();
        f(&mut probes);
        cell.set(probes);
    });
}
