//! Normalisation of terms into linear expressions.
//!
//! The theory solver works on linear integer expressions `Σ aᵢ·xᵢ + c`.
//! Products of two non-constant subterms cannot be represented linearly;
//! they are reported back to the caller (the LIA solver handles them with a
//! dedicated product constraint).

use std::collections::BTreeMap;
use std::fmt;

use crate::term::{Term, Var};

/// A linear integer expression `Σ aᵢ·xᵢ + constant` with `i64` coefficients.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LinExpr {
    /// Non-zero coefficients per variable.
    coeffs: BTreeMap<Var, i64>,
    /// The constant offset.
    constant: i64,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> Self {
        LinExpr::default()
    }

    /// A constant expression.
    pub fn constant(c: i64) -> Self {
        LinExpr {
            coeffs: BTreeMap::new(),
            constant: c,
        }
    }

    /// The expression `1·v`.
    pub fn variable(v: Var) -> Self {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(v, 1);
        LinExpr {
            coeffs,
            constant: 0,
        }
    }

    /// The constant part of the expression.
    pub fn constant_part(&self) -> i64 {
        self.constant
    }

    /// Iterates over `(variable, coefficient)` pairs with non-zero coefficients.
    pub fn iter(&self) -> impl Iterator<Item = (Var, i64)> + '_ {
        self.coeffs.iter().map(|(v, c)| (*v, *c))
    }

    /// The coefficient of `v` (0 if absent).
    pub fn coeff(&self, v: Var) -> i64 {
        self.coeffs.get(&v).copied().unwrap_or(0)
    }

    /// Number of variables with non-zero coefficient.
    pub fn num_vars(&self) -> usize {
        self.coeffs.len()
    }

    /// True if the expression is a constant.
    pub fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// If the expression is constant, its value.
    pub fn as_constant(&self) -> Option<i64> {
        if self.is_constant() {
            Some(self.constant)
        } else {
            None
        }
    }

    /// Adds `coeff·v` to the expression in place. Returns `None` on overflow.
    pub fn add_term(&mut self, v: Var, coeff: i64) -> Option<()> {
        let entry = self.coeffs.entry(v).or_insert(0);
        *entry = entry.checked_add(coeff)?;
        if *entry == 0 {
            self.coeffs.remove(&v);
        }
        Some(())
    }

    /// Adds a constant in place. Returns `None` on overflow.
    pub fn add_constant(&mut self, c: i64) -> Option<()> {
        self.constant = self.constant.checked_add(c)?;
        Some(())
    }

    /// `self + other`, or `None` on overflow.
    pub fn checked_add(&self, other: &LinExpr) -> Option<LinExpr> {
        let mut out = self.clone();
        for (v, c) in other.iter() {
            out.add_term(v, c)?;
        }
        out.add_constant(other.constant)?;
        Some(out)
    }

    /// `self - other`, or `None` on overflow.
    pub fn checked_sub(&self, other: &LinExpr) -> Option<LinExpr> {
        self.checked_add(&other.checked_scale(-1)?)
    }

    /// `k·self`, or `None` on overflow.
    pub fn checked_scale(&self, k: i64) -> Option<LinExpr> {
        let mut coeffs = BTreeMap::new();
        for (v, c) in self.iter() {
            let scaled = c.checked_mul(k)?;
            if scaled != 0 {
                coeffs.insert(v, scaled);
            }
        }
        Some(LinExpr {
            coeffs,
            constant: self.constant.checked_mul(k)?,
        })
    }

    /// Evaluates the expression under an assignment; `None` if a variable is
    /// missing or the arithmetic overflows.
    pub fn eval<F>(&self, assignment: &F) -> Option<i64>
    where
        F: Fn(Var) -> Option<i64>,
    {
        let mut total = self.constant;
        for (v, c) in self.iter() {
            let value = assignment(v)?;
            total = total.checked_add(c.checked_mul(value)?)?;
        }
        Some(total)
    }

    /// The set of variables mentioned by the expression.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.coeffs.keys().copied()
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in self.iter() {
            if first {
                write!(f, "{c}*{v}")?;
                first = false;
            } else if c >= 0 {
                write!(f, " + {c}*{v}")?;
            } else {
                write!(f, " - {}*{v}", -c)?;
            }
        }
        if first {
            write!(f, "{}", self.constant)
        } else if self.constant > 0 {
            write!(f, " + {}", self.constant)
        } else if self.constant < 0 {
            write!(f, " - {}", -self.constant)
        } else {
            Ok(())
        }
    }
}

/// The result of linearising a term: either a linear expression, or a linear
/// expression plus product sub-terms `target = a·b` that could not be folded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Linearised {
    /// The term is linear.
    Linear(LinExpr),
    /// The term contains a genuine (non-constant × non-constant) product.
    NonLinear,
}

/// Attempts to normalise a [`Term`] into a [`LinExpr`].
///
/// Products are folded when at least one side reduces to a constant;
/// otherwise `Linearised::NonLinear` is returned and the caller must
/// introduce a product constraint.
pub fn linearise(term: &Term) -> Linearised {
    match linearise_inner(term) {
        Some(Some(e)) => Linearised::Linear(e),
        _ => Linearised::NonLinear,
    }
}

/// `None` = overflow, `Some(None)` = non-linear, `Some(Some(e))` = linear.
fn linearise_inner(term: &Term) -> Option<Option<LinExpr>> {
    match term {
        Term::Int(n) => Some(Some(LinExpr::constant(*n))),
        Term::Var(v) => Some(Some(LinExpr::variable(*v))),
        Term::Add(a, b) => match (linearise_inner(a)?, linearise_inner(b)?) {
            (Some(a), Some(b)) => a.checked_add(&b).map(Some),
            _ => Some(None),
        },
        Term::Sub(a, b) => match (linearise_inner(a)?, linearise_inner(b)?) {
            (Some(a), Some(b)) => a.checked_sub(&b).map(Some),
            _ => Some(None),
        },
        Term::Neg(a) => match linearise_inner(a)? {
            Some(a) => a.checked_scale(-1).map(Some),
            None => Some(None),
        },
        Term::Mul(a, b) => match (linearise_inner(a)?, linearise_inner(b)?) {
            (Some(a), Some(b)) => {
                if let Some(k) = a.as_constant() {
                    b.checked_scale(k).map(Some)
                } else if let Some(k) = b.as_constant() {
                    a.checked_scale(k).map(Some)
                } else {
                    Some(None)
                }
            }
            _ => Some(None),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Var {
        Var::new(i)
    }

    #[test]
    fn linearise_simple_sum() {
        // 100 - x0
        let t = Term::sub(Term::int(100), Term::var(v(0)));
        match linearise(&t) {
            Linearised::Linear(e) => {
                assert_eq!(e.coeff(v(0)), -1);
                assert_eq!(e.constant_part(), 100);
            }
            other => panic!("expected linear, got {other:?}"),
        }
    }

    #[test]
    fn linearise_scales_constant_products() {
        // 3 * (x1 + 2)
        let t = Term::mul(Term::int(3), Term::add(Term::var(v(1)), Term::int(2)));
        match linearise(&t) {
            Linearised::Linear(e) => {
                assert_eq!(e.coeff(v(1)), 3);
                assert_eq!(e.constant_part(), 6);
            }
            other => panic!("expected linear, got {other:?}"),
        }
    }

    #[test]
    fn linearise_rejects_var_products() {
        let t = Term::mul(Term::var(v(0)), Term::var(v(1)));
        assert_eq!(linearise(&t), Linearised::NonLinear);
    }

    #[test]
    fn cancelling_coefficients_are_removed() {
        // x0 - x0 is the constant 0
        let t = Term::sub(Term::var(v(0)), Term::var(v(0)));
        match linearise(&t) {
            Linearised::Linear(e) => {
                assert!(e.is_constant());
                assert_eq!(e.as_constant(), Some(0));
            }
            other => panic!("expected linear, got {other:?}"),
        }
    }

    #[test]
    fn eval_matches_term_eval() {
        let t = Term::add(
            Term::mul(Term::int(2), Term::var(v(0))),
            Term::sub(Term::var(v(1)), Term::int(5)),
        );
        let assignment = |var: Var| Some(if var.index() == 0 { 7 } else { 3 });
        let lin = match linearise(&t) {
            Linearised::Linear(e) => e,
            other => panic!("expected linear, got {other:?}"),
        };
        assert_eq!(lin.eval(&assignment), t.eval(&assignment));
    }
}
