//! Theory solver for (quasi-)linear integer arithmetic.
//!
//! The theory solver decides conjunctions of integer comparisons. Its job in
//! the lazy SMT loop is twofold:
//!
//! 1. decide whether the conjunction of theory literals selected by the SAT
//!    solver is consistent, and
//! 2. when it is, produce an explicit integer **model** — the model is what
//!    becomes the concrete counterexample after it is plugged back into the
//!    symbolic heap.
//!
//! The algorithm combines
//!
//! * fraction-free Gaussian elimination over the equality constraints (with a
//!   GCD divisibility test) for fast refutation of inconsistent equality
//!   chains — the common case for path conditions,
//! * interval (bounds) propagation over all constraints, and
//! * a backtracking, small-values-first model search with forced-assignment
//!   propagation, which handles disequalities and the product constraints
//!   introduced by multiplication of two unknowns.
//!
//! The search is complete up to the configured value bound; when it gives up
//! it reports [`LiaResult::Unknown`] rather than guessing, which is exactly
//! the "relative" part of relative completeness.

use std::collections::{BTreeMap, BTreeSet};

use crate::formula::{Atom, CmpOp};
use crate::linear::{linearise, LinExpr, Linearised};
use crate::term::{Term, Var};
use crate::theory::{TheoryModuleStats, TheorySolver, TheoryVerdict};

/// Relation of a linear expression to zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintOp {
    /// `expr = 0`
    Eq,
    /// `expr ≤ 0`
    Le,
    /// `expr ≠ 0`
    Ne,
}

/// A linear constraint `expr op 0`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinearConstraint {
    /// The linear expression compared against zero.
    pub expr: LinExpr,
    /// The relation.
    pub op: ConstraintOp,
}

/// A product constraint `result = left · right` where both factors are
/// non-constant. `result` is always a fresh variable introduced during
/// flattening.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProductConstraint {
    /// Variable equal to the product.
    pub result: Var,
    /// Left factor.
    pub left: LinExpr,
    /// Right factor.
    pub right: LinExpr,
}

/// A conjunction of linear and product constraints.
#[derive(Debug, Clone, Default)]
pub struct LiaProblem {
    /// Linear constraints.
    pub linear: Vec<LinearConstraint>,
    /// Product constraints.
    pub products: Vec<ProductConstraint>,
    /// All variables mentioned (including fresh product variables).
    pub vars: BTreeSet<Var>,
    /// Variables that appeared in the original atoms (not introduced by
    /// flattening); these are the ones reported in models.
    pub original_vars: BTreeSet<Var>,
}

/// Result of a theory consistency check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LiaResult {
    /// Consistent, with a witnessing integer assignment.
    Sat(BTreeMap<Var, i64>),
    /// Inconsistent.
    Unsat,
    /// The solver could not decide within its budget.
    Unknown,
}

/// Tuning knobs for the model search.
#[derive(Debug, Clone, Copy)]
pub struct LiaConfig {
    /// Absolute bound on enumerated values for otherwise-unbounded variables.
    pub value_bound: i64,
    /// Maximum number of search nodes explored before giving up.
    pub node_budget: u64,
}

impl Default for LiaConfig {
    fn default() -> Self {
        LiaConfig {
            value_bound: 256,
            node_budget: 20_000,
        }
    }
}

/// Errors that can occur while building a [`LiaProblem`] from atoms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// Coefficient arithmetic overflowed `i64`.
    Overflow,
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Overflow => write!(f, "coefficient arithmetic overflowed"),
        }
    }
}

impl std::error::Error for BuildError {}

impl LiaProblem {
    /// Builds a problem from a conjunction of atoms.
    pub fn from_atoms(atoms: &[Atom]) -> Result<LiaProblem, BuildError> {
        let refs: Vec<&Atom> = atoms.iter().collect();
        LiaProblem::from_atom_refs(&refs)
    }

    /// [`LiaProblem::from_atoms`] over borrowed atoms, for callers (the
    /// hash-consing solver core) whose atoms live in an arena and should not
    /// be cloned per check.
    pub fn from_atom_refs(atoms: &[&Atom]) -> Result<LiaProblem, BuildError> {
        let mut problem = LiaProblem::default();
        let mut original_vars = BTreeSet::new();
        for atom in atoms {
            atom.collect_vars(&mut original_vars);
        }
        problem.original_vars = original_vars.clone();
        let mut fresh = original_vars
            .iter()
            .next_back()
            .map(|v| v.index() + 1)
            .unwrap_or(0);

        for atom in atoms {
            let lhs = flatten(&atom.lhs, &mut fresh, &mut problem)?;
            let rhs = flatten(&atom.rhs, &mut fresh, &mut problem)?;
            let diff = lhs.checked_sub(&rhs).ok_or(BuildError::Overflow)?;
            match atom.op {
                CmpOp::Eq => problem.push_linear(diff, ConstraintOp::Eq),
                CmpOp::Ne => problem.push_linear(diff, ConstraintOp::Ne),
                CmpOp::Le => problem.push_linear(diff, ConstraintOp::Le),
                CmpOp::Lt => {
                    let mut shifted = diff;
                    shifted.add_constant(1).ok_or(BuildError::Overflow)?;
                    problem.push_linear(shifted, ConstraintOp::Le);
                }
                CmpOp::Ge => {
                    let negated = diff.checked_scale(-1).ok_or(BuildError::Overflow)?;
                    problem.push_linear(negated, ConstraintOp::Le);
                }
                CmpOp::Gt => {
                    let mut negated = diff.checked_scale(-1).ok_or(BuildError::Overflow)?;
                    negated.add_constant(1).ok_or(BuildError::Overflow)?;
                    problem.push_linear(negated, ConstraintOp::Le);
                }
            }
        }
        Ok(problem)
    }

    fn push_linear(&mut self, expr: LinExpr, op: ConstraintOp) {
        for v in expr.vars() {
            self.vars.insert(v);
        }
        self.linear.push(LinearConstraint { expr, op });
    }

    fn push_product(&mut self, result: Var, left: LinExpr, right: LinExpr) {
        self.vars.insert(result);
        for v in left.vars().chain(right.vars()) {
            self.vars.insert(v);
        }
        self.products.push(ProductConstraint {
            result,
            left,
            right,
        });
    }

    /// Checks an assignment against every constraint of the problem.
    pub fn satisfied_by(&self, assignment: &BTreeMap<Var, i64>) -> bool {
        let lookup = |v: Var| assignment.get(&v).copied();
        for c in &self.linear {
            let Some(value) = c.expr.eval(&lookup) else {
                return false;
            };
            let holds = match c.op {
                ConstraintOp::Eq => value == 0,
                ConstraintOp::Le => value <= 0,
                ConstraintOp::Ne => value != 0,
            };
            if !holds {
                return false;
            }
        }
        for p in &self.products {
            let (Some(result), Some(left), Some(right)) = (
                lookup(p.result),
                p.left.eval(&lookup),
                p.right.eval(&lookup),
            ) else {
                return false;
            };
            match left.checked_mul(right) {
                Some(product) if product == result => {}
                _ => return false,
            }
        }
        true
    }
}

/// Flattens a term into a linear expression, introducing product constraints
/// for non-constant multiplications.
fn flatten(term: &Term, fresh: &mut u32, problem: &mut LiaProblem) -> Result<LinExpr, BuildError> {
    match term {
        Term::Mul(a, b) => {
            // Try full linearisation first: constant folding may remove the product.
            if let Linearised::Linear(e) = linearise(term) {
                return Ok(e);
            }
            let left = flatten(a, fresh, problem)?;
            let right = flatten(b, fresh, problem)?;
            if let Some(k) = left.as_constant() {
                return right.checked_scale(k).ok_or(BuildError::Overflow);
            }
            if let Some(k) = right.as_constant() {
                return left.checked_scale(k).ok_or(BuildError::Overflow);
            }
            let result = Var::new(*fresh);
            *fresh += 1;
            problem.push_product(result, left, right);
            Ok(LinExpr::variable(result))
        }
        Term::Add(a, b) => {
            let left = flatten(a, fresh, problem)?;
            let right = flatten(b, fresh, problem)?;
            left.checked_add(&right).ok_or(BuildError::Overflow)
        }
        Term::Sub(a, b) => {
            let left = flatten(a, fresh, problem)?;
            let right = flatten(b, fresh, problem)?;
            left.checked_sub(&right).ok_or(BuildError::Overflow)
        }
        Term::Neg(a) => {
            let inner = flatten(a, fresh, problem)?;
            inner.checked_scale(-1).ok_or(BuildError::Overflow)
        }
        Term::Int(n) => Ok(LinExpr::constant(*n)),
        Term::Var(v) => Ok(LinExpr::variable(*v)),
    }
}

// ---------------------------------------------------------------------------
// Equality-substitution presolve.
// ---------------------------------------------------------------------------

/// The result of presolving: a reduced problem plus the eliminated variables
/// and the expressions (over the remaining variables at elimination time)
/// defining them.
#[derive(Debug, Clone)]
struct Presolved {
    problem: LiaProblem,
    /// `(var, expr)` pairs in elimination order; `var = expr` holds.
    eliminated: Vec<(Var, LinExpr)>,
}

/// Eliminates variables defined by equalities with a ±1 coefficient,
/// substituting them through every other constraint. Returns `None` when a
/// constraint reduces to a contradiction.
fn presolve(problem: &LiaProblem) -> Option<Presolved> {
    let mut problem = problem.clone();
    let mut eliminated: Vec<(Var, LinExpr)> = Vec::new();
    // Variables appearing as the result of a product constraint are kept: the
    // product machinery owns them.
    let product_results: BTreeSet<Var> = problem.products.iter().map(|p| p.result).collect();

    loop {
        // Check for constant constraints and find a candidate to eliminate.
        let mut candidate: Option<(usize, Var, LinExpr)> = None;
        for (index, constraint) in problem.linear.iter().enumerate() {
            if let Some(value) = constraint.expr.as_constant() {
                let holds = match constraint.op {
                    ConstraintOp::Eq => value == 0,
                    ConstraintOp::Le => value <= 0,
                    ConstraintOp::Ne => value != 0,
                };
                if !holds {
                    return None;
                }
                continue;
            }
            if constraint.op != ConstraintOp::Eq || candidate.is_some() {
                continue;
            }
            // Look for a variable with coefficient ±1 not used as a product result.
            for (var, coeff) in constraint.expr.iter() {
                if (coeff == 1 || coeff == -1) && !product_results.contains(&var) {
                    // var = -(expr - coeff·var) / coeff
                    let mut rest = constraint.expr.clone();
                    if rest.add_term(var, -coeff).is_none() {
                        continue;
                    }
                    let Some(definition) = rest.checked_scale(-coeff) else {
                        continue;
                    };
                    candidate = Some((index, var, definition));
                    break;
                }
            }
        }
        let Some((index, var, definition)) = candidate else {
            break;
        };
        // Two-pass substitution: compute every affected expression first so
        // arithmetic overflow aborts cleanly without cloning the problem.
        let Some(()) = (|| {
            let mut new_linear: Vec<(usize, LinExpr)> = Vec::new();
            for (i, c) in problem.linear.iter().enumerate() {
                if i != index && c.expr.coeff(var) != 0 {
                    new_linear.push((i, substitute_expr(&c.expr, var, &definition)?));
                }
            }
            let mut new_products: Vec<(usize, LinExpr, LinExpr)> = Vec::new();
            for (i, p) in problem.products.iter().enumerate() {
                if p.left.coeff(var) != 0 || p.right.coeff(var) != 0 {
                    new_products.push((
                        i,
                        substitute_expr(&p.left, var, &definition)?,
                        substitute_expr(&p.right, var, &definition)?,
                    ));
                }
            }
            for (i, expr) in new_linear {
                problem.linear[i].expr = expr;
            }
            for (i, left, right) in new_products {
                problem.products[i].left = left;
                problem.products[i].right = right;
            }
            Some(())
        })() else {
            break;
        };
        problem.linear.swap_remove(index);
        problem.vars.remove(&var);
        // Drop constraints that became trivially true; contradictions are
        // kept and detected at the top of the next iteration.
        problem.linear.retain(|c| match c.expr.as_constant() {
            Some(value) => match c.op {
                ConstraintOp::Eq => value != 0,
                ConstraintOp::Le => value > 0,
                ConstraintOp::Ne => value == 0,
            },
            None => true,
        });
        eliminated.push((var, definition));
    }
    Some(Presolved {
        problem,
        eliminated,
    })
}

fn substitute_expr(expr: &LinExpr, var: Var, definition: &LinExpr) -> Option<LinExpr> {
    let coeff = expr.coeff(var);
    if coeff == 0 {
        return Some(expr.clone());
    }
    let mut out = expr.clone();
    out.add_term(var, -coeff)?;
    out.checked_add(&definition.checked_scale(coeff)?)
}

// ---------------------------------------------------------------------------
// Gaussian elimination over the equality constraints.
// ---------------------------------------------------------------------------

/// A sparse equality row `Σ coeffs + constant = 0`: coefficient terms sorted
/// by variable, with zero coefficients elided.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct EqRow {
    terms: Vec<(Var, i128)>,
    constant: i128,
}

/// What normalising a row by the GCD of its coefficients revealed.
enum RowNorm {
    /// The row still has coefficient terms.
    Live,
    /// `0 = 0`: redundant, discard.
    Trivial,
    /// `0 = c` with `c ≠ 0`, or GCD does not divide the constant: infeasible.
    Infeasible,
}

impl EqRow {
    /// Divides out the GCD of the coefficients and applies the divisibility
    /// test (the GCD of the coefficients must divide the constant).
    fn normalise(&mut self) -> RowNorm {
        if self.terms.is_empty() {
            return if self.constant == 0 {
                RowNorm::Trivial
            } else {
                RowNorm::Infeasible
            };
        }
        let mut gcd = 0i128;
        for &(_, c) in &self.terms {
            gcd = gcd_i128(gcd, c);
        }
        if gcd > 1 {
            if self.constant % gcd != 0 {
                return RowNorm::Infeasible;
            }
            for term in &mut self.terms {
                term.1 /= gcd;
            }
            self.constant /= gcd;
        }
        RowNorm::Live
    }

    /// The leading (smallest) variable; the row must be live.
    fn lead(&self) -> Var {
        self.terms[0].0
    }

    /// `pivot·self - factor·other` (fraction-free elimination step), merging
    /// the sorted term lists. Returns `None` on arithmetic overflow.
    fn combine(&self, pivot: i128, other: &EqRow, factor: i128) -> Option<EqRow> {
        let mut terms = Vec::with_capacity(self.terms.len() + other.terms.len());
        let (mut i, mut j) = (0, 0);
        while i < self.terms.len() || j < other.terms.len() {
            let (var, value) = match (self.terms.get(i), other.terms.get(j)) {
                (Some(&(va, ca)), Some(&(vb, cb))) if va == vb => {
                    i += 1;
                    j += 1;
                    (
                        va,
                        pivot
                            .checked_mul(ca)?
                            .checked_sub(factor.checked_mul(cb)?)?,
                    )
                }
                (Some(&(va, ca)), Some(&(vb, _))) if va < vb => {
                    i += 1;
                    (va, pivot.checked_mul(ca)?)
                }
                (Some(&(va, ca)), None) => {
                    i += 1;
                    (va, pivot.checked_mul(ca)?)
                }
                (_, Some(&(vb, cb))) => {
                    j += 1;
                    (vb, factor.checked_mul(cb)?.checked_neg()?)
                }
                (None, None) => unreachable!(),
            };
            if value != 0 {
                terms.push((var, value));
            }
        }
        let constant = pivot
            .checked_mul(self.constant)?
            .checked_sub(factor.checked_mul(other.constant)?)?;
        Some(EqRow { terms, constant })
    }
}

/// Returns `true` if the equality subsystem is provably infeasible (over the
/// rationals or by integer divisibility).
///
/// Maintains a sparse row-echelon basis keyed by leading variable and
/// reduces each equality against it, normalising by the coefficient GCD
/// after every step. This keeps the work proportional to the actual fill-in
/// (path-condition equality chains are 2–3 terms wide) instead of the dense
/// `O(vars² · rows)` of a full tableau, which dominated whole-corpus
/// analysis time.
fn equalities_infeasible(problem: &LiaProblem) -> bool {
    let mut pending: Vec<EqRow> = Vec::new();
    for c in &problem.linear {
        if c.op != ConstraintOp::Eq {
            continue;
        }
        let terms: Vec<(Var, i128)> = c.expr.iter().map(|(v, k)| (v, k as i128)).collect();
        pending.push(EqRow {
            terms,
            constant: c.expr.constant_part() as i128,
        });
    }
    if pending.is_empty() {
        return false;
    }
    // Identical constraints are common across sliced conjunctions; a cheap
    // dedup avoids reducing them to `0 = 0` one merge at a time.
    pending.sort();
    pending.dedup();

    let mut echelon: Vec<EqRow> = Vec::new();
    let mut lead_of: BTreeMap<Var, usize> = BTreeMap::new();
    for mut row in pending {
        loop {
            match row.normalise() {
                RowNorm::Infeasible => return true,
                RowNorm::Trivial => break,
                RowNorm::Live => {}
            }
            let Some(&basis_index) = lead_of.get(&row.lead()) else {
                lead_of.insert(row.lead(), echelon.len());
                echelon.push(row);
                break;
            };
            let basis = &echelon[basis_index];
            let pivot = basis.terms[0].1;
            let factor = row.terms[0].1;
            match row.combine(pivot, basis, factor) {
                Some(reduced) => row = reduced,
                None => return false, // give up on overflow; search will decide
            }
        }
    }
    false
}

fn gcd_i128(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let tmp = a % b;
        a = b;
        b = tmp;
    }
    a
}

// ---------------------------------------------------------------------------
// Bounds propagation and model search.
// ---------------------------------------------------------------------------

type Bounds = BTreeMap<Var, (Option<i64>, Option<i64>)>;

#[derive(Debug, Clone)]
struct SearchState {
    assignment: BTreeMap<Var, i64>,
    bounds: Bounds,
}

#[derive(Debug, PartialEq, Eq)]
enum SearchOutcome {
    Model(BTreeMap<Var, i64>),
    NoModel,
    GaveUp,
}

fn div_floor(a: i128, b: i128) -> i128 {
    let quotient = a / b;
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        quotient - 1
    } else {
        quotient
    }
}

fn div_ceil(a: i128, b: i128) -> i128 {
    let quotient = a / b;
    if (a % b != 0) && ((a < 0) == (b < 0)) {
        quotient + 1
    } else {
        quotient
    }
}

fn clamp_i64(value: i128) -> i64 {
    value.clamp(i64::MIN as i128, i64::MAX as i128) as i64
}

/// Minimum and maximum of `coeff·x` where `x` ranges over `[lo, hi]`.
fn scaled_range(coeff: i64, lo: Option<i64>, hi: Option<i64>) -> (Option<i128>, Option<i128>) {
    let coeff = coeff as i128;
    let lo = lo.map(|v| v as i128 * coeff);
    let hi = hi.map(|v| v as i128 * coeff);
    if coeff >= 0 {
        (lo, hi)
    } else {
        (hi, lo)
    }
}

fn add_opt(a: Option<i128>, b: Option<i128>) -> Option<i128> {
    match (a, b) {
        (Some(x), Some(y)) => x.checked_add(y),
        _ => None,
    }
}

/// Minimum and maximum value of a linear expression given the current
/// assignment and bounds. `None` means unbounded in that direction.
fn expr_range(expr: &LinExpr, state: &SearchState) -> (Option<i128>, Option<i128>) {
    let mut min = Some(expr.constant_part() as i128);
    let mut max = Some(expr.constant_part() as i128);
    for (var, coeff) in expr.iter() {
        if let Some(&value) = state.assignment.get(&var) {
            let contribution = Some(coeff as i128 * value as i128);
            min = add_opt(min, contribution);
            max = add_opt(max, contribution);
        } else {
            let (lo, hi) = state.bounds.get(&var).copied().unwrap_or((None, None));
            let (cmin, cmax) = scaled_range(coeff, lo, hi);
            min = add_opt(min, cmin);
            max = add_opt(max, cmax);
        }
    }
    (min, max)
}

/// Tightens the bound of `var`, returning `false` on an empty domain.
fn tighten(
    state: &mut SearchState,
    var: Var,
    new_lo: Option<i64>,
    new_hi: Option<i64>,
) -> Option<bool> {
    let entry = state.bounds.entry(var).or_insert((None, None));
    let mut changed = false;
    if let Some(lo) = new_lo {
        if entry.0.is_none_or(|old| lo > old) {
            entry.0 = Some(lo);
            changed = true;
        }
    }
    if let Some(hi) = new_hi {
        if entry.1.is_none_or(|old| hi < old) {
            entry.1 = Some(hi);
            changed = true;
        }
    }
    if let (Some(lo), Some(hi)) = *entry {
        if lo > hi {
            return None;
        }
    }
    Some(changed)
}

/// One round of propagation over a single `expr ≤ 0` constraint.
/// Returns `None` on conflict, `Some(changed)` otherwise.
fn propagate_le(expr: &LinExpr, state: &mut SearchState) -> Option<bool> {
    let (min, _) = expr_range(expr, state);
    if let Some(min) = min {
        if min > 0 {
            return None;
        }
    }
    let mut changed = false;
    // Derive a bound for each unassigned variable.
    let terms: Vec<(Var, i64)> = expr
        .iter()
        .filter(|(v, _)| !state.assignment.contains_key(v))
        .collect();
    for (var, coeff) in &terms {
        // a·x ≤ -constant - (minimum of the rest)
        let mut rest_min = Some(expr.constant_part() as i128);
        for (other, other_coeff) in expr.iter() {
            if other == *var {
                continue;
            }
            if let Some(&value) = state.assignment.get(&other) {
                rest_min = add_opt(rest_min, Some(other_coeff as i128 * value as i128));
            } else {
                let (lo, hi) = state.bounds.get(&other).copied().unwrap_or((None, None));
                let (cmin, _) = scaled_range(other_coeff, lo, hi);
                rest_min = add_opt(rest_min, cmin);
            }
        }
        let Some(rest_min) = rest_min else { continue };
        let rhs = -rest_min;
        if *coeff > 0 {
            let hi = clamp_i64(div_floor(rhs, *coeff as i128));
            changed |= tighten(state, *var, None, Some(hi))?;
        } else if *coeff < 0 {
            let lo = clamp_i64(div_ceil(rhs, *coeff as i128));
            changed |= tighten(state, *var, Some(lo), None)?;
        }
    }
    Some(changed)
}

/// Propagation for `expr ≠ 0`: only prunes when the expression is pinned to a
/// single unassigned variable at one of its bounds, and detects conflicts
/// when the expression is fully determined.
fn propagate_ne(expr: &LinExpr, state: &mut SearchState) -> Option<bool> {
    let (min, max) = expr_range(expr, state);
    if let (Some(min), Some(max)) = (min, max) {
        if min == 0 && max == 0 {
            return None;
        }
        if min > 0 || max < 0 {
            return Some(false); // already satisfied
        }
    }
    // Single unassigned variable: exclude the forbidden value if it sits at a bound.
    let unassigned: Vec<(Var, i64)> = expr
        .iter()
        .filter(|(v, _)| !state.assignment.contains_key(v))
        .collect();
    if unassigned.len() != 1 {
        return Some(false);
    }
    let (var, coeff) = unassigned[0];
    let mut rest = expr.constant_part() as i128;
    for (other, other_coeff) in expr.iter() {
        if other == var {
            continue;
        }
        let value = *state.assignment.get(&other)?;
        rest += other_coeff as i128 * value as i128;
    }
    // coeff·x + rest ≠ 0  ⇒  x ≠ -rest/coeff (when divisible).
    if (-rest) % (coeff as i128) != 0 {
        return Some(false);
    }
    let forbidden = clamp_i64((-rest) / coeff as i128);
    let (lo, hi) = state.bounds.get(&var).copied().unwrap_or((None, None));
    let mut changed = false;
    // A bound pinned at an i64 extreme may be a clamped stand-in for a
    // larger true bound, so no exclusion is derived there — propagation
    // just prunes less and the model check still rejects violations.
    if lo == Some(forbidden) {
        if let Some(next) = forbidden.checked_add(1) {
            changed |= tighten(state, var, Some(next), None)?;
        }
    }
    if hi == Some(forbidden) {
        if let Some(previous) = forbidden.checked_sub(1) {
            changed |= tighten(state, var, None, Some(previous))?;
        }
    }
    Some(changed)
}

/// Propagation for product constraints.
fn propagate_product(product: &ProductConstraint, state: &mut SearchState) -> Option<bool> {
    let lookup = |v: Var| state.assignment.get(&v).copied();
    let left = product.left.eval(&lookup);
    let right = product.right.eval(&lookup);
    let result = lookup(product.result);
    let mut changed = false;
    match (left, right, result) {
        (Some(l), Some(r), Some(p)) if l.checked_mul(r) != Some(p) => {
            return None;
        }
        (Some(l), Some(r), None) => {
            let p = l.checked_mul(r)?;
            changed |= tighten(state, product.result, Some(p), Some(p))?;
        }
        (Some(l), None, Some(p)) if l != 0 => {
            if p % l != 0 {
                return None;
            }
            // right is a linear expression; only prune when it is a bare variable.
            if product.right.num_vars() == 1 && product.right.constant_part() == 0 {
                let (var, coeff) = product.right.iter().next()?;
                if coeff != 0 && (p / l) % coeff == 0 {
                    let value = (p / l) / coeff;
                    changed |= tighten(state, var, Some(value), Some(value))?;
                }
            }
        }
        (None, Some(r), Some(p)) if r != 0 => {
            if p % r != 0 {
                return None;
            }
            if product.left.num_vars() == 1 && product.left.constant_part() == 0 {
                let (var, coeff) = product.left.iter().next()?;
                if coeff != 0 && (p / r) % coeff == 0 {
                    let value = (p / r) / coeff;
                    changed |= tighten(state, var, Some(value), Some(value))?;
                }
            }
        }
        _ => {}
    }
    Some(changed)
}

/// Ceiling on interval-propagation rounds per search node. Interval
/// propagation diverges on difference-cycle contradictions (`y ≥ x ∧ y ≤
/// x - 12` tightens the lower bounds by 12 forever without ever emptying a
/// domain), so the fixpoint loop must be cut off. Stopping early is sound:
/// propagation only narrows domains, so the wider domains kept by an early
/// exit never lose models, and a variable left unbounded routes the final
/// verdict through the `truncated` flag to `Unknown` rather than `Unsat`.
/// Any genuinely convergent propagation that would need this many rounds is
/// far outside the solver's value bound anyway.
const MAX_PROPAGATION_ROUNDS: usize = 4096;

/// Runs propagation to a fixpoint (or the round ceiling). Returns `false`
/// on conflict.
fn propagate(problem: &LiaProblem, state: &mut SearchState) -> bool {
    for _ in 0..MAX_PROPAGATION_ROUNDS {
        let mut changed = false;
        for constraint in &problem.linear {
            let step = match constraint.op {
                ConstraintOp::Le => propagate_le(&constraint.expr, state),
                ConstraintOp::Eq => {
                    let le = propagate_le(&constraint.expr, state);
                    match le {
                        None => None,
                        Some(first) => match constraint.expr.checked_scale(-1) {
                            Some(negated) => {
                                propagate_le(&negated, state).map(|second| first || second)
                            }
                            None => Some(first),
                        },
                    }
                }
                ConstraintOp::Ne => propagate_ne(&constraint.expr, state),
            };
            match step {
                None => return false,
                Some(step_changed) => changed |= step_changed,
            }
        }
        for product in &problem.products {
            match propagate_product(product, state) {
                None => return false,
                Some(step_changed) => changed |= step_changed,
            }
        }
        // Promote singleton domains to assignments.
        let singletons: Vec<(Var, i64)> = state
            .bounds
            .iter()
            .filter_map(|(v, (lo, hi))| match (lo, hi) {
                (Some(lo), Some(hi)) if lo == hi && !state.assignment.contains_key(v) => {
                    Some((*v, *lo))
                }
                _ => None,
            })
            .collect();
        for (var, value) in singletons {
            state.assignment.insert(var, value);
            changed = true;
        }
        if !changed {
            return true;
        }
    }
    // Round ceiling reached without conflict: proceed with the (sound,
    // possibly still-wide) domains narrowed so far. Counted, not silent —
    // a nonzero ceiling count on difference-fragment inputs means the
    // dispatcher failed to route them to the DL module.
    crate::probes::bump(|p| p.propagation_ceiling_hits += 1);
    true
}

/// Candidate values for branching on `var`, ordered small-magnitude first.
fn candidate_values(state: &SearchState, var: Var, config: &LiaConfig) -> (Vec<i64>, bool) {
    let (lo, hi) = state.bounds.get(&var).copied().unwrap_or((None, None));
    match (lo, hi) {
        (Some(lo), Some(hi)) => {
            let width = (hi as i128 - lo as i128 + 1).max(0);
            if width <= (2 * config.value_bound as i128 + 1) {
                let mut values: Vec<i64> = (lo..=hi).collect();
                values.sort_by_key(|v| (v.unsigned_abs(), *v < 0));
                (values, false)
            } else {
                let mut values = spiral(config.value_bound)
                    .filter(|v| *v >= lo && *v <= hi)
                    .collect::<Vec<i64>>();
                if values.is_empty() {
                    values.push(lo);
                }
                (values, true)
            }
        }
        (Some(lo), None) => {
            let values: Vec<i64> = (0..=config.value_bound)
                .map(|offset| lo.saturating_add(offset))
                .collect();
            // Prefer values near zero when the lower bound is negative.
            let mut values: Vec<i64> = if lo <= 0 {
                spiral(config.value_bound).filter(|v| *v >= lo).collect()
            } else {
                values
            };
            values.sort_by_key(|v| (v.unsigned_abs(), *v < 0));
            values.dedup();
            (values, true)
        }
        (None, Some(hi)) => {
            let mut values: Vec<i64> = if hi >= 0 {
                spiral(config.value_bound).filter(|v| *v <= hi).collect()
            } else {
                (0..=config.value_bound)
                    .map(|offset| hi.saturating_sub(offset))
                    .collect()
            };
            values.sort_by_key(|v| (v.unsigned_abs(), *v < 0));
            values.dedup();
            (values, true)
        }
        (None, None) => (spiral(config.value_bound).collect(), true),
    }
}

/// 0, 1, -1, 2, -2, … up to ±bound.
fn spiral(bound: i64) -> impl Iterator<Item = i64> {
    (0..=bound).flat_map(|v| if v == 0 { vec![0] } else { vec![v, -v] })
}

fn pick_branch_var(problem: &LiaProblem, state: &SearchState) -> Option<Var> {
    let mut best: Option<(Var, i128)> = None;
    for &var in &problem.vars {
        if state.assignment.contains_key(&var) {
            continue;
        }
        let (lo, hi) = state.bounds.get(&var).copied().unwrap_or((None, None));
        let width = match (lo, hi) {
            (Some(lo), Some(hi)) => hi as i128 - lo as i128,
            _ => i128::MAX,
        };
        match best {
            Some((_, best_width)) if best_width <= width => {}
            _ => best = Some((var, width)),
        }
    }
    best.map(|(v, _)| v)
}

fn search(
    problem: &LiaProblem,
    state: SearchState,
    config: &LiaConfig,
    budget: &mut u64,
    truncated: &mut bool,
) -> SearchOutcome {
    if *budget == 0 {
        return SearchOutcome::GaveUp;
    }
    *budget -= 1;
    let mut state = state;
    if !propagate(problem, &mut state) {
        return SearchOutcome::NoModel;
    }
    match pick_branch_var(problem, &state) {
        None => {
            if problem.satisfied_by(&state.assignment) {
                SearchOutcome::Model(state.assignment)
            } else {
                SearchOutcome::NoModel
            }
        }
        Some(var) => {
            let (values, was_truncated) = candidate_values(&state, var, config);
            if was_truncated {
                *truncated = true;
            }
            let mut gave_up = false;
            for value in values {
                let mut child = state.clone();
                child.assignment.insert(var, value);
                child.bounds.insert(var, (Some(value), Some(value)));
                match search(problem, child, config, budget, truncated) {
                    SearchOutcome::Model(model) => return SearchOutcome::Model(model),
                    SearchOutcome::NoModel => {}
                    SearchOutcome::GaveUp => {
                        gave_up = true;
                        break;
                    }
                }
            }
            if gave_up {
                SearchOutcome::GaveUp
            } else {
                SearchOutcome::NoModel
            }
        }
    }
}

/// Decides a conjunction of atoms and produces a model when consistent.
pub fn check_atoms(atoms: &[Atom], config: &LiaConfig) -> LiaResult {
    let refs: Vec<&Atom> = atoms.iter().collect();
    check_atom_refs(&refs, config)
}

/// [`check_atoms`] over borrowed atoms (arena-interned callers).
pub fn check_atom_refs(atoms: &[&Atom], config: &LiaConfig) -> LiaResult {
    let problem = match LiaProblem::from_atom_refs(atoms) {
        Ok(p) => p,
        Err(BuildError::Overflow) => return LiaResult::Unknown,
    };
    check_problem(&problem, config)
}

/// Decides a pre-built problem.
pub fn check_problem(problem: &LiaProblem, config: &LiaConfig) -> LiaResult {
    if problem.linear.is_empty() && problem.products.is_empty() {
        return LiaResult::Sat(BTreeMap::new());
    }
    if equalities_infeasible(problem) {
        return LiaResult::Unsat;
    }
    // Substitute away variables defined by unit-coefficient equalities. This
    // both detects contradictions like `x = y ∧ x ≠ y` and keeps the search
    // space small for the common equality-chain path conditions.
    let Some(presolved) = presolve(problem) else {
        return LiaResult::Unsat;
    };
    let reduced = &presolved.problem;

    let state = SearchState {
        assignment: BTreeMap::new(),
        bounds: Bounds::new(),
    };
    let mut budget = config.node_budget;
    let mut truncated = false;
    match search(reduced, state, config, &mut budget, &mut truncated) {
        SearchOutcome::Model(mut model) => {
            // Recover eliminated variables in reverse elimination order: each
            // definition refers only to variables still present at its
            // elimination time, which by then have values.
            for (var, definition) in presolved.eliminated.iter().rev() {
                let value = definition
                    .eval(&|v| model.get(&v).copied().or(Some(0)))
                    .unwrap_or(0);
                model.insert(*var, value);
            }
            // Make sure every original variable has a value, defaulting to 0
            // for variables the search never needed to constrain.
            for &var in &problem.original_vars {
                model.entry(var).or_insert(0);
            }
            if problem.satisfied_by(&model) {
                LiaResult::Sat(model)
            } else {
                // Reconstruction failed (e.g. due to an overflow during
                // evaluation); be conservative — and count the silent
                // completeness loss.
                crate::probes::bump(|p| p.model_reconstruction_failures += 1);
                LiaResult::Unknown
            }
        }
        SearchOutcome::NoModel => {
            if truncated {
                LiaResult::Unknown
            } else {
                LiaResult::Unsat
            }
        }
        SearchOutcome::GaveUp => LiaResult::Unknown,
    }
}

/// The LIA engine packaged as a [`TheorySolver`] module: the catch-all the
/// dispatcher falls back to for conjunctions outside every specialised
/// fragment. `can_decide` always answers yes (it is the engine of last
/// resort — complete up to its value bound, `Unknown` beyond it), asserts
/// buffer atoms per frame, and `check` runs the full
/// elimination/propagation/search pipeline over the buffered conjunction.
#[derive(Debug, Default)]
pub struct LiaModule {
    config: LiaConfig,
    atoms: Vec<Atom>,
    frames: Vec<usize>,
    stats: TheoryModuleStats,
}

impl LiaModule {
    /// Creates a module with the given search configuration.
    pub fn new(config: LiaConfig) -> Self {
        LiaModule {
            config,
            ..LiaModule::default()
        }
    }
}

impl TheorySolver for LiaModule {
    fn name(&self) -> &'static str {
        "lia"
    }

    fn can_decide(&self, _atoms: &[&Atom]) -> bool {
        true
    }

    fn push(&mut self) {
        self.frames.push(self.atoms.len());
    }

    fn assert(&mut self, atom: &Atom) -> Result<(), Vec<usize>> {
        self.atoms.push(atom.clone());
        Ok(())
    }

    fn retract(&mut self) {
        let mark = self.frames.pop().unwrap_or(0);
        self.atoms.truncate(mark);
    }

    fn check(&mut self) -> TheoryVerdict {
        self.stats.checks += 1;
        match check_atoms(&self.atoms, &self.config) {
            LiaResult::Sat(values) => TheoryVerdict::Sat(values),
            LiaResult::Unsat => {
                self.stats.conflicts += 1;
                // The enumeration engine has no conflict analysis: the
                // explanation is the whole conjunction.
                TheoryVerdict::Unsat((0..self.atoms.len()).collect())
            }
            LiaResult::Unknown => TheoryVerdict::Unknown,
        }
    }

    fn stats(&self) -> TheoryModuleStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::{Atom, CmpOp};
    use crate::term::{Term, Var};

    fn x(i: u32) -> Term {
        Term::var(Var::new(i))
    }

    fn eq(a: Term, b: Term) -> Atom {
        Atom::new(a, CmpOp::Eq, b)
    }

    fn check(atoms: &[Atom]) -> LiaResult {
        check_atoms(atoms, &LiaConfig::default())
    }

    #[test]
    fn empty_conjunction_is_sat() {
        assert!(matches!(check(&[]), LiaResult::Sat(_)));
    }

    #[test]
    fn failed_model_reconstruction_is_conservative_and_counted() {
        // x = y + (i64::MAX − 10) ∧ y ≥ 100: presolve eliminates one side
        // of the equality, the search solves the residual problem, but
        // reconstructing the eliminated variable overflows `i64`. The
        // verdict must degrade to `Unknown` (never a wrong `Sat`), and the
        // silent completeness loss must show up in the probe counter.
        let atoms = vec![
            eq(x(0), Term::add(x(1), Term::int(i64::MAX - 10))),
            Atom::new(x(1), CmpOp::Ge, Term::int(100)),
        ];
        let before = crate::probes::totals().model_reconstruction_failures;
        let result = check(&atoms);
        assert_eq!(result, LiaResult::Unknown, "overflowed model must not leak");
        let after = crate::probes::totals().model_reconstruction_failures;
        assert_eq!(after - before, 1, "the reconstruction failure is counted");
    }

    #[test]
    fn paper_worked_example_model() {
        // L5 = 100 - L4  ∧  L5 = 0   ⇒   L4 = 100
        let atoms = vec![
            eq(x(5), Term::sub(Term::int(100), x(4))),
            eq(x(5), Term::int(0)),
        ];
        match check(&atoms) {
            LiaResult::Sat(model) => {
                assert_eq!(model.get(&Var::new(4)), Some(&100));
                assert_eq!(model.get(&Var::new(5)), Some(&0));
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn inconsistent_equalities_are_unsat() {
        // x = y + 1 ∧ x = y
        let atoms = vec![eq(x(0), Term::add(x(1), Term::int(1))), eq(x(0), x(1))];
        assert_eq!(check(&atoms), LiaResult::Unsat);
    }

    #[test]
    fn divisibility_conflict_is_unsat() {
        // 2x = 1
        let atoms = vec![eq(Term::mul(Term::int(2), x(0)), Term::int(1))];
        assert_eq!(check(&atoms), LiaResult::Unsat);
    }

    #[test]
    fn bounds_conflict_is_unsat() {
        // x ≤ 0 ∧ x ≥ 1
        let atoms = vec![
            Atom::new(x(0), CmpOp::Le, Term::int(0)),
            Atom::new(x(0), CmpOp::Ge, Term::int(1)),
        ];
        assert_eq!(check(&atoms), LiaResult::Unsat);
    }

    #[test]
    fn disequality_forces_other_value() {
        // 0 ≤ x ≤ 1 ∧ x ≠ 0  ⇒  x = 1
        let atoms = vec![
            Atom::new(x(0), CmpOp::Ge, Term::int(0)),
            Atom::new(x(0), CmpOp::Le, Term::int(1)),
            Atom::new(x(0), CmpOp::Ne, Term::int(0)),
        ];
        match check(&atoms) {
            LiaResult::Sat(model) => assert_eq!(model.get(&Var::new(0)), Some(&1)),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn all_values_excluded_is_unsat() {
        // 0 ≤ x ≤ 1 ∧ x ≠ 0 ∧ x ≠ 1
        let atoms = vec![
            Atom::new(x(0), CmpOp::Ge, Term::int(0)),
            Atom::new(x(0), CmpOp::Le, Term::int(1)),
            Atom::new(x(0), CmpOp::Ne, Term::int(0)),
            Atom::new(x(0), CmpOp::Ne, Term::int(1)),
        ];
        assert_eq!(check(&atoms), LiaResult::Unsat);
    }

    #[test]
    fn products_of_unknowns_are_solved() {
        // x·y = 6 ∧ x ≥ 2 ∧ y ≥ 2
        let atoms = vec![
            eq(Term::mul(x(0), x(1)), Term::int(6)),
            Atom::new(x(0), CmpOp::Ge, Term::int(2)),
            Atom::new(x(1), CmpOp::Ge, Term::int(2)),
        ];
        match check(&atoms) {
            LiaResult::Sat(model) => {
                let a = model[&Var::new(0)];
                let b = model[&Var::new(1)];
                assert_eq!(a * b, 6);
                assert!(a >= 2 && b >= 2);
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn square_equation_is_satisfied() {
        // x·x = 49 ∧ x ≥ 0  ⇒  x = 7
        let atoms = vec![
            eq(Term::mul(x(0), x(0)), Term::int(49)),
            Atom::new(x(0), CmpOp::Ge, Term::int(0)),
        ];
        match check(&atoms) {
            LiaResult::Sat(model) => assert_eq!(model.get(&Var::new(0)), Some(&7)),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn chained_equalities_propagate() {
        // a = b ∧ b = c ∧ c = 42
        let atoms = vec![eq(x(0), x(1)), eq(x(1), x(2)), eq(x(2), Term::int(42))];
        match check(&atoms) {
            LiaResult::Sat(model) => {
                assert_eq!(model[&Var::new(0)], 42);
                assert_eq!(model[&Var::new(1)], 42);
                assert_eq!(model[&Var::new(2)], 42);
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn strict_inequalities_shift_correctly() {
        // x < 5 ∧ x > 3  ⇒  x = 4
        let atoms = vec![
            Atom::new(x(0), CmpOp::Lt, Term::int(5)),
            Atom::new(x(0), CmpOp::Gt, Term::int(3)),
        ];
        match check(&atoms) {
            LiaResult::Sat(model) => assert_eq!(model[&Var::new(0)], 4),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn model_satisfies_problem() {
        let atoms = vec![
            eq(Term::add(x(0), x(1)), Term::int(10)),
            Atom::new(x(0), CmpOp::Ge, Term::int(3)),
            Atom::new(x(1), CmpOp::Ge, Term::int(3)),
            Atom::new(x(0), CmpOp::Ne, x(1)),
        ];
        let problem = LiaProblem::from_atoms(&atoms).expect("builds");
        match check_problem(&problem, &LiaConfig::default()) {
            LiaResult::Sat(model) => assert!(problem.satisfied_by(&model)),
            other => panic!("expected sat, got {other:?}"),
        }
    }
}
