//! # folic — a first-order linear integer constraint solver
//!
//! `folic` ("first-order linear integer constraints") is the base-type
//! solver used by the symbolic executors in this workspace. It plays the
//! role Z3 plays in *“Relatively Complete Counterexamples for Higher-Order
//! Programs”* (Nguyễn & Van Horn, PLDI 2015): the symbolic heap accumulated
//! during execution is translated into quantifier-free, integer-sorted
//! formulas; the solver answers the proof relation's validity questions and,
//! at an error state, produces the **model** that is plugged back into the
//! heap to reconstruct a concrete (possibly higher-order) counterexample.
//!
//! ## Architecture
//!
//! * [`term`] / [`formula`] — the AST of integer terms and quantifier-free
//!   formulas, with NNF conversion and evaluation.
//! * [`arena`] — the hash-consing arena interning terms and atoms into ids,
//!   with per-node variable sets and negations cached.
//! * [`sat`] — a CDCL propositional solver (watched literals, first-UIP
//!   learning, activity-ordered branching over a lazy binary heap,
//!   LBD-scored learnt clauses with periodic clause-database reduction,
//!   Luby-sequence restarts, solving under assumptions with an optional
//!   restricted branching set).
//! * [`cnf`] — Tseitin encoding of formulas into clauses over theory atoms
//!   (the scratch engine's per-check encoder).
//! * [`lia`] — the general linear-integer-arithmetic theory engine:
//!   Gaussian elimination over equalities, interval propagation, and a
//!   small-values-first branch-and-bound model search (which also handles the
//!   product constraints introduced by multiplying two unknowns). Packaged
//!   as the catch-all [`lia::LiaModule`] behind the theory-module trait.
//! * [`dl`] — the incremental difference-logic engine: conjunctions whose
//!   atoms all normalise to `x − y ≤ c` are decided *exactly* by
//!   negative-cycle detection over the constraint graph, with
//!   potential-function reuse across incremental asserts and negative-cycle
//!   explanations as conflict clauses. Gated by `CPCF_THEORY_DL=on|off`.
//! * [`theory`] — the theory layer: the [`theory::TheorySolver`] module
//!   trait, the dispatcher routing each atom conjunction to the cheapest
//!   complete module, and the lazy SMT loop combining the SAT core with the
//!   dispatched theory, rebuilt from nothing per check (the *scratch*
//!   engine, kept as the `CPCF_SOLVER_CORE=scratch` ablation and as the
//!   persistent core's fallback oracle).
//! * [`probes`] — thread-local counters for theory-layer events raised in
//!   code with no statistics handle (dispatch decisions, propagation-ceiling
//!   hits, model-reconstruction failures), drained per check into
//!   [`SolverStats`].
//! * [`core`] — the *persistent* incremental core (the default engine): one
//!   long-lived CDCL instance per solver whose Tseitin encodings, interned
//!   atoms and theory lemmas survive across checks, with assertion frames
//!   retracting by activation literals and per-query cone slicing
//!   restricting each search to the dependency cone of its assumptions.
//! * [`lemmas`] — the [`SharedLemmaPool`] exchanging theory lemmas across
//!   worker threads: atom ids are process-global (see [`arena`]), so a
//!   blocking clause the theory refuted in one core is a valid clause in
//!   every sibling core, imported at check boundaries and gated by
//!   `CPCF_LEMMA_SHARING=on|off`.
//! * [`solver`] — the user-facing [`Solver`] with `push`/`pop`, validity
//!   queries and the three-valued [`Proof`] relation used by symbolic
//!   execution.
//!
//! ## Example
//!
//! The constraint set from the paper's §2 worked example:
//!
//! ```
//! use folic::{Formula, Solver, Term, Var};
//!
//! let l4 = Term::var(Var::new(4));
//! let l5 = Term::var(Var::new(5));
//!
//! let mut solver = Solver::new();
//! solver.assert(Formula::eq(l5.clone(), Term::sub(Term::int(100), l4.clone())));
//! solver.assert(Formula::eq(Term::int(0), l5));
//!
//! let model = solver.check().model().cloned().expect("satisfiable");
//! assert_eq!(model.value(Var::new(4)), Some(100)); // the input that crashes `f`
//! ```
//!
//! ## Completeness
//!
//! The solver is complete for conjunctions of linear equalities and
//! inequalities whose models fit within its configured search bound, and
//! reports [`SmtResult::Unknown`] (never a wrong answer) otherwise. This is
//! precisely the "relative" in the paper's relative-completeness theorem:
//! counterexample generation is complete *relative to* the power of this
//! solver on first-order data.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod cnf;
pub mod core;
pub mod dl;
pub mod formula;
pub mod lemmas;
pub mod lia;
pub mod linear;
pub mod model;
pub mod probes;
pub mod sat;
pub mod solver;
pub mod term;
pub mod theory;

pub use arena::{global_atom, Arena, AtomId};
pub use dl::{default_theory_dl, DlSolver};
pub use formula::{Atom, CmpOp, Formula};
pub use lemmas::{default_lemma_sharing, SharedLemma, SharedLemmaPool};
pub use model::Model;
pub use solver::{
    default_core_mode, CoreMode, Proof, Solver, SolverConfig, SolverStats, UnbalancedPop, Validity,
};
pub use term::{Term, Var};
pub use theory::{SmtResult, TheoryConfig, TheoryModuleStats, TheorySolver, TheoryVerdict};
