//! The lazy SMT loop: CDCL over the boolean abstraction, with the LIA theory
//! solver checking each propositional model and contributing blocking
//! clauses for theory conflicts.

use crate::cnf::{assert_formula, AtomMap};
use crate::formula::{Atom, Formula};
use crate::lia::{check_atoms, LiaConfig, LiaResult};
use crate::model::Model;
use crate::sat::{Lit, SatResult as PropResult, SatSolver, SatStats};
use crate::term::Var;

/// The outcome of an SMT satisfiability check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SmtResult {
    /// Satisfiable, with a model over the integer variables.
    Sat(Model),
    /// Unsatisfiable.
    Unsat,
    /// Could not be decided within the configured budget.
    Unknown,
}

impl SmtResult {
    /// True when the result is [`SmtResult::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, SmtResult::Sat(_))
    }

    /// True when the result is [`SmtResult::Unsat`].
    pub fn is_unsat(&self) -> bool {
        matches!(self, SmtResult::Unsat)
    }

    /// The model, if satisfiable.
    pub fn model(&self) -> Option<&Model> {
        match self {
            SmtResult::Sat(m) => Some(m),
            _ => None,
        }
    }
}

/// Configuration of the SMT loop.
#[derive(Debug, Clone, Copy)]
pub struct TheoryConfig {
    /// Theory-check iterations before giving up.
    pub max_iterations: u32,
    /// Configuration of the LIA model search.
    pub lia: LiaConfig,
    /// Overrides the learnt-database size that first triggers a clause-DB
    /// reduction in the CDCL core (`None` keeps the built-in threshold).
    /// A tiny limit forces reductions even on small formulas, which is how
    /// the differential tests check that deletion never changes verdicts.
    pub sat_reduce_limit: Option<usize>,
}

impl Default for TheoryConfig {
    fn default() -> Self {
        TheoryConfig {
            max_iterations: 256,
            lia: LiaConfig::default(),
            sat_reduce_limit: None,
        }
    }
}

/// Checks the conjunction of `formulas` for satisfiability.
pub fn check_conjunction(formulas: &[Formula], config: &TheoryConfig) -> SmtResult {
    check_conjunction_counted(formulas, config).0
}

/// [`check_conjunction`] together with the CDCL search statistics of the
/// underlying propositional solver. The counters are all zero when the
/// atom-conjunction fast path decided the query without any SAT solving.
pub fn check_conjunction_counted(
    formulas: &[Formula],
    config: &TheoryConfig,
) -> (SmtResult, SatStats) {
    // Fast path: a pure conjunction of atoms needs no SAT solving at all.
    if let Some(atoms) = as_atom_conjunction(formulas) {
        return (lia_to_smt(&atoms, formulas, config), SatStats::default());
    }

    let mut sat = SatSolver::new();
    if let Some(limit) = config.sat_reduce_limit {
        sat.set_reduce_limit(limit);
    }
    let mut atom_map = AtomMap::new();
    for formula in formulas {
        assert_formula(&mut sat, &mut atom_map, formula);
    }

    // `SatSolver::solve` resets its counters per call, so accumulate across
    // the SMT loop's iterations.
    let mut sat_stats = SatStats::default();
    let mut saw_unknown = false;
    for _iteration in 0..config.max_iterations {
        let propositional = sat.solve();
        sat_stats.merge(&sat.stats());
        match propositional {
            PropResult::Unsat => {
                let verdict = if saw_unknown {
                    SmtResult::Unknown
                } else {
                    SmtResult::Unsat
                };
                return (verdict, sat_stats);
            }
            PropResult::Sat(assignment) => {
                // Collect the theory literals chosen by the boolean model.
                let mut theory_atoms: Vec<Atom> = Vec::new();
                let mut blocking: Vec<Lit> = Vec::new();
                for (atom, var) in atom_map.iter() {
                    let value = assignment[var.index() as usize];
                    theory_atoms.push(if value { atom.clone() } else { atom.negate() });
                    blocking.push(if value {
                        var.negative()
                    } else {
                        var.positive()
                    });
                }
                match check_atoms(&theory_atoms, &config.lia) {
                    LiaResult::Sat(values) => {
                        let mut model = Model::new();
                        for (var, value) in values {
                            model.assign(var, value);
                        }
                        complete_model(&mut model, formulas);
                        if model.satisfies_all(formulas) {
                            return (SmtResult::Sat(model), sat_stats);
                        }
                        // The theory model does not extend to the boolean
                        // structure (should not happen); treat as a blocked
                        // candidate and move on.
                        saw_unknown = true;
                        sat.add_clause(blocking);
                    }
                    LiaResult::Unsat => {
                        if blocking.is_empty() {
                            // No theory atoms at all, yet the theory says
                            // inconsistent: impossible, but guard anyway.
                            return (SmtResult::Unsat, sat_stats);
                        }
                        sat.add_clause(blocking);
                    }
                    LiaResult::Unknown => {
                        saw_unknown = true;
                        if blocking.is_empty() {
                            return (SmtResult::Unknown, sat_stats);
                        }
                        sat.add_clause(blocking);
                    }
                }
            }
        }
    }
    (SmtResult::Unknown, sat_stats)
}

/// Checks whether `formula` is entailed by `background` (i.e. `background ∧
/// ¬formula` is unsatisfiable).
pub fn check_entailed(
    background: &[Formula],
    formula: &Formula,
    config: &TheoryConfig,
) -> SmtResult {
    let mut combined: Vec<Formula> = background.to_vec();
    combined.push(Formula::not(formula.clone()));
    check_conjunction(&combined, config)
}

/// If every formula is a conjunction of atoms, return them flattened.
fn as_atom_conjunction(formulas: &[Formula]) -> Option<Vec<Atom>> {
    let mut atoms = Vec::new();
    for formula in formulas {
        collect_atoms(formula, &mut atoms)?;
    }
    Some(atoms)
}

pub(crate) fn collect_atoms(formula: &Formula, out: &mut Vec<Atom>) -> Option<()> {
    match formula {
        Formula::True => Some(()),
        Formula::Atom(a) => {
            out.push(a.clone());
            Some(())
        }
        Formula::Not(inner) => match inner.as_ref() {
            Formula::Atom(a) => {
                out.push(a.negate());
                Some(())
            }
            _ => None,
        },
        Formula::And(parts) => {
            for part in parts {
                collect_atoms(part, out)?;
            }
            Some(())
        }
        _ => None,
    }
}

fn lia_to_smt(atoms: &[Atom], formulas: &[Formula], config: &TheoryConfig) -> SmtResult {
    match check_atoms(atoms, &config.lia) {
        LiaResult::Sat(values) => {
            let mut model = Model::new();
            for (var, value) in values {
                model.assign(var, value);
            }
            complete_model(&mut model, formulas);
            if model.satisfies_all(formulas) {
                SmtResult::Sat(model)
            } else {
                SmtResult::Unknown
            }
        }
        LiaResult::Unsat => SmtResult::Unsat,
        LiaResult::Unknown => SmtResult::Unknown,
    }
}

/// Assigns zero to any variable that occurs in the formulas but not in the
/// model, so that callers always receive total models.
fn complete_model(model: &mut Model, formulas: &[Formula]) {
    let mut vars = std::collections::BTreeSet::<Var>::new();
    for formula in formulas {
        formula.collect_vars(&mut vars);
    }
    for var in vars {
        if model.value(var).is_none() {
            model.assign(var, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{Term, Var};

    fn x(i: u32) -> Term {
        Term::var(Var::new(i))
    }

    fn check(formulas: &[Formula]) -> SmtResult {
        check_conjunction(formulas, &TheoryConfig::default())
    }

    #[test]
    fn conjunction_of_equalities_has_model() {
        let formulas = vec![
            Formula::eq(x(5), Term::sub(Term::int(100), x(4))),
            Formula::eq(Term::int(0), x(5)),
        ];
        match check(&formulas) {
            SmtResult::Sat(model) => {
                assert_eq!(model.value(Var::new(4)), Some(100));
                assert_eq!(model.value(Var::new(5)), Some(0));
                assert!(model.satisfies_all(&formulas));
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn boolean_structure_with_theory_conflicts() {
        // (x = 0 ∨ x = 1) ∧ x ≥ 5 is unsat; both disjuncts conflict with the bound.
        let formulas = vec![
            Formula::or(vec![
                Formula::eq(x(0), Term::int(0)),
                Formula::eq(x(0), Term::int(1)),
            ]),
            Formula::ge(x(0), Term::int(5)),
        ];
        assert_eq!(check(&formulas), SmtResult::Unsat);
    }

    #[test]
    fn disjunction_picks_consistent_branch() {
        // (x = 0 ∨ x = 7) ∧ x ≥ 5  ⇒  x = 7
        let formulas = vec![
            Formula::or(vec![
                Formula::eq(x(0), Term::int(0)),
                Formula::eq(x(0), Term::int(7)),
            ]),
            Formula::ge(x(0), Term::int(5)),
        ];
        match check(&formulas) {
            SmtResult::Sat(model) => assert_eq!(model.value(Var::new(0)), Some(7)),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn implication_from_case_maps() {
        // (x1 = x3 ⇒ x2 = x4) ∧ x1 = x3 ∧ x2 = 1 ∧ x4 = 0 is unsat.
        let formulas = vec![
            Formula::implies(Formula::eq(x(1), x(3)), Formula::eq(x(2), x(4))),
            Formula::eq(x(1), x(3)),
            Formula::eq(x(2), Term::int(1)),
            Formula::eq(x(4), Term::int(0)),
        ];
        assert_eq!(check(&formulas), SmtResult::Unsat);
    }

    #[test]
    fn entailment_check_works() {
        // x = 3 entails x > 0.
        let background = vec![Formula::eq(x(0), Term::int(3))];
        let goal = Formula::gt(x(0), Term::int(0));
        assert_eq!(
            check_entailed(&background, &goal, &TheoryConfig::default()),
            SmtResult::Unsat,
            "negation of an entailed formula must be unsat"
        );
        // x = 3 does not entail x > 5.
        let goal = Formula::gt(x(0), Term::int(5));
        assert!(check_entailed(&background, &goal, &TheoryConfig::default()).is_sat());
    }

    #[test]
    fn trivially_true_assertions_are_sat() {
        assert!(check(&[Formula::True]).is_sat());
        assert!(check(&[]).is_sat());
    }

    #[test]
    fn trivially_false_assertions_are_unsat() {
        assert_eq!(check(&[Formula::False]), SmtResult::Unsat);
    }
}
