//! The theory layer: the [`TheorySolver`] module interface, the dispatcher
//! routing each atom conjunction to the cheapest complete module, and the
//! lazy SMT loop — CDCL over the boolean abstraction, with the dispatched
//! theory modules checking each propositional model and contributing
//! blocking clauses for theory conflicts.

use std::collections::BTreeMap;

use crate::cnf::{assert_formula, AtomMap};
use crate::dl::DlSolver;
use crate::formula::{Atom, Formula};
use crate::lia::{check_atom_refs, LiaConfig, LiaResult};
use crate::model::Model;
use crate::probes;
use crate::sat::{Lit, SatResult as PropResult, SatSolver, SatStats};
use crate::term::Var;

/// Per-module statistics of one theory engine, surfaced per process
/// through [`crate::probes`] and per solver through
/// [`crate::solver::SolverStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TheoryModuleStats {
    /// Conjunction checks answered by this module.
    pub checks: u64,
    /// Refutations (conflicts) this module derived.
    pub conflicts: u64,
    /// Module-internal propagation steps (edge relaxations for the
    /// difference-logic module; zero for the LIA module, whose interval
    /// propagation is counted inside its own search).
    pub propagations: u64,
}

/// The verdict of one theory module on its asserted conjunction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TheoryVerdict {
    /// Consistent, with a witnessing assignment.
    Sat(BTreeMap<Var, i64>),
    /// Inconsistent. The explanation lists indices — into the order atoms
    /// were asserted — of a subset that is already inconsistent; it is
    /// what becomes the blocking clause and the shared theory lemma.
    Unsat(Vec<usize>),
    /// The module could not decide within its fragment or budget.
    Unknown,
}

/// A theory engine packaged as a module: the dispatcher asks `can_decide`
/// whether the module is complete for a conjunction, then drives it through
/// `push`/`assert`/`check`/`retract` aligned with the solver's frame
/// discipline. Implementations: [`crate::dl::DlSolver`] (the difference
/// fragment, decided exactly by negative-cycle detection) and
/// [`crate::lia::LiaModule`] (the general engine, complete up to its value
/// bound — the catch-all fallback).
pub trait TheorySolver {
    /// A short stable name for reports ("dl", "lia").
    fn name(&self) -> &'static str;
    /// Whether this module decides conjunctions of exactly these atoms.
    fn can_decide(&self, atoms: &[&Atom]) -> bool;
    /// Opens an assertion frame; [`TheorySolver::retract`] pops back to it.
    fn push(&mut self);
    /// Asserts one atom on top of the current frame. `Err` carries a
    /// conflict explanation (indices into the assertion order) when the
    /// atom made the conjunction inconsistent.
    fn assert(&mut self, atom: &Atom) -> Result<(), Vec<usize>>;
    /// Pops the most recent frame, retracting its assertions.
    fn retract(&mut self);
    /// Decides the currently asserted conjunction.
    fn check(&mut self) -> TheoryVerdict;
    /// This module's cumulative counters.
    fn stats(&self) -> TheoryModuleStats;
}

/// Drives one module over a conjunction: open a frame, assert every atom
/// (stopping at the first conflict), and check.
fn run_module<M: TheorySolver>(module: &mut M, atoms: &[&Atom]) -> TheoryVerdict {
    module.push();
    for atom in atoms {
        if module.assert(atom).is_err() {
            break;
        }
    }
    module.check()
}

/// The outcome of one dispatched theory check, shaped like the LIA result
/// the call sites already consume, plus the refutation explanation when the
/// deciding module produced one.
pub(crate) struct Dispatched {
    /// The verdict.
    pub result: LiaResult,
    /// For a difference-logic refutation: indices (into `atoms`) of the
    /// inconsistent subset. `None` when LIA decided (its refutations blame
    /// the whole conjunction) or when there was no refutation.
    pub explanation: Option<Vec<usize>>,
}

/// Routes one atom conjunction to the cheapest complete theory module: the
/// difference-logic engine when every atom lies in its fragment (and the
/// `CPCF_THEORY_DL` gate is open), the general LIA engine otherwise. Both
/// engines only ever refine each other — on fragment conjunctions DL is
/// exactly complete, so a verdict LIA could decide is never lost, and
/// conjunctions outside the fragment take the unchanged LIA path.
pub(crate) fn dispatch_check(atoms: &[&Atom], config: &TheoryConfig) -> Dispatched {
    if config.theory_dl {
        let mut dl = DlSolver::new();
        if dl.can_decide(atoms) {
            probes::bump(|p| {
                p.theory_dispatch_dl += 1;
                p.dl_checks += 1;
            });
            match run_module(&mut dl, atoms) {
                TheoryVerdict::Sat(values) => {
                    return Dispatched {
                        result: LiaResult::Sat(values),
                        explanation: None,
                    };
                }
                TheoryVerdict::Unsat(explanation) => {
                    return Dispatched {
                        result: LiaResult::Unsat,
                        explanation: Some(explanation),
                    };
                }
                // Only reachable when a model coordinate overflows `i64`;
                // fall through to the LIA engine rather than give up.
                TheoryVerdict::Unknown => {}
            }
        }
    }
    probes::bump(|p| p.theory_dispatch_lia += 1);
    Dispatched {
        result: check_atom_refs(atoms, &config.lia),
        explanation: None,
    }
}

/// The outcome of an SMT satisfiability check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SmtResult {
    /// Satisfiable, with a model over the integer variables.
    Sat(Model),
    /// Unsatisfiable.
    Unsat,
    /// Could not be decided within the configured budget.
    Unknown,
}

impl SmtResult {
    /// True when the result is [`SmtResult::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, SmtResult::Sat(_))
    }

    /// True when the result is [`SmtResult::Unsat`].
    pub fn is_unsat(&self) -> bool {
        matches!(self, SmtResult::Unsat)
    }

    /// The model, if satisfiable.
    pub fn model(&self) -> Option<&Model> {
        match self {
            SmtResult::Sat(m) => Some(m),
            _ => None,
        }
    }
}

/// Configuration of the SMT loop.
#[derive(Debug, Clone, Copy)]
pub struct TheoryConfig {
    /// Theory-check iterations before giving up.
    pub max_iterations: u32,
    /// Configuration of the LIA model search.
    pub lia: LiaConfig,
    /// Overrides the learnt-database size that first triggers a clause-DB
    /// reduction in the CDCL core (`None` keeps the built-in threshold).
    /// A tiny limit forces reductions even on small formulas, which is how
    /// the differential tests check that deletion never changes verdicts.
    pub sat_reduce_limit: Option<usize>,
    /// Whether the dispatcher may route difference-fragment conjunctions to
    /// the [`crate::dl::DlSolver`] module (default: the `CPCF_THEORY_DL`
    /// environment variable via [`crate::dl::default_theory_dl`]; `false`
    /// reproduces the pre-DL engine exactly, as the ablation leg).
    pub theory_dl: bool,
}

impl Default for TheoryConfig {
    fn default() -> Self {
        TheoryConfig {
            max_iterations: 256,
            lia: LiaConfig::default(),
            sat_reduce_limit: None,
            theory_dl: crate::dl::default_theory_dl(),
        }
    }
}

/// Checks the conjunction of `formulas` for satisfiability.
pub fn check_conjunction(formulas: &[Formula], config: &TheoryConfig) -> SmtResult {
    check_conjunction_counted(formulas, config).0
}

/// [`check_conjunction`] together with the CDCL search statistics of the
/// underlying propositional solver. The counters are all zero when the
/// atom-conjunction fast path decided the query without any SAT solving.
pub fn check_conjunction_counted(
    formulas: &[Formula],
    config: &TheoryConfig,
) -> (SmtResult, SatStats) {
    // Fast path: a pure conjunction of atoms needs no SAT solving at all.
    if let Some(atoms) = as_atom_conjunction(formulas) {
        return (lia_to_smt(&atoms, formulas, config), SatStats::default());
    }

    let mut sat = SatSolver::new();
    if let Some(limit) = config.sat_reduce_limit {
        sat.set_reduce_limit(limit);
    }
    let mut atom_map = AtomMap::new();
    for formula in formulas {
        assert_formula(&mut sat, &mut atom_map, formula);
    }

    // `SatSolver::solve` resets its counters per call, so accumulate across
    // the SMT loop's iterations.
    let mut sat_stats = SatStats::default();
    let mut saw_unknown = false;
    for _iteration in 0..config.max_iterations {
        let propositional = sat.solve();
        sat_stats.merge(&sat.stats());
        match propositional {
            PropResult::Unsat => {
                let verdict = if saw_unknown {
                    SmtResult::Unknown
                } else {
                    SmtResult::Unsat
                };
                return (verdict, sat_stats);
            }
            PropResult::Sat(assignment) => {
                // Collect the theory literals chosen by the boolean model.
                let mut theory_atoms: Vec<Atom> = Vec::new();
                let mut blocking: Vec<Lit> = Vec::new();
                for (atom, var) in atom_map.iter() {
                    let value = assignment[var.index() as usize];
                    theory_atoms.push(if value { atom.clone() } else { atom.negate() });
                    blocking.push(if value {
                        var.negative()
                    } else {
                        var.positive()
                    });
                }
                let dispatched = {
                    let refs: Vec<&Atom> = theory_atoms.iter().collect();
                    dispatch_check(&refs, config)
                };
                match dispatched.result {
                    LiaResult::Sat(values) => {
                        let mut model = Model::new();
                        for (var, value) in values {
                            model.assign(var, value);
                        }
                        complete_model(&mut model, formulas);
                        if model.satisfies_all(formulas) {
                            return (SmtResult::Sat(model), sat_stats);
                        }
                        // The theory model does not extend to the boolean
                        // structure (should not happen); treat as a blocked
                        // candidate and move on.
                        saw_unknown = true;
                        sat.add_clause(blocking);
                    }
                    LiaResult::Unsat => {
                        if blocking.is_empty() {
                            // No theory atoms at all, yet the theory says
                            // inconsistent: impossible, but guard anyway.
                            return (SmtResult::Unsat, sat_stats);
                        }
                        // A module explanation narrows the blocking clause
                        // to the inconsistent subset — a strictly stronger
                        // clause over the same candidate.
                        let clause = match &dispatched.explanation {
                            Some(explanation) if !explanation.is_empty() => {
                                explanation.iter().map(|&i| blocking[i]).collect()
                            }
                            _ => blocking,
                        };
                        sat.add_clause(clause);
                    }
                    LiaResult::Unknown => {
                        saw_unknown = true;
                        if blocking.is_empty() {
                            return (SmtResult::Unknown, sat_stats);
                        }
                        sat.add_clause(blocking);
                    }
                }
            }
        }
    }
    probes::bump(|p| p.theory_iterations_exhausted += 1);
    (SmtResult::Unknown, sat_stats)
}

/// Checks whether `formula` is entailed by `background` (i.e. `background ∧
/// ¬formula` is unsatisfiable).
pub fn check_entailed(
    background: &[Formula],
    formula: &Formula,
    config: &TheoryConfig,
) -> SmtResult {
    let mut combined: Vec<Formula> = background.to_vec();
    combined.push(Formula::not(formula.clone()));
    check_conjunction(&combined, config)
}

/// If every formula is a conjunction of atoms, return them flattened.
fn as_atom_conjunction(formulas: &[Formula]) -> Option<Vec<Atom>> {
    let mut atoms = Vec::new();
    for formula in formulas {
        collect_atoms(formula, &mut atoms)?;
    }
    Some(atoms)
}

pub(crate) fn collect_atoms(formula: &Formula, out: &mut Vec<Atom>) -> Option<()> {
    match formula {
        Formula::True => Some(()),
        Formula::Atom(a) => {
            out.push(a.clone());
            Some(())
        }
        Formula::Not(inner) => match inner.as_ref() {
            Formula::Atom(a) => {
                out.push(a.negate());
                Some(())
            }
            _ => None,
        },
        Formula::And(parts) => {
            for part in parts {
                collect_atoms(part, out)?;
            }
            Some(())
        }
        _ => None,
    }
}

fn lia_to_smt(atoms: &[Atom], formulas: &[Formula], config: &TheoryConfig) -> SmtResult {
    let refs: Vec<&Atom> = atoms.iter().collect();
    match dispatch_check(&refs, config).result {
        LiaResult::Sat(values) => {
            let mut model = Model::new();
            for (var, value) in values {
                model.assign(var, value);
            }
            complete_model(&mut model, formulas);
            if model.satisfies_all(formulas) {
                SmtResult::Sat(model)
            } else {
                SmtResult::Unknown
            }
        }
        LiaResult::Unsat => SmtResult::Unsat,
        LiaResult::Unknown => SmtResult::Unknown,
    }
}

/// Assigns zero to any variable that occurs in the formulas but not in the
/// model, so that callers always receive total models.
fn complete_model(model: &mut Model, formulas: &[Formula]) {
    let mut vars = std::collections::BTreeSet::<Var>::new();
    for formula in formulas {
        formula.collect_vars(&mut vars);
    }
    for var in vars {
        if model.value(var).is_none() {
            model.assign(var, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{Term, Var};

    fn x(i: u32) -> Term {
        Term::var(Var::new(i))
    }

    fn check(formulas: &[Formula]) -> SmtResult {
        check_conjunction(formulas, &TheoryConfig::default())
    }

    #[test]
    fn conjunction_of_equalities_has_model() {
        let formulas = vec![
            Formula::eq(x(5), Term::sub(Term::int(100), x(4))),
            Formula::eq(Term::int(0), x(5)),
        ];
        match check(&formulas) {
            SmtResult::Sat(model) => {
                assert_eq!(model.value(Var::new(4)), Some(100));
                assert_eq!(model.value(Var::new(5)), Some(0));
                assert!(model.satisfies_all(&formulas));
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn boolean_structure_with_theory_conflicts() {
        // (x = 0 ∨ x = 1) ∧ x ≥ 5 is unsat; both disjuncts conflict with the bound.
        let formulas = vec![
            Formula::or(vec![
                Formula::eq(x(0), Term::int(0)),
                Formula::eq(x(0), Term::int(1)),
            ]),
            Formula::ge(x(0), Term::int(5)),
        ];
        assert_eq!(check(&formulas), SmtResult::Unsat);
    }

    #[test]
    fn disjunction_picks_consistent_branch() {
        // (x = 0 ∨ x = 7) ∧ x ≥ 5  ⇒  x = 7
        let formulas = vec![
            Formula::or(vec![
                Formula::eq(x(0), Term::int(0)),
                Formula::eq(x(0), Term::int(7)),
            ]),
            Formula::ge(x(0), Term::int(5)),
        ];
        match check(&formulas) {
            SmtResult::Sat(model) => assert_eq!(model.value(Var::new(0)), Some(7)),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn implication_from_case_maps() {
        // (x1 = x3 ⇒ x2 = x4) ∧ x1 = x3 ∧ x2 = 1 ∧ x4 = 0 is unsat.
        let formulas = vec![
            Formula::implies(Formula::eq(x(1), x(3)), Formula::eq(x(2), x(4))),
            Formula::eq(x(1), x(3)),
            Formula::eq(x(2), Term::int(1)),
            Formula::eq(x(4), Term::int(0)),
        ];
        assert_eq!(check(&formulas), SmtResult::Unsat);
    }

    #[test]
    fn entailment_check_works() {
        // x = 3 entails x > 0.
        let background = vec![Formula::eq(x(0), Term::int(3))];
        let goal = Formula::gt(x(0), Term::int(0));
        assert_eq!(
            check_entailed(&background, &goal, &TheoryConfig::default()),
            SmtResult::Unsat,
            "negation of an entailed formula must be unsat"
        );
        // x = 3 does not entail x > 5.
        let goal = Formula::gt(x(0), Term::int(5));
        assert!(check_entailed(&background, &goal, &TheoryConfig::default()).is_sat());
    }

    #[test]
    fn trivially_true_assertions_are_sat() {
        assert!(check(&[Formula::True]).is_sat());
        assert!(check(&[]).is_sat());
    }

    #[test]
    fn trivially_false_assertions_are_unsat() {
        assert_eq!(check(&[Formula::False]), SmtResult::Unsat);
    }

    #[test]
    fn iteration_exhaustion_is_counted() {
        // (x = 0 ∨ x = 1) ∧ x ≥ 5 needs two theory refutations; a budget of
        // one iteration exhausts and must both answer `Unknown` and count.
        let formulas = vec![
            Formula::or(vec![
                Formula::eq(x(0), Term::int(0)),
                Formula::eq(x(0), Term::int(1)),
            ]),
            Formula::ge(x(0), Term::int(5)),
        ];
        let config = TheoryConfig {
            max_iterations: 1,
            ..TheoryConfig::default()
        };
        let before = probes::totals().theory_iterations_exhausted;
        assert_eq!(check_conjunction(&formulas, &config), SmtResult::Unknown);
        let after = probes::totals().theory_iterations_exhausted;
        assert_eq!(after - before, 1, "the exhausted loop is counted");
    }

    #[test]
    fn dispatcher_routes_difference_conjunctions_to_dl() {
        // The difference-cycle regression, checked at the dispatch level:
        // with the gate open it goes to the DL module and refutes without
        // touching the propagation ceiling; with the gate closed it takes
        // the historical LIA path into the ceiling and `Unknown`. The
        // `x ≥ 0` seed gives interval propagation a bound to chase around
        // the cycle — without it the old path converges (vacuously) at
        // `Unknown` via truncated enumeration instead.
        let formulas = vec![
            Formula::ge(x(0), Term::int(0)),
            Formula::ge(x(1), x(0)),
            Formula::le(x(1), Term::sub(x(0), Term::int(12))),
        ];
        let mut config = TheoryConfig {
            theory_dl: true,
            ..TheoryConfig::default()
        };
        let before = probes::totals();
        assert_eq!(check_conjunction(&formulas, &config), SmtResult::Unsat);
        let delta = probes::totals().delta_since(&before);
        assert_eq!(delta.theory_dispatch_dl, 1);
        assert_eq!(delta.dl_checks, 1);
        assert_eq!(delta.dl_conflicts, 1);
        assert_eq!(delta.theory_dispatch_lia, 0);
        assert_eq!(delta.propagation_ceiling_hits, 0);

        config.theory_dl = false;
        let before = probes::totals();
        assert_eq!(check_conjunction(&formulas, &config), SmtResult::Unknown);
        let delta = probes::totals().delta_since(&before);
        assert_eq!(delta.theory_dispatch_dl, 0);
        assert!(delta.theory_dispatch_lia >= 1);
        assert!(
            delta.propagation_ceiling_hits >= 1,
            "the LIA path diverges into the round ceiling: {delta:?}"
        );
    }

    #[test]
    fn dispatcher_keeps_out_of_fragment_conjunctions_on_lia() {
        // A disequality is outside the difference fragment; the dispatcher
        // must leave it on the LIA engine even with the gate open.
        let formulas = vec![
            Formula::ne(x(0), x(1)),
            Formula::eq(x(0), Term::int(3)),
            Formula::eq(x(1), Term::int(3)),
        ];
        let config = TheoryConfig {
            theory_dl: true,
            ..TheoryConfig::default()
        };
        let before = probes::totals();
        assert_eq!(check_conjunction(&formulas, &config), SmtResult::Unsat);
        let delta = probes::totals().delta_since(&before);
        assert_eq!(delta.theory_dispatch_dl, 0);
        assert!(delta.theory_dispatch_lia >= 1);
    }
}
