//! Cross-worker theory-lemma sharing.
//!
//! A theory lemma is a set of (polarity-folded) atoms whose conjunction the
//! LIA theory refuted: `¬(a₁ ∧ … ∧ aₙ)` holds under *every* assignment, in
//! every frame, in every solver — the atoms are pure arithmetic facts with
//! no dependence on which worker, program variant or check derived them.
//! Because [`crate::arena`] interns atoms through a process-global registry,
//! an [`AtomId`] names the same atom in every worker, so a lemma can be
//! published as a plain sorted id set and imported by any sibling core that
//! knows (or later learns) those atoms.
//!
//! [`SharedLemmaPool`] is the exchange point: an append-only, deduplicated
//! pool of lemmas behind a mutex, shared across workers the way
//! `cpcf`'s `SharedVerdictCache` shares verdicts. Publishing is
//! one lock + one hash; importing is a cursor read, so a core that imports
//! at every check boundary only ever pays for lemmas it has not yet seen.
//!
//! Sharing is gated by the `CPCF_LEMMA_SHARING` environment variable
//! ([`default_lemma_sharing`]): `on` (the default) or `off` (the ablation
//! leg that measures what sharing buys).

use std::collections::HashSet;
use std::sync::{Arc, Mutex};

use crate::arena::AtomId;

/// One shared lemma: a sorted, distinct set of polarity-folded atom ids
/// whose conjunction is theory-inconsistent.
pub type SharedLemma = Arc<[AtomId]>;

#[derive(Debug, Default)]
struct PoolInner {
    /// Append-only publication order, so per-core cursors stay valid.
    lemmas: Vec<SharedLemma>,
    /// Content dedup: the same atom set is only ever published once.
    seen: HashSet<SharedLemma>,
}

/// A pool of theory lemmas shared across solver cores (and threads).
///
/// Clones share the same underlying pool, mirroring the handle semantics of
/// `SharedVerdictCache`: the analysis driver creates one pool per run (or
/// the bench harness one per program, spanning both variants) and hands a
/// clone to every session.
#[derive(Debug, Clone, Default)]
pub struct SharedLemmaPool {
    inner: Arc<Mutex<PoolInner>>,
}

impl SharedLemmaPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        SharedLemmaPool::default()
    }

    /// Publishes a lemma: `atoms` is a conjunction of polarity-folded atom
    /// ids the theory refuted. The set is sorted and deduplicated before
    /// insertion; returns `true` when the pool did not already hold it.
    pub fn publish(&self, atoms: &[AtomId]) -> bool {
        if atoms.is_empty() {
            return false;
        }
        let mut sorted: Vec<AtomId> = atoms.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let lemma: SharedLemma = sorted.into();
        let mut inner = self.inner.lock().expect("lemma pool poisoned");
        if inner.seen.insert(Arc::clone(&lemma)) {
            inner.lemmas.push(lemma);
            true
        } else {
            false
        }
    }

    /// The lemmas published at or after position `cursor`, together with the
    /// new cursor (the pool length). A core that keeps its cursor and calls
    /// this at every check boundary sees each lemma exactly once.
    pub fn fetch_from(&self, cursor: usize) -> (Vec<SharedLemma>, usize) {
        let inner = self.inner.lock().expect("lemma pool poisoned");
        let fresh = inner.lemmas.get(cursor..).unwrap_or(&[]).to_vec();
        (fresh, inner.lemmas.len())
    }

    /// Number of distinct lemmas published so far.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("lemma pool poisoned").lemmas.len()
    }

    /// True when no lemma has been published.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Whether lemma sharing is enabled by default, from the
/// `CPCF_LEMMA_SHARING` environment variable: `on` (the default when unset)
/// or `off` (the ablation). An unrecognised value falls back to `on` with a
/// once-per-process warning, mirroring `CPCF_SOLVER_CORE`'s behaviour so a
/// typo in a CI matrix cannot silently test the wrong configuration.
pub fn default_lemma_sharing() -> bool {
    match std::env::var("CPCF_LEMMA_SHARING").ok().as_deref() {
        Some("off") => false,
        Some("on") | None => true,
        Some(other) => {
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| {
                eprintln!(
                    "warning: unrecognised CPCF_LEMMA_SHARING `{other}` \
                     (expected on|off); using on"
                );
            });
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::Arena;
    use crate::formula::{Atom, CmpOp};
    use crate::term::{Term, Var};

    fn atom_id(arena: &mut Arena, i: u32, n: i64) -> AtomId {
        arena.intern_atom(&Atom::new(Term::var(Var::new(i)), CmpOp::Eq, Term::int(n)))
    }

    #[test]
    fn publish_dedups_and_sorts() {
        let mut arena = Arena::new();
        let a = atom_id(&mut arena, 0, 1);
        let b = atom_id(&mut arena, 1, 2);
        let pool = SharedLemmaPool::new();
        assert!(pool.publish(&[b, a, b]));
        // The same set in any order and multiplicity is one lemma.
        assert!(!pool.publish(&[a, b]));
        assert_eq!(pool.len(), 1);
        let (lemmas, cursor) = pool.fetch_from(0);
        assert_eq!(cursor, 1);
        let mut expected = vec![a, b];
        expected.sort_unstable();
        assert_eq!(lemmas[0].as_ref(), expected.as_slice());
    }

    #[test]
    fn cursors_see_each_lemma_once() {
        let mut arena = Arena::new();
        let a = atom_id(&mut arena, 0, 1);
        let b = atom_id(&mut arena, 1, 2);
        let pool = SharedLemmaPool::new();
        pool.publish(&[a]);
        let (first, cursor) = pool.fetch_from(0);
        assert_eq!(first.len(), 1);
        let (none, cursor) = pool.fetch_from(cursor);
        assert!(none.is_empty());
        pool.publish(&[a, b]);
        let (second, cursor) = pool.fetch_from(cursor);
        assert_eq!(second.len(), 1);
        assert_eq!(cursor, 2);
    }

    #[test]
    fn empty_lemmas_are_rejected() {
        let pool = SharedLemmaPool::new();
        assert!(!pool.publish(&[]));
        assert!(pool.is_empty());
    }

    #[test]
    fn pool_handles_share_state_and_cross_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedLemmaPool>();
        let mut arena = Arena::new();
        let a = atom_id(&mut arena, 0, 1);
        let pool = SharedLemmaPool::new();
        let clone = pool.clone();
        pool.publish(&[a]);
        assert_eq!(clone.len(), 1, "clones see the same pool");
    }
}
