//! Cross-worker theory-lemma sharing.
//!
//! A theory lemma is a set of (polarity-folded) atoms whose conjunction the
//! LIA theory refuted: `¬(a₁ ∧ … ∧ aₙ)` holds under *every* assignment, in
//! every frame, in every solver — the atoms are pure arithmetic facts with
//! no dependence on which worker, program variant or check derived them.
//! Because [`crate::arena`] interns atoms through a process-global registry,
//! an [`AtomId`] names the same atom in every worker, so a lemma can be
//! published as a plain sorted id set and imported by any sibling core that
//! knows (or later learns) those atoms.
//!
//! [`SharedLemmaPool`] is the exchange point: an append-only, deduplicated
//! pool of lemmas shared across workers the way `cpcf`'s
//! `SharedVerdictCache` shares verdicts. The pool is split by access
//! pattern: the publication **log** lives behind an `RwLock`, so the hot
//! path — every core's per-check-boundary cursor read — takes a shared read
//! lock and runs concurrently with every other reader; only the (much
//! rarer) publication of a genuinely new lemma takes the write lock. The
//! content-dedup set sits behind its own mutex, serializing writers without
//! ever blocking readers. Importing stays a cursor read, so a core that
//! imports at every check boundary only ever pays for lemmas it has not yet
//! seen.
//!
//! Sharing is gated by the `CPCF_LEMMA_SHARING` environment variable
//! ([`default_lemma_sharing`]): `on` (the default) or `off` (the ablation
//! leg that measures what sharing buys).
//!
//! Lemmas also persist well: their atoms are universally valid arithmetic
//! facts, so `cpcf`'s analysis store serializes them *by content* (atom
//! structure, not process-local ids — see [`crate::arena::global_atom`])
//! and warm-starts a later run's pool from disk.

use std::collections::HashSet;
use std::sync::{Arc, Mutex, RwLock};

use crate::arena::AtomId;

/// One shared lemma: a sorted, distinct set of polarity-folded atom ids
/// whose conjunction is theory-inconsistent.
pub type SharedLemma = Arc<[AtomId]>;

#[derive(Debug, Default)]
struct PoolInner {
    /// Append-only publication order, so per-core cursors stay valid.
    /// Readers (cursor fetches, length checks) share the lock; only the
    /// append of a new lemma writes.
    log: RwLock<Vec<SharedLemma>>,
    /// Content dedup: the same atom set is only ever published once. Kept
    /// behind a separate mutex so writer deduplication never blocks the
    /// readers of `log`.
    seen: Mutex<HashSet<SharedLemma>>,
}

/// A pool of theory lemmas shared across solver cores (and threads).
///
/// Clones share the same underlying pool, mirroring the handle semantics of
/// `SharedVerdictCache`: the analysis driver creates one pool per run (or
/// the bench harness one per program, spanning both variants) and hands a
/// clone to every session.
#[derive(Debug, Clone, Default)]
pub struct SharedLemmaPool {
    inner: Arc<PoolInner>,
}

impl SharedLemmaPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        SharedLemmaPool::default()
    }

    /// Publishes a lemma: `atoms` is a conjunction of polarity-folded atom
    /// ids the theory refuted. The set is sorted and deduplicated before
    /// insertion; returns `true` when the pool did not already hold it.
    pub fn publish(&self, atoms: &[AtomId]) -> bool {
        if atoms.is_empty() {
            return false;
        }
        let mut sorted: Vec<AtomId> = atoms.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let lemma: SharedLemma = sorted.into();
        // The `seen` mutex serializes publishers, so between the dedup
        // check and the log append no sibling can slip the same lemma in.
        let mut seen = self.inner.seen.lock().expect("lemma pool poisoned");
        if seen.insert(Arc::clone(&lemma)) {
            self.inner
                .log
                .write()
                .expect("lemma pool poisoned")
                .push(lemma);
            true
        } else {
            false
        }
    }

    /// The lemmas published at or after position `cursor`, together with the
    /// new cursor (the pool length). A core that keeps its cursor and calls
    /// this at every check boundary sees each lemma exactly once. Readers
    /// take only the shared side of the log lock, so concurrent fetches
    /// never serialize against each other.
    pub fn fetch_from(&self, cursor: usize) -> (Vec<SharedLemma>, usize) {
        let log = self.inner.log.read().expect("lemma pool poisoned");
        let fresh = log.get(cursor..).unwrap_or(&[]).to_vec();
        (fresh, log.len())
    }

    /// Number of distinct lemmas published so far.
    pub fn len(&self) -> usize {
        self.inner.log.read().expect("lemma pool poisoned").len()
    }

    /// True when no lemma has been published.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Whether lemma sharing is enabled by default, from the
/// `CPCF_LEMMA_SHARING` environment variable: `on` (the default when unset)
/// or `off` (the ablation). An unrecognised value falls back to `on` with a
/// once-per-process warning, mirroring `CPCF_SOLVER_CORE`'s behaviour so a
/// typo in a CI matrix cannot silently test the wrong configuration.
pub fn default_lemma_sharing() -> bool {
    match std::env::var("CPCF_LEMMA_SHARING").ok().as_deref() {
        Some("off") => false,
        Some("on") | None => true,
        Some(other) => {
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| {
                eprintln!(
                    "warning: unrecognised CPCF_LEMMA_SHARING `{other}` \
                     (expected on|off); using on"
                );
            });
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::Arena;
    use crate::formula::{Atom, CmpOp};
    use crate::term::{Term, Var};

    fn atom_id(arena: &mut Arena, i: u32, n: i64) -> AtomId {
        arena.intern_atom(&Atom::new(Term::var(Var::new(i)), CmpOp::Eq, Term::int(n)))
    }

    #[test]
    fn publish_dedups_and_sorts() {
        let mut arena = Arena::new();
        let a = atom_id(&mut arena, 0, 1);
        let b = atom_id(&mut arena, 1, 2);
        let pool = SharedLemmaPool::new();
        assert!(pool.publish(&[b, a, b]));
        // The same set in any order and multiplicity is one lemma.
        assert!(!pool.publish(&[a, b]));
        assert_eq!(pool.len(), 1);
        let (lemmas, cursor) = pool.fetch_from(0);
        assert_eq!(cursor, 1);
        let mut expected = vec![a, b];
        expected.sort_unstable();
        assert_eq!(lemmas[0].as_ref(), expected.as_slice());
    }

    #[test]
    fn cursors_see_each_lemma_once() {
        let mut arena = Arena::new();
        let a = atom_id(&mut arena, 0, 1);
        let b = atom_id(&mut arena, 1, 2);
        let pool = SharedLemmaPool::new();
        pool.publish(&[a]);
        let (first, cursor) = pool.fetch_from(0);
        assert_eq!(first.len(), 1);
        let (none, cursor) = pool.fetch_from(cursor);
        assert!(none.is_empty());
        pool.publish(&[a, b]);
        let (second, cursor) = pool.fetch_from(cursor);
        assert_eq!(second.len(), 1);
        assert_eq!(cursor, 2);
    }

    #[test]
    fn empty_lemmas_are_rejected() {
        let pool = SharedLemmaPool::new();
        assert!(!pool.publish(&[]));
        assert!(pool.is_empty());
    }

    #[test]
    fn pool_handles_share_state_and_cross_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedLemmaPool>();
        let mut arena = Arena::new();
        let a = atom_id(&mut arena, 0, 1);
        let pool = SharedLemmaPool::new();
        let clone = pool.clone();
        pool.publish(&[a]);
        assert_eq!(clone.len(), 1, "clones see the same pool");
    }

    #[test]
    fn concurrent_publishers_and_readers_converge() {
        // Hammer the split-lock pool from both sides: publishers racing on
        // overlapping lemma sets, readers draining via cursors. Every
        // distinct set must appear exactly once and every cursor walk must
        // observe a consistent append-only log.
        let mut arena = Arena::new();
        let ids: Vec<AtomId> = (0..16).map(|i| atom_id(&mut arena, i, i as i64)).collect();
        let pool = SharedLemmaPool::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let pool = pool.clone();
                let ids = ids.clone();
                scope.spawn(move || {
                    for i in 0..ids.len().saturating_sub(1) {
                        // Each publisher offers the same sliding pairs; the
                        // pool must dedup them across threads.
                        pool.publish(&[ids[i], ids[i + 1]]);
                        let _ = t;
                    }
                });
            }
            let reader = pool.clone();
            scope.spawn(move || {
                let mut cursor = 0;
                let mut seen = 0;
                while seen < 4 {
                    let (fresh, next) = reader.fetch_from(cursor);
                    assert!(next >= cursor, "the log never shrinks");
                    seen += fresh.len();
                    cursor = next;
                    if fresh.is_empty() {
                        std::thread::yield_now();
                    }
                }
            });
        });
        assert_eq!(pool.len(), 15, "each distinct pair published exactly once");
    }
}
