//! The persistent solver core: hash-consed atoms, a long-lived CDCL
//! instance, and per-query cone slicing.
//!
//! [`crate::theory::check_conjunction_counted`] — the *scratch* engine —
//! rebuilds a SAT solver, re-runs Tseitin encoding and restarts the lazy SMT
//! loop from nothing on every satisfiability check. [`TheoryCore`] is the
//! incremental replacement owned by [`crate::solver::Solver`]:
//!
//! * **Hash-consed atoms** ([`crate::arena::Arena`]): every distinct atom is
//!   interned once; its free variables, its negation and its SAT variable
//!   are computed the first time and reused by every later query.
//! * **Persistent CDCL state**: the clause database survives across checks.
//!   Each asserted formula is Tseitin-encoded once into *definitional*
//!   clauses (pure definitions of auxiliary variables, valid in any frame)
//!   plus a **root literal** that acts as the formula's activation literal:
//!   a check assumes the root literals of the formulas that are live, so
//!   `push`/`pop`/`pop_to` retract by no longer assuming a frame's literals
//!   instead of discarding clauses. Theory conflict clauses are valid
//!   lemmas over the interned atoms, so they are added unguarded and keep
//!   pruning the search in every later check whose cone they touch; clauses
//!   blocking merely-undecided (`Unknown`) candidates are guarded by a
//!   per-check query literal and become inert once the check returns.
//! * **Theory-module dispatch** ([`crate::theory::TheorySolver`]): every
//!   candidate atom conjunction — the fast path's whole set, and each
//!   propositional candidate of the SMT loop — is routed to the cheapest
//!   complete theory module: the incremental difference-logic engine
//!   ([`crate::dl::DlSolver`]) when every atom normalises to `x − y ≤ c`,
//!   the general LIA engine otherwise. A difference-logic refutation
//!   contributes its negative-cycle *explanation* (the inconsistent subset)
//!   as the blocking clause and the shared lemma instead of blaming the
//!   whole candidate, so the learnt clause prunes strictly more.
//! * **Per-query cone slicing**: before searching, the active formulas are
//!   partitioned into variable-connected components (union–find over each
//!   formula's cached variable set). A query only solves the components its
//!   assumptions touch; the untouched components are checked separately —
//!   with their verdicts memoized across queries — only when a model must
//!   be produced, and a query about one heap location never pays for the
//!   propositional search of unrelated locations' constraints.
//! * **Cross-worker lemma sharing** ([`crate::lemmas`]): because atom ids
//!   are process-global, a theory lemma is meaningful outside the core that
//!   derived it. A core attached to a [`SharedLemmaPool`] publishes every
//!   theory-refuted polarity set and imports siblings' lemmas at CDCL check
//!   boundaries, so workers analysing related queries (the two variants of
//!   one program, an export and its validation run) split the cost of the
//!   theory conflicts they would otherwise each re-derive.
//!
//! The core is deliberately conservative about its own incompleteness:
//! whenever the sliced/persistent pipeline cannot decide a check
//! (`Unknown`), it falls back to the scratch engine on the full formula
//! set, so its answers can only be *more* decided than the scratch
//! engine's, never different on decided verdicts — `Sat` answers carry a
//! model verified against every live formula, and `Unsat` answers follow
//! from sound clauses alone.

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use crate::arena::{Arena, AtomId};
use crate::cnf::{encode_and_gate, encode_or_gate};
use crate::formula::Formula;
use crate::lemmas::{SharedLemma, SharedLemmaPool};
use crate::lia::LiaResult;
use crate::model::Model;
use crate::probes;
use crate::sat::{BVar, Lit, SatResult as PropResult, SatSolver, SatStats};
use crate::term::Var;
use crate::theory::{
    check_conjunction_counted, collect_atoms, dispatch_check, SmtResult, TheoryConfig,
};

/// Bound on memoized formula analyses and component verdicts; the caches are
/// cleared wholesale when they outgrow it (correctness never depends on a
/// cache hit).
const CACHE_BOUND: usize = 1 << 20;

/// Counters describing the work the persistent core has saved, surfaced
/// through [`crate::solver::SolverStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Distinct atoms interned into the arena (since the last reset).
    pub atoms_interned: u64,
    /// Clauses already in the persistent database at the start of a CDCL
    /// check — encoding, theory lemmas and learned clauses the scratch
    /// engine would have had to rebuild or re-derive.
    pub clauses_reused: u64,
    /// Variables excluded from a query's search because they lay outside
    /// the dependency cone of its assumptions.
    pub cone_vars_pruned: u64,
    /// Checks the persistent pipeline handed to the scratch engine because
    /// it could not decide them itself.
    pub scratch_fallbacks: u64,
    /// Theory lemmas this core published into the shared pool that the pool
    /// had not seen before.
    pub lemmas_published: u64,
    /// Sibling lemmas imported from the shared pool as clauses of this
    /// core's persistent SAT instance.
    pub lemmas_imported: u64,
}

/// Everything the core ever needs to know about one distinct formula,
/// computed once and shared by every assertion of that formula (`Rc`).
#[derive(Debug)]
struct FormulaInfo {
    /// Content id: one per distinct formula analyzed by this core. Used to
    /// key component verdicts, so a component re-asserted on a sibling
    /// branch hits the memo even after pops.
    id: u64,
    formula: Formula,
    /// The negation-normal form, computed once (atoms carry the polarity).
    nnf: Formula,
    /// Sorted distinct free variables of the original formula.
    vars: Vec<Var>,
    /// Distinct atoms of the NNF, in first-occurrence order.
    atoms: Vec<AtomId>,
    /// When the formula is a pure conjunction of atoms: the atom ids in the
    /// scratch engine's collection order (negations folded into operators).
    conjunction: Option<Vec<AtomId>>,
    /// The Tseitin root literal — the formula's activation literal —
    /// encoded on first use by a CDCL check.
    root: Cell<Option<Lit>>,
    /// The SAT variables this formula's encoding branches on (its atoms'
    /// variables plus the auxiliary gate variables), filled at encode time.
    sat_vars: RefCell<Vec<BVar>>,
}

/// The persistent core. One instance lives inside each [`crate::Solver`]
/// and sees every assertion, retraction and check of that solver's life.
#[derive(Debug)]
pub struct TheoryCore {
    config: TheoryConfig,
    arena: Arena,
    sat: SatSolver,
    /// Atom id → SAT variable, allocated once per atom.
    atom_lit: HashMap<AtomId, BVar>,
    /// Memoized analyses, one per distinct formula.
    analyzed: HashMap<Formula, Rc<FormulaInfo>>,
    next_formula_id: u64,
    /// The live assertions, mirroring `Solver::assertions` element-wise.
    formulas: Vec<Rc<FormulaInfo>>,
    /// Memoized verdicts for out-of-cone components, keyed by their sorted
    /// distinct formula-id sets.
    component_cache: HashMap<Vec<u64>, SmtResult>,
    /// Arena size at the last stats reset (`atoms_interned` is a delta).
    atoms_at_reset: usize,
    clauses_reused: u64,
    cone_vars_pruned: u64,
    scratch_fallbacks: u64,
    /// The cross-worker lemma exchange, when the session opted in.
    lemma_pool: Option<SharedLemmaPool>,
    /// Position in the pool's publication order up to which this core has
    /// already fetched.
    lemma_cursor: usize,
    /// Fetched lemmas whose atoms have no SAT variables here yet; retried
    /// at every import until they become expressible.
    deferred_lemmas: Vec<SharedLemma>,
    /// Lemmas this core already holds as clauses (own derivations and
    /// completed imports), so a round trip through the pool is not re-added.
    known_lemmas: HashSet<SharedLemma>,
    lemmas_published: u64,
    lemmas_imported: u64,
}

impl TheoryCore {
    /// Creates an empty core.
    pub fn new(config: TheoryConfig) -> Self {
        let mut sat = SatSolver::new();
        if let Some(limit) = config.sat_reduce_limit {
            sat.set_reduce_limit(limit);
        }
        TheoryCore {
            config,
            arena: Arena::new(),
            sat,
            atom_lit: HashMap::new(),
            analyzed: HashMap::new(),
            next_formula_id: 0,
            formulas: Vec::new(),
            component_cache: HashMap::new(),
            atoms_at_reset: 0,
            clauses_reused: 0,
            cone_vars_pruned: 0,
            scratch_fallbacks: 0,
            lemma_pool: None,
            lemma_cursor: 0,
            deferred_lemmas: Vec::new(),
            known_lemmas: HashSet::new(),
            lemmas_published: 0,
            lemmas_imported: 0,
        }
    }

    /// Connects this core to a cross-worker lemma pool: theory lemmas it
    /// derives are published, and sibling lemmas are imported at CDCL check
    /// boundaries. Soundness never depends on the pool — every lemma is a
    /// universally valid clause over globally-interned atoms.
    pub fn set_lemma_pool(&mut self, pool: SharedLemmaPool) {
        self.lemma_pool = Some(pool);
        self.lemma_cursor = 0;
        self.deferred_lemmas.clear();
    }

    /// The core's cumulative counters.
    pub fn stats(&self) -> CoreStats {
        CoreStats {
            atoms_interned: (self.arena.atom_count() - self.atoms_at_reset) as u64,
            clauses_reused: self.clauses_reused,
            cone_vars_pruned: self.cone_vars_pruned,
            scratch_fallbacks: self.scratch_fallbacks,
            lemmas_published: self.lemmas_published,
            lemmas_imported: self.lemmas_imported,
        }
    }

    /// Resets the counters; interned state and clauses are untouched.
    pub fn reset_stats(&mut self) {
        self.atoms_at_reset = self.arena.atom_count();
        self.clauses_reused = 0;
        self.cone_vars_pruned = 0;
        self.scratch_fallbacks = 0;
        self.lemmas_published = 0;
        self.lemmas_imported = 0;
    }

    /// Number of live assertions (must mirror the owning solver's).
    pub fn len(&self) -> usize {
        self.formulas.len()
    }

    /// True when no assertion is live.
    pub fn is_empty(&self) -> bool {
        self.formulas.is_empty()
    }

    /// Registers one asserted formula (interning atoms and memoizing its
    /// analysis if this is the first time the formula is seen).
    pub fn assert(&mut self, formula: &Formula) {
        let info = self.analyze(formula);
        self.formulas.push(info);
    }

    /// Retracts assertions beyond `len` — the frame pop. The retracted
    /// formulas' clauses stay in the database; their activation (root)
    /// literals are simply never assumed again.
    pub fn truncate(&mut self, len: usize) {
        self.formulas.truncate(len);
    }

    /// Retracts every assertion while keeping the interned atoms, the
    /// Tseitin encodings, the theory lemmas and the component memos — the
    /// whole-session rebase entry point.
    pub fn clear(&mut self) {
        self.formulas.clear();
    }

    /// Memoized per-formula analysis.
    fn analyze(&mut self, formula: &Formula) -> Rc<FormulaInfo> {
        if let Some(info) = self.analyzed.get(formula) {
            return Rc::clone(info);
        }
        if self.analyzed.len() >= CACHE_BOUND {
            self.analyzed.clear();
        }
        let vars: Vec<Var> = formula.vars().into_iter().collect();
        let nnf = formula.to_nnf();
        let mut seen = HashSet::new();
        let mut atoms = Vec::new();
        self.collect_nnf_atoms(&nnf, &mut seen, &mut atoms);
        let conjunction = as_atom_conjunction(formula).map(|flat| {
            flat.iter()
                .map(|atom| self.arena.intern_atom(atom))
                .collect()
        });
        let info = Rc::new(FormulaInfo {
            id: self.next_formula_id,
            formula: formula.clone(),
            nnf,
            vars,
            atoms,
            conjunction,
            root: Cell::new(None),
            sat_vars: RefCell::new(Vec::new()),
        });
        self.next_formula_id += 1;
        self.analyzed.insert(formula.clone(), Rc::clone(&info));
        info
    }

    fn collect_nnf_atoms(
        &mut self,
        formula: &Formula,
        seen: &mut HashSet<AtomId>,
        out: &mut Vec<AtomId>,
    ) {
        match formula {
            Formula::True | Formula::False => {}
            Formula::Atom(atom) => {
                let id = self.arena.intern_atom(atom);
                if seen.insert(id) {
                    out.push(id);
                }
            }
            Formula::Not(inner) => self.collect_nnf_atoms(inner, seen, out),
            Formula::And(parts) | Formula::Or(parts) => {
                for part in parts {
                    self.collect_nnf_atoms(part, seen, out);
                }
            }
            Formula::Implies(a, b) | Formula::Iff(a, b) => {
                self.collect_nnf_atoms(a, seen, out);
                self.collect_nnf_atoms(b, seen, out);
            }
        }
    }

    /// Checks satisfiability of the live assertions together with
    /// `assumptions`, returning the verdict and the CDCL statistics
    /// accumulated across the check.
    pub fn check(&mut self, assumptions: &[Formula]) -> (SmtResult, SatStats) {
        let assumed: Vec<Rc<FormulaInfo>> = assumptions.iter().map(|f| self.analyze(f)).collect();
        let active: Vec<Rc<FormulaInfo>> = self.formulas.clone();
        let mut sat_stats = SatStats::default();
        let result = if assumed.is_empty() {
            // Nothing to slice against: the whole assertion set is the cone.
            let result = self.check_set(&active, &[], &mut sat_stats);
            match result {
                SmtResult::Unknown => self.fallback(&active, &[], &mut sat_stats),
                decided => decided,
            }
        } else {
            self.check_sliced(&active, &assumed, &mut sat_stats)
        };
        (result, sat_stats)
    }

    /// The sliced check: solve the assumptions' dependency cone, and touch
    /// the unrelated components only if a model must be produced.
    fn check_sliced(
        &mut self,
        active: &[Rc<FormulaInfo>],
        assumed: &[Rc<FormulaInfo>],
        sat_stats: &mut SatStats,
    ) -> SmtResult {
        let slicing = slice(active, assumed);
        if !slicing.rest.is_empty() {
            self.cone_vars_pruned += slicing.pruned_vars as u64;
        }
        match self.check_set(&slicing.cone, assumed, sat_stats) {
            // The cone is a subset of the live assertions, so its
            // inconsistency is the whole set's inconsistency.
            SmtResult::Unsat => SmtResult::Unsat,
            SmtResult::Unknown => self.fallback(active, assumed, sat_stats),
            SmtResult::Sat(mut model) => {
                // A model must also cover the out-of-cone components; their
                // verdicts are memoized because they do not depend on the
                // query. Components are variable-disjoint, so the models
                // merge without conflicts.
                for component in &slicing.rest {
                    match self.check_component(component, sat_stats) {
                        SmtResult::Sat(part) => model.extend(part.iter()),
                        SmtResult::Unsat => return SmtResult::Unsat,
                        SmtResult::Unknown => return self.fallback(active, assumed, sat_stats),
                    }
                }
                match self.finish_model(model, active, assumed) {
                    SmtResult::Sat(model) => SmtResult::Sat(model),
                    _ => self.fallback(active, assumed, sat_stats),
                }
            }
        }
    }

    /// Checks one out-of-cone component, memoizing its verdict by content
    /// (the sorted distinct formula ids — an exact key, since an aliased
    /// `Unsat` would flow into a verdict without any witness check).
    fn check_component(
        &mut self,
        component: &[Rc<FormulaInfo>],
        sat_stats: &mut SatStats,
    ) -> SmtResult {
        let mut ids: Vec<u64> = component.iter().map(|info| info.id).collect();
        ids.sort_unstable();
        ids.dedup();
        if let Some(cached) = self.component_cache.get(&ids) {
            return cached.clone();
        }
        let result = self.check_set(component, &[], sat_stats);
        if self.component_cache.len() >= CACHE_BOUND {
            self.component_cache.clear();
        }
        self.component_cache.insert(ids, result.clone());
        result
    }

    /// The authoritative answer when the persistent pipeline is stuck: run
    /// the scratch engine over the full live formula set.
    fn fallback(
        &mut self,
        active: &[Rc<FormulaInfo>],
        assumed: &[Rc<FormulaInfo>],
        sat_stats: &mut SatStats,
    ) -> SmtResult {
        self.scratch_fallbacks += 1;
        let formulas: Vec<Formula> = active
            .iter()
            .chain(assumed)
            .map(|info| info.formula.clone())
            .collect();
        let (result, scratch_stats) = check_conjunction_counted(&formulas, &self.config);
        sat_stats.merge(&scratch_stats);
        result
    }

    /// Decides the conjunction of `active ∪ assumed`: a pure atom
    /// conjunction goes straight to the theory; anything with boolean
    /// structure runs the lazy SMT loop on the persistent CDCL state.
    fn check_set(
        &mut self,
        active: &[Rc<FormulaInfo>],
        assumed: &[Rc<FormulaInfo>],
        sat_stats: &mut SatStats,
    ) -> SmtResult {
        let conjunctive = active
            .iter()
            .chain(assumed)
            .all(|info| info.conjunction.is_some());
        if conjunctive {
            let ids: Vec<AtomId> = active
                .iter()
                .chain(assumed)
                .flat_map(|info| {
                    info.conjunction
                        .as_deref()
                        .expect("checked")
                        .iter()
                        .copied()
                })
                .collect();
            let dispatched = {
                let refs: Vec<&crate::formula::Atom> =
                    ids.iter().map(|&id| self.arena.atom(id)).collect();
                dispatch_check(&refs, &self.config)
            };
            return match dispatched.result {
                LiaResult::Sat(values) => {
                    let mut model = Model::new();
                    for (var, value) in values {
                        model.assign(var, value);
                    }
                    self.finish_model(model, active, assumed)
                }
                LiaResult::Unsat => {
                    // The refuted conjunction is a theory lemma: siblings
                    // re-deriving this exact refutation (the other variant
                    // of the same program, a validation run) skip it. A
                    // module explanation narrows the lemma to the
                    // inconsistent subset — a stronger, more reusable
                    // clause.
                    let lemma: Vec<AtomId> = match &dispatched.explanation {
                        Some(explanation) if !explanation.is_empty() => {
                            explanation.iter().map(|&i| ids[i]).collect()
                        }
                        _ => ids.clone(),
                    };
                    self.publish_lemma(&lemma);
                    SmtResult::Unsat
                }
                LiaResult::Unknown => SmtResult::Unknown,
            };
        }
        self.check_cdcl(active, assumed, sat_stats)
    }

    /// Completes a theory model over the formulas' variables and gates it
    /// behind the full evaluation check, exactly like the scratch engine.
    fn finish_model(
        &self,
        mut model: Model,
        active: &[Rc<FormulaInfo>],
        assumed: &[Rc<FormulaInfo>],
    ) -> SmtResult {
        for info in active.iter().chain(assumed) {
            for &var in &info.vars {
                if model.value(var).is_none() {
                    model.assign(var, 0);
                }
            }
        }
        let satisfied = active
            .iter()
            .chain(assumed)
            .all(|info| model.eval_formula(&info.formula).unwrap_or(false));
        if satisfied {
            SmtResult::Sat(model)
        } else {
            SmtResult::Unknown
        }
    }

    /// The lazy SMT loop over the persistent SAT instance.
    fn check_cdcl(
        &mut self,
        active: &[Rc<FormulaInfo>],
        assumed: &[Rc<FormulaInfo>],
        sat_stats: &mut SatStats,
    ) -> SmtResult {
        // Everything already in the database was paid for by earlier checks
        // and is reused wholesale here: Tseitin encodings the scratch
        // engine would rebuild, and theory/learned clauses it would have to
        // re-derive conflict by conflict.
        self.clauses_reused += self.sat.num_clauses() as u64;

        // Activation literals of the formulas under check, encoding on
        // first use; their SAT variables are this check's branching set.
        let mut assumption_lits: Vec<Lit> = Vec::new();
        let mut decision_vars: Vec<BVar> = Vec::new();
        let mut atom_set: Vec<AtomId> = Vec::new();
        let mut seen_atoms: HashSet<AtomId> = HashSet::new();
        for info in active.iter().chain(assumed) {
            assumption_lits.push(self.root_lit(info));
            decision_vars.extend(info.sat_vars.borrow().iter().copied());
            for &atom in &info.atoms {
                if seen_atoms.insert(atom) {
                    atom_set.push(atom);
                }
            }
        }

        // With this check's atoms now holding SAT variables, sibling lemmas
        // over those atoms become expressible — import them before the
        // search so they prune it.
        self.import_lemmas();

        let mut soft_guard: Option<BVar> = None;
        let mut saw_unknown = false;
        for _iteration in 0..self.config.max_iterations {
            let propositional = self.sat.solve_under(&assumption_lits, Some(&decision_vars));
            sat_stats.merge(&self.sat.stats());
            match propositional {
                PropResult::Unsat => {
                    return if saw_unknown {
                        SmtResult::Unknown
                    } else {
                        SmtResult::Unsat
                    };
                }
                PropResult::Sat(assignment) => {
                    let mut chosen: Vec<AtomId> = Vec::with_capacity(atom_set.len());
                    let mut blocking: Vec<Lit> = Vec::with_capacity(atom_set.len());
                    for &atom in &atom_set {
                        let bvar = self.atom_lit[&atom];
                        let value = assignment[bvar.index() as usize];
                        chosen.push(if value { atom } else { self.arena.negate(atom) });
                        blocking.push(if value {
                            bvar.negative()
                        } else {
                            bvar.positive()
                        });
                    }
                    let dispatched = {
                        let refs: Vec<&crate::formula::Atom> =
                            chosen.iter().map(|&id| self.arena.atom(id)).collect();
                        dispatch_check(&refs, &self.config)
                    };
                    match dispatched.result {
                        LiaResult::Sat(values) => {
                            let mut model = Model::new();
                            for (var, value) in values {
                                model.assign(var, value);
                            }
                            match self.finish_model(model, active, assumed) {
                                SmtResult::Sat(model) => return SmtResult::Sat(model),
                                _ => {
                                    // The theory model does not extend to
                                    // the boolean structure: block this
                                    // candidate for the current check only.
                                    saw_unknown = true;
                                    self.block_softly(
                                        blocking,
                                        &mut soft_guard,
                                        &mut assumption_lits,
                                    );
                                }
                            }
                        }
                        LiaResult::Unsat => {
                            if blocking.is_empty() {
                                return SmtResult::Unsat;
                            }
                            // A theory lemma: this combination of atom
                            // polarities is inconsistent under any
                            // assignment, in any frame — retain it, and
                            // offer it to sibling workers. A module
                            // explanation narrows both the clause and the
                            // lemma to the inconsistent subset.
                            let (clause, lemma): (Vec<Lit>, Vec<AtomId>) =
                                match &dispatched.explanation {
                                    Some(explanation) if !explanation.is_empty() => (
                                        explanation.iter().map(|&i| blocking[i]).collect(),
                                        explanation.iter().map(|&i| chosen[i]).collect(),
                                    ),
                                    _ => (blocking, chosen.clone()),
                                };
                            self.sat.add_clause(clause);
                            self.publish_lemma(&lemma);
                        }
                        LiaResult::Unknown => {
                            saw_unknown = true;
                            if blocking.is_empty() {
                                return SmtResult::Unknown;
                            }
                            self.block_softly(blocking, &mut soft_guard, &mut assumption_lits);
                        }
                    }
                }
            }
        }
        probes::bump(|p| p.theory_iterations_exhausted += 1);
        SmtResult::Unknown
    }

    /// Adds a blocking clause that is *not* a theory lemma (the candidate
    /// was undecided, not refuted), guarded by a per-check literal so it
    /// expires with the check instead of poisoning later queries.
    fn block_softly(
        &mut self,
        mut blocking: Vec<Lit>,
        soft_guard: &mut Option<BVar>,
        assumption_lits: &mut Vec<Lit>,
    ) {
        let guard = match soft_guard {
            Some(guard) => *guard,
            None => {
                let guard = self.sat.new_var();
                *soft_guard = Some(guard);
                assumption_lits.push(guard.positive());
                guard
            }
        };
        blocking.push(guard.negative());
        self.sat.add_clause(blocking);
    }

    /// Publishes one theory lemma — a conjunction of polarity-folded atom
    /// ids the theory refuted — into the shared pool, when one is attached.
    fn publish_lemma(&mut self, atoms: &[AtomId]) {
        let Some(pool) = &self.lemma_pool else {
            return;
        };
        let mut sorted: Vec<AtomId> = atoms.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.is_empty() {
            return;
        }
        let lemma: SharedLemma = sorted.into();
        if pool.publish(&lemma) {
            self.lemmas_published += 1;
        }
        // Either way this core now holds the lemma locally; a pool round
        // trip must not re-import it.
        self.known_lemmas.insert(lemma);
    }

    /// Imports sibling lemmas published since the last import, turning each
    /// into a clause of the persistent instance. A lemma whose atoms cannot
    /// all be expressed as local SAT literals yet is deferred and retried.
    fn import_lemmas(&mut self) {
        let Some(pool) = self.lemma_pool.clone() else {
            return;
        };
        let (fresh, cursor) = pool.fetch_from(self.lemma_cursor);
        self.lemma_cursor = cursor;
        let mut pending = std::mem::take(&mut self.deferred_lemmas);
        pending.extend(fresh);
        for lemma in pending {
            if self.known_lemmas.contains(&lemma) {
                continue;
            }
            match self.lemma_clause(&lemma) {
                Some(clause) => {
                    self.sat.add_clause(clause);
                    self.lemmas_imported += 1;
                    self.known_lemmas.insert(lemma);
                }
                None => self.deferred_lemmas.push(lemma),
            }
        }
    }

    /// The clause `¬c₁ ∨ … ∨ ¬cₙ` of a lemma over polarity-folded atoms
    /// `cᵢ`, expressed in this core's SAT variables: an atom asserted
    /// positively by some encoding maps to its variable's negative literal,
    /// an atom only present here as its complement maps to the complement's
    /// positive literal. `None` when some atom has no SAT variable in
    /// either polarity yet (the lemma stays deferred — allocating fresh,
    /// unencoded variables for it would add a clause the restricted
    /// branching set never resolves).
    fn lemma_clause(&mut self, lemma: &[AtomId]) -> Option<Vec<Lit>> {
        let mut clause = Vec::with_capacity(lemma.len());
        for &chosen in lemma {
            if let Some(&bvar) = self.atom_lit.get(&chosen) {
                clause.push(bvar.negative());
                continue;
            }
            if !self.arena.adopt(chosen) {
                return None;
            }
            let complement = self.arena.negate(chosen);
            let &bvar = self.atom_lit.get(&complement)?;
            clause.push(bvar.positive());
        }
        Some(clause)
    }

    /// The formula's activation literal, Tseitin-encoding the formula into
    /// definitional clauses on first use.
    fn root_lit(&mut self, info: &Rc<FormulaInfo>) -> Lit {
        if let Some(lit) = info.root.get() {
            return lit;
        }
        let vars_before = self.sat.num_vars();
        let lit = self.encode_nnf(&info.nnf);
        let mut sat_vars: Vec<BVar> = (vars_before..self.sat.num_vars())
            .map(|index| BVar::new(index as u32))
            .collect();
        for &atom in &info.atoms {
            sat_vars.push(self.atom_lit[&atom]);
        }
        *info.sat_vars.borrow_mut() = sat_vars;
        info.root.set(Some(lit));
        lit
    }

    /// The SAT variable of an interned atom, allocated on first use.
    fn atom_bvar(&mut self, atom: &crate::formula::Atom) -> BVar {
        let id = self.arena.intern_atom(atom);
        if let Some(&bvar) = self.atom_lit.get(&id) {
            return bvar;
        }
        let bvar = self.sat.new_var();
        self.atom_lit.insert(id, bvar);
        bvar
    }

    /// Tseitin-encodes an NNF formula into the persistent instance,
    /// returning a literal equivalent to it (clauses are definitional, so
    /// they are sound in every frame).
    fn encode_nnf(&mut self, formula: &Formula) -> Lit {
        match formula {
            Formula::True => {
                let var = self.sat.new_var();
                self.sat.add_clause(vec![var.positive()]);
                var.positive()
            }
            Formula::False => {
                let var = self.sat.new_var();
                self.sat.add_clause(vec![var.negative()]);
                var.positive()
            }
            Formula::Atom(atom) => self.atom_bvar(atom).positive(),
            Formula::Not(inner) => self.encode_nnf(inner).negate(),
            Formula::And(parts) => {
                let lits: Vec<Lit> = parts.iter().map(|p| self.encode_nnf(p)).collect();
                encode_and_gate(&mut self.sat, lits)
            }
            Formula::Or(parts) => {
                let lits: Vec<Lit> = parts.iter().map(|p| self.encode_nnf(p)).collect();
                encode_or_gate(&mut self.sat, lits)
            }
            // NNF conversion eliminates these; kept for robustness.
            Formula::Implies(a, b) => {
                let lits = vec![self.encode_nnf(a).negate(), self.encode_nnf(b)];
                encode_or_gate(&mut self.sat, lits)
            }
            Formula::Iff(a, b) => {
                let lit_a = self.encode_nnf(a);
                let lit_b = self.encode_nnf(b);
                let forward = encode_or_gate(&mut self.sat, vec![lit_a.negate(), lit_b]);
                let backward = encode_or_gate(&mut self.sat, vec![lit_b.negate(), lit_a]);
                encode_and_gate(&mut self.sat, vec![forward, backward])
            }
        }
    }
}

/// The outcome of cone slicing: the formulas inside the assumptions'
/// dependency cone (in assertion order), the out-of-cone formulas grouped
/// into variable-connected components, and how many variables the slicing
/// excluded from the query's search.
struct Slicing {
    cone: Vec<Rc<FormulaInfo>>,
    rest: Vec<Vec<Rc<FormulaInfo>>>,
    pruned_vars: usize,
}

/// Union–find over the formulas' variable sets: two formulas share a
/// component iff their variable sets are transitively connected. Ground
/// formulas (no variables) are kept in the cone — they are constant-time
/// for the theory and excluding them buys nothing.
fn slice(active: &[Rc<FormulaInfo>], assumed: &[Rc<FormulaInfo>]) -> Slicing {
    let mut uf = UnionFind::default();
    for info in active.iter().chain(assumed) {
        if let Some((&first, rest)) = info.vars.split_first() {
            for &var in rest {
                uf.union(first, var);
            }
            uf.find(first);
        }
    }
    let mut cone_roots: HashSet<Var> = HashSet::new();
    for info in assumed {
        for &var in &info.vars {
            cone_roots.insert(uf.find(var));
        }
    }
    let mut cone = Vec::new();
    let mut rest_groups: Vec<(Var, Vec<Rc<FormulaInfo>>)> = Vec::new();
    let mut pruned: HashSet<Var> = HashSet::new();
    for info in active {
        let root = info.vars.first().map(|&v| uf.find(v));
        match root {
            None => cone.push(Rc::clone(info)),
            Some(root) if cone_roots.contains(&root) => cone.push(Rc::clone(info)),
            Some(root) => {
                pruned.extend(info.vars.iter().copied());
                match rest_groups.iter_mut().find(|(r, _)| *r == root) {
                    Some((_, group)) => group.push(Rc::clone(info)),
                    None => rest_groups.push((root, vec![Rc::clone(info)])),
                }
            }
        }
    }
    Slicing {
        cone,
        rest: rest_groups.into_iter().map(|(_, group)| group).collect(),
        pruned_vars: pruned.len(),
    }
}

/// A small path-compressing union–find over integer variables.
#[derive(Debug, Default)]
struct UnionFind {
    parent: HashMap<Var, Var>,
}

impl UnionFind {
    /// Iterative find with full path compression — parent chains grow as
    /// long as the heap's longest constraint chain (tens of thousands of
    /// variables on real corpora), so recursion is not an option.
    fn find(&mut self, var: Var) -> Var {
        let mut root = var;
        while let Some(&parent) = self.parent.get(&root) {
            if parent == root {
                break;
            }
            root = parent;
        }
        let mut cursor = var;
        while cursor != root {
            let parent = self.parent.insert(cursor, root).unwrap_or(root);
            cursor = parent;
        }
        self.parent.entry(root).or_insert(root);
        root
    }

    fn union(&mut self, a: Var, b: Var) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent.insert(ra, rb);
        }
    }
}

/// If `formula` is a conjunction of (possibly negated) atoms, return the
/// atoms flattened, with negation folded into the comparison operator —
/// the single-formula face of the scratch engine's fast path.
fn as_atom_conjunction(formula: &Formula) -> Option<Vec<crate::formula::Atom>> {
    let mut atoms = Vec::new();
    collect_atoms(formula, &mut atoms)?;
    Some(atoms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    fn x(i: u32) -> Term {
        Term::var(Var::new(i))
    }

    fn core() -> TheoryCore {
        TheoryCore::new(TheoryConfig::default())
    }

    #[test]
    fn conjunction_fast_path_answers_without_sat() {
        let mut core = core();
        core.assert(&Formula::ge(x(0), Term::int(5)));
        let (result, stats) = core.check(&[Formula::lt(x(0), Term::int(5))]);
        assert!(result.is_unsat());
        assert_eq!(stats, SatStats::default(), "no CDCL work on conjunctions");
    }

    #[test]
    fn boolean_structure_runs_on_the_persistent_instance() {
        let mut core = core();
        core.assert(&Formula::or(vec![
            Formula::eq(x(0), Term::int(0)),
            Formula::eq(x(0), Term::int(1)),
        ]));
        core.assert(&Formula::ge(x(0), Term::int(5)));
        let (result, _) = core.check(&[]);
        assert!(result.is_unsat());
        // Re-checking reuses the clauses the first check left behind.
        let before = core.stats().clauses_reused;
        let (result, _) = core.check(&[]);
        assert!(result.is_unsat());
        assert!(core.stats().clauses_reused > before);
    }

    #[test]
    fn cone_slicing_prunes_unrelated_components() {
        let mut core = core();
        // Two disconnected constraint islands.
        core.assert(&Formula::ge(x(0), Term::int(0)));
        core.assert(&Formula::le(x(5), Term::int(9)));
        let (result, _) = core.check(&[Formula::lt(x(0), Term::int(0))]);
        assert!(result.is_unsat());
        assert!(
            core.stats().cone_vars_pruned >= 1,
            "x5's island lies outside the query cone: {:?}",
            core.stats()
        );
    }

    #[test]
    fn sat_models_cover_out_of_cone_components() {
        let mut core = core();
        core.assert(&Formula::eq(x(0), Term::int(3)));
        core.assert(&Formula::eq(x(7), Term::int(11)));
        let (result, _) = core.check(&[Formula::gt(x(0), Term::int(0))]);
        let model = result.model().expect("satisfiable");
        assert_eq!(model.value(Var::new(0)), Some(3));
        assert_eq!(model.value(Var::new(7)), Some(11), "out-of-cone var solved");
    }

    #[test]
    fn truncate_retracts_without_poisoning_later_checks() {
        let mut core = core();
        core.assert(&Formula::ge(x(0), Term::int(0)));
        let mark = core.len();
        core.assert(&Formula::eq(x(0), Term::int(5)));
        let (result, _) = core.check(&[Formula::ne(x(0), Term::int(5))]);
        assert!(result.is_unsat());
        core.truncate(mark);
        let (result, _) = core.check(&[Formula::ne(x(0), Term::int(5))]);
        assert!(result.is_sat(), "the popped equality must not leak");
    }

    #[test]
    fn retained_lemmas_survive_retraction_soundly() {
        let mut core = core();
        // A disjunction forces the SMT loop to learn theory lemmas.
        core.assert(&Formula::or(vec![
            Formula::eq(x(0), Term::int(0)),
            Formula::eq(x(0), Term::int(1)),
        ]));
        let mark = core.len();
        core.assert(&Formula::ge(x(0), Term::int(5)));
        let (result, _) = core.check(&[]);
        assert!(result.is_unsat());
        core.truncate(mark);
        // The lemmas learned against `x0 ≥ 5` must not refute the weaker
        // frame.
        let (result, _) = core.check(&[]);
        let model = result.model().expect("x0 ∈ {0, 1} is satisfiable");
        assert!(matches!(model.value(Var::new(0)), Some(0) | Some(1)));
    }

    #[test]
    fn lemmas_flow_between_cores_through_the_pool() {
        let pool = SharedLemmaPool::new();
        let disjunction = Formula::or(vec![
            Formula::eq(x(0), Term::int(0)),
            Formula::eq(x(0), Term::int(1)),
        ]);
        let bound = Formula::ge(x(0), Term::int(5));

        let mut publisher = core();
        publisher.set_lemma_pool(pool.clone());
        publisher.assert(&disjunction);
        publisher.assert(&bound);
        let (result, _) = publisher.check(&[]);
        assert!(result.is_unsat());
        assert!(publisher.stats().lemmas_published >= 1);
        assert!(!pool.is_empty());

        // A second core facing the same contradiction imports the lemmas
        // before its search instead of re-deriving them conflict by
        // conflict — and its own re-derivations do not re-publish.
        let mut importer = core();
        importer.set_lemma_pool(pool.clone());
        importer.assert(&disjunction);
        importer.assert(&bound);
        let (result, _) = importer.check(&[]);
        assert!(result.is_unsat());
        assert!(
            importer.stats().lemmas_imported >= 1,
            "sibling lemmas import once the atoms are encoded: {:?}",
            importer.stats()
        );
        assert_eq!(importer.stats().lemmas_published, 0);
    }

    #[test]
    fn a_detached_core_neither_publishes_nor_imports() {
        let mut core = core();
        core.assert(&Formula::or(vec![
            Formula::eq(x(0), Term::int(0)),
            Formula::eq(x(0), Term::int(1)),
        ]));
        core.assert(&Formula::ge(x(0), Term::int(5)));
        let (result, _) = core.check(&[]);
        assert!(result.is_unsat());
        assert_eq!(core.stats().lemmas_published, 0);
        assert_eq!(core.stats().lemmas_imported, 0);
    }

    #[test]
    fn atoms_intern_once_across_checks() {
        let mut core = core();
        core.assert(&Formula::ge(x(0), Term::int(0)));
        core.check(&[Formula::gt(x(0), Term::int(1))]);
        let after_first = core.stats().atoms_interned;
        // The same assumption again interns nothing new.
        core.check(&[Formula::gt(x(0), Term::int(1))]);
        assert_eq!(core.stats().atoms_interned, after_first);
        core.reset_stats();
        assert_eq!(core.stats().atoms_interned, 0);
    }
}
