//! A small CDCL propositional satisfiability solver.
//!
//! This is the boolean engine underneath the lazy SMT loop in
//! [`crate::theory`]. It implements the standard conflict-driven clause
//! learning architecture: two-watched-literal unit propagation, first-UIP
//! conflict analysis, activity-based decision heuristics (a VSIDS variant),
//! phase saving and geometric restarts. Clause deletion is not implemented —
//! the formulas produced by symbolic execution are small enough that the
//! learned-clause database stays modest.

mod solver;
mod types;

pub use solver::{SatSolver, SatStats};
pub use types::{BVar, Lit, SatResult};
