//! Core types of the SAT solver: boolean variables, literals and results.

use std::fmt;

/// A propositional (boolean) variable, identified by index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BVar(u32);

impl BVar {
    /// Creates a boolean variable from its index.
    pub fn new(index: u32) -> Self {
        BVar(index)
    }

    /// The index of the variable.
    pub fn index(self) -> u32 {
        self.0
    }

    /// The positive literal of this variable.
    pub fn positive(self) -> Lit {
        Lit::new(self, true)
    }

    /// The negative literal of this variable.
    pub fn negative(self) -> Lit {
        Lit::new(self, false)
    }
}

impl fmt::Display for BVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// A literal: a boolean variable or its negation.
///
/// Encoded as `2·var + sign` where `sign = 0` means positive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// Builds a literal from a variable and a polarity (`true` = positive).
    pub fn new(var: BVar, positive: bool) -> Self {
        Lit(var.0 << 1 | u32::from(!positive))
    }

    /// The underlying variable.
    pub fn var(self) -> BVar {
        BVar(self.0 >> 1)
    }

    /// True if the literal is the positive occurrence of its variable.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// The complementary literal.
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// The dense integer code of the literal (useful for indexing).
    pub fn code(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "{}", self.var())
        } else {
            write!(f, "~{}", self.var())
        }
    }
}

/// The outcome of a propositional satisfiability check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable, with a total assignment indexed by variable.
    Sat(Vec<bool>),
    /// Unsatisfiable.
    Unsat,
}

impl SatResult {
    /// True if the result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding_round_trips() {
        let v = BVar::new(5);
        let pos = v.positive();
        let neg = v.negative();
        assert_eq!(pos.var(), v);
        assert_eq!(neg.var(), v);
        assert!(pos.is_positive());
        assert!(!neg.is_positive());
        assert_eq!(pos.negate(), neg);
        assert_eq!(neg.negate(), pos);
        assert_ne!(pos.code(), neg.code());
    }

    #[test]
    fn display_is_readable() {
        let v = BVar::new(2);
        assert_eq!(v.positive().to_string(), "b2");
        assert_eq!(v.negative().to_string(), "~b2");
    }
}
