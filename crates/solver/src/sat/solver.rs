//! The CDCL search loop.
//!
//! The search follows the MiniSat lineage: two-watched-literal propagation,
//! first-UIP conflict analysis with VSIDS variable activities, phase saving,
//! and assumption-based solving. On top of that baseline the solver keeps
//! learnt clauses in their own arena scored by LBD (literal block distance)
//! and activity, periodically reduces the learnt database (glue clauses with
//! LBD ≤ 2 and locked reason clauses are always kept), restarts on the Luby
//! sequence, and picks decision variables from an activity-ordered binary
//! heap with lazy removal instead of a linear scan.

use super::types::{BVar, Lit, SatResult};

/// Statistics gathered during a solver run, useful for tests and benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SatStats {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learned clauses.
    pub learned: u64,
    /// Number of learnt clauses deleted by clause-database reduction.
    pub clauses_deleted: u64,
    /// Number of restarts driven by the Luby sequence.
    pub restarts_luby: u64,
}

impl SatStats {
    /// Accumulates another run's counters into this one.
    pub fn merge(&mut self, other: &SatStats) {
        self.decisions += other.decisions;
        self.propagations += other.propagations;
        self.conflicts += other.conflicts;
        self.restarts += other.restarts;
        self.learned += other.learned;
        self.clauses_deleted += other.clauses_deleted;
        self.restarts_luby += other.restarts_luby;
    }
}

const UNASSIGNED: u8 = 2;

/// Restart interval base: the i-th restart happens after
/// `RESTART_BASE · luby(i)` conflicts.
const RESTART_BASE: u64 = 100;

/// Initial learnt-database size that triggers a reduction.
const REDUCE_FIRST: usize = 2000;

/// How much the reduction trigger grows after each reduction.
const REDUCE_STEP: usize = 500;

/// Learnt clauses with an LBD at or below this are "glue" and never deleted.
const GLUE_LBD: u32 = 2;

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
}

/// A learnt clause: literals plus the reduction-relevant scores.
#[derive(Debug, Clone)]
struct LearntClause {
    lits: Vec<Lit>,
    /// Bumped whenever the clause takes part in conflict analysis.
    activity: f64,
    /// Literal block distance at learning time (number of distinct decision
    /// levels among the literals). Low LBD ≈ high quality.
    lbd: u32,
}

/// Reference to a clause in either arena: original clauses and learnt
/// clauses live in separate vectors, distinguished by the tag bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ClauseRef(u32);

const LEARNT_BIT: u32 = 1 << 31;

impl ClauseRef {
    fn original(index: usize) -> Self {
        debug_assert!(index < LEARNT_BIT as usize);
        ClauseRef(index as u32)
    }

    fn learnt(index: usize) -> Self {
        debug_assert!(index < LEARNT_BIT as usize);
        ClauseRef(index as u32 | LEARNT_BIT)
    }

    fn is_learnt(self) -> bool {
        self.0 & LEARNT_BIT != 0
    }

    fn index(self) -> usize {
        (self.0 & !LEARNT_BIT) as usize
    }
}

/// Activity-ordered binary max-heap over variable indices (MiniSat's
/// `VarOrder`). Assigned variables are removed lazily: they stay in the heap
/// until popped, and are re-inserted on backtracking.
#[derive(Debug, Default)]
struct VarOrder {
    heap: Vec<u32>,
    /// Position of each variable in `heap`, `u32::MAX` when absent.
    position: Vec<u32>,
}

impl VarOrder {
    fn contains(&self, var: u32) -> bool {
        self.position
            .get(var as usize)
            .is_some_and(|&p| p != u32::MAX)
    }

    /// `a` orders before `b`: higher activity first, ties to the lower index
    /// (matching the old linear scan, which kept the first maximum).
    fn better(a: u32, b: u32, activity: &[f64]) -> bool {
        let (aa, ab) = (activity[a as usize], activity[b as usize]);
        aa > ab || (aa == ab && a < b)
    }

    fn sift_up(&mut self, mut index: usize, activity: &[f64]) {
        while index > 0 {
            let parent = (index - 1) / 2;
            if Self::better(self.heap[index], self.heap[parent], activity) {
                self.heap.swap(index, parent);
                self.position[self.heap[index] as usize] = index as u32;
                self.position[self.heap[parent] as usize] = parent as u32;
                index = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut index: usize, activity: &[f64]) {
        loop {
            let left = 2 * index + 1;
            if left >= self.heap.len() {
                break;
            }
            let right = left + 1;
            let child = if right < self.heap.len()
                && Self::better(self.heap[right], self.heap[left], activity)
            {
                right
            } else {
                left
            };
            if Self::better(self.heap[child], self.heap[index], activity) {
                self.heap.swap(index, child);
                self.position[self.heap[index] as usize] = index as u32;
                self.position[self.heap[child] as usize] = child as u32;
                index = child;
            } else {
                break;
            }
        }
    }

    fn insert(&mut self, var: u32, activity: &[f64]) {
        if self.position.len() <= var as usize {
            self.position.resize(var as usize + 1, u32::MAX);
        }
        if self.contains(var) {
            return;
        }
        self.position[var as usize] = self.heap.len() as u32;
        self.heap.push(var);
        self.sift_up(self.heap.len() - 1, activity);
    }

    fn pop(&mut self, activity: &[f64]) -> Option<u32> {
        let top = *self.heap.first()?;
        self.position[top as usize] = u32::MAX;
        let last = self.heap.pop().expect("heap non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.position[last as usize] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    /// Restores the heap invariant for `var` after its activity increased.
    fn bumped(&mut self, var: u32, activity: &[f64]) {
        if let Some(&position) = self.position.get(var as usize) {
            if position != u32::MAX {
                self.sift_up(position as usize, activity);
            }
        }
    }

    /// Rebuilds the heap from the given variables (O(n) heapify).
    fn rebuild(&mut self, vars: impl Iterator<Item = u32>, num_vars: usize, activity: &[f64]) {
        self.heap.clear();
        self.position.clear();
        self.position.resize(num_vars, u32::MAX);
        for var in vars {
            if self.position[var as usize] == u32::MAX {
                self.position[var as usize] = self.heap.len() as u32;
                self.heap.push(var);
            }
        }
        for index in (0..self.heap.len() / 2).rev() {
            self.sift_down(index, activity);
        }
    }
}

/// The i-th element of the Luby sequence (0-indexed): 1, 1, 2, 1, 1, 2, 4, …
fn luby(mut x: u64) -> u64 {
    let (mut size, mut seq) = (1u64, 0u32);
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) / 2;
        seq -= 1;
        x %= size;
    }
    1 << seq
}

/// A conflict-driven clause-learning SAT solver.
///
/// ```
/// use folic::sat::{SatSolver, SatResult};
///
/// let mut solver = SatSolver::new();
/// let a = solver.new_var();
/// let b = solver.new_var();
/// solver.add_clause(vec![a.positive(), b.positive()]);
/// solver.add_clause(vec![a.negative()]);
/// match solver.solve() {
///     SatResult::Sat(model) => {
///         assert!(!model[a.index() as usize]);
///         assert!(model[b.index() as usize]);
///     }
///     SatResult::Unsat => panic!("should be satisfiable"),
/// }
/// ```
#[derive(Debug)]
pub struct SatSolver {
    /// Original (problem and theory) clauses; never deleted.
    clauses: Vec<Clause>,
    /// Learnt clauses, subject to periodic database reduction.
    learnts: Vec<LearntClause>,
    /// Watch lists indexed by literal code.
    watches: Vec<Vec<ClauseRef>>,
    /// Current assignment per variable: 0 = false, 1 = true, 2 = unassigned.
    assign: Vec<u8>,
    /// Saved phase per variable for phase saving.
    phase: Vec<bool>,
    /// Decision level at which each variable was assigned.
    level: Vec<u32>,
    /// Reason clause for each propagated variable.
    reason: Vec<Option<ClauseRef>>,
    /// Assignment trail.
    trail: Vec<Lit>,
    /// Indices into the trail marking decision levels.
    trail_lim: Vec<usize>,
    /// Head of the propagation queue within the trail.
    qhead: usize,
    /// VSIDS-style activity per variable.
    activity: Vec<f64>,
    var_inc: f64,
    /// Clause-activity increment for learnt clauses.
    cla_inc: f64,
    /// Decision-variable heap (rebuilt per solve from the eligible set).
    order: VarOrder,
    /// Variables eligible for free branching in the current solve call.
    eligible: Vec<bool>,
    /// Reusable conflict-analysis buffer (`seen` marks per variable).
    seen: Vec<bool>,
    /// Variables marked in `seen`, for O(marked) clearing.
    seen_list: Vec<u32>,
    /// Learnt-database size that triggers the next reduction.
    reduce_limit: usize,
    /// Set when an empty clause has been added.
    trivially_unsat: bool,
    /// Unit clauses queued before solving (asserted at level 0).
    pending_units: Vec<Lit>,
    stats: SatStats,
}

impl Default for SatSolver {
    fn default() -> Self {
        SatSolver::new()
    }
}

impl SatSolver {
    /// Creates an empty solver with no variables and no clauses.
    pub fn new() -> Self {
        SatSolver {
            clauses: Vec::new(),
            learnts: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            phase: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            order: VarOrder::default(),
            eligible: Vec::new(),
            seen: Vec::new(),
            seen_list: Vec::new(),
            reduce_limit: REDUCE_FIRST,
            trivially_unsat: false,
            pending_units: Vec::new(),
            stats: SatStats::default(),
        }
    }

    /// Statistics for the most recent [`SatSolver::solve`] call.
    pub fn stats(&self) -> SatStats {
        self.stats
    }

    /// Number of variables allocated so far.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of clauses currently in the database (original, learnt and
    /// theory clauses alike; unit clauses are absorbed into the level-0
    /// assignment and not counted).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len() + self.learnts.len()
    }

    /// Number of learnt clauses currently retained.
    pub fn num_learnt_clauses(&self) -> usize {
        self.learnts.len()
    }

    /// Overrides the learnt-database size that triggers the next reduction.
    /// Exposed so tests can force reductions on small formulas.
    pub fn set_reduce_limit(&mut self, limit: usize) {
        self.reduce_limit = limit.max(1);
    }

    /// Allocates a fresh boolean variable.
    pub fn new_var(&mut self) -> BVar {
        let index = self.assign.len() as u32;
        self.assign.push(UNASSIGNED);
        self.phase.push(false);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        BVar::new(index)
    }

    /// Ensures variables up to `var` exist.
    pub fn ensure_var(&mut self, var: BVar) {
        while self.num_vars() <= var.index() as usize {
            self.new_var();
        }
    }

    /// Adds a clause (a disjunction of literals).
    ///
    /// Tautological clauses are dropped; duplicate literals are removed; the
    /// empty clause marks the instance trivially unsatisfiable.
    pub fn add_clause(&mut self, mut lits: Vec<Lit>) {
        for lit in &lits {
            self.ensure_var(lit.var());
        }
        lits.sort_by_key(|l| l.code());
        lits.dedup();
        // Drop tautologies (contains both l and ¬l).
        for window in lits.windows(2) {
            if window[0].var() == window[1].var() {
                return;
            }
        }
        match lits.len() {
            0 => self.trivially_unsat = true,
            1 => self.pending_units.push(lits[0]),
            _ => {
                let cref = ClauseRef::original(self.clauses.len());
                self.watches[lits[0].code()].push(cref);
                self.watches[lits[1].code()].push(cref);
                self.clauses.push(Clause { lits });
            }
        }
    }

    fn lits_of(&self, cref: ClauseRef) -> &[Lit] {
        if cref.is_learnt() {
            &self.learnts[cref.index()].lits
        } else {
            &self.clauses[cref.index()].lits
        }
    }

    fn value_lit(&self, lit: Lit) -> u8 {
        let v = self.assign[lit.var().index() as usize];
        if v == UNASSIGNED {
            UNASSIGNED
        } else if lit.is_positive() {
            v
        } else {
            1 - v
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, lit: Lit, reason: Option<ClauseRef>) -> bool {
        match self.value_lit(lit) {
            0 => false,
            1 => true,
            _ => {
                let var = lit.var().index() as usize;
                self.assign[var] = u8::from(lit.is_positive());
                self.phase[var] = lit.is_positive();
                self.level[var] = self.decision_level();
                self.reason[var] = reason;
                self.trail.push(lit);
                self.stats.propagations += 1;
                true
            }
        }
    }

    /// Unit propagation; returns a conflicting clause, if any.
    ///
    /// Watch lists are compacted in place with a read/write index pair: a
    /// moved watch is pushed onto another literal's list (never this one —
    /// the replacement watch is non-false, the traversed literal is false),
    /// so no temporary list is needed.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let lit = self.trail[self.qhead];
            self.qhead += 1;
            let false_lit = lit.negate();
            let watch_index = false_lit.code();
            let mut read = 0usize;
            let mut write = 0usize;
            let mut conflict = None;
            while read < self.watches[watch_index].len() {
                let cref = self.watches[watch_index][read];
                read += 1;
                enum Action {
                    Keep,
                    Move(Lit),
                    Unit(Lit),
                }
                let action = {
                    // Disjoint field borrows: the clause arena mutably (to
                    // reorder watches), the assignment read-only.
                    let assign = &self.assign;
                    let lits = if cref.is_learnt() {
                        &mut self.learnts[cref.index()].lits
                    } else {
                        &mut self.clauses[cref.index()].lits
                    };
                    let value_of = |l: Lit| {
                        let v = assign[l.var().index() as usize];
                        if v == UNASSIGNED {
                            UNASSIGNED
                        } else if l.is_positive() {
                            v
                        } else {
                            1 - v
                        }
                    };
                    // Ensure the false literal is at position 1.
                    if lits[0] == false_lit {
                        lits.swap(0, 1);
                    }
                    let first = lits[0];
                    if value_of(first) == 1 {
                        Action::Keep
                    } else {
                        // Look for a new literal to watch.
                        let mut moved = None;
                        for position in 2..lits.len() {
                            if value_of(lits[position]) != 0 {
                                lits.swap(1, position);
                                moved = Some(lits[1]);
                                break;
                            }
                        }
                        match moved {
                            Some(candidate) => Action::Move(candidate),
                            None => Action::Unit(first),
                        }
                    }
                };
                match action {
                    Action::Keep => {
                        self.watches[watch_index][write] = cref;
                        write += 1;
                    }
                    Action::Move(candidate) => {
                        self.watches[candidate.code()].push(cref);
                    }
                    Action::Unit(first) => {
                        self.watches[watch_index][write] = cref;
                        write += 1;
                        // Clause is unit (or conflicting) on `first`.
                        if !self.enqueue(first, Some(cref)) {
                            conflict = Some(cref);
                            // Keep the unvisited remainder of the list.
                            while read < self.watches[watch_index].len() {
                                self.watches[watch_index][write] = self.watches[watch_index][read];
                                write += 1;
                                read += 1;
                            }
                            break;
                        }
                    }
                }
            }
            self.watches[watch_index].truncate(write);
            if let Some(conflicting) = conflict {
                return Some(conflicting);
            }
        }
        None
    }

    fn bump_var(&mut self, var: usize) {
        self.activity[var] += self.var_inc;
        if self.activity[var] > 1e100 {
            for activity in &mut self.activity {
                *activity *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.bumped(var as u32, &self.activity);
    }

    fn bump_clause(&mut self, index: usize) {
        self.learnts[index].activity += self.cla_inc;
        if self.learnts[index].activity > 1e20 {
            for clause in &mut self.learnts {
                clause.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// Literal block distance of a clause: number of distinct decision
    /// levels among its literals (computed before backtracking).
    fn compute_lbd(&self, lits: &[Lit]) -> u32 {
        let mut levels: Vec<u32> = lits
            .iter()
            .map(|l| self.level[l.var().index() as usize])
            .collect();
        levels.sort_unstable();
        levels.dedup();
        levels.len() as u32
    }

    /// First-UIP conflict analysis. Returns the learned clause and the level
    /// to backtrack to. Uses the solver's persistent `seen` buffer and reads
    /// clause literals in place (no per-resolution clone).
    fn analyze(&mut self, conflict: ClauseRef) -> (Vec<Lit>, u32) {
        if self.seen.len() < self.num_vars() {
            self.seen.resize(self.num_vars(), false);
        }
        let mut learned: Vec<Lit> = vec![];
        let mut counter = 0usize;
        let mut lit: Option<Lit> = None;
        let mut cref = conflict;
        let mut trail_index = self.trail.len();
        let current_level = self.decision_level();

        loop {
            if cref.is_learnt() {
                self.bump_clause(cref.index());
            }
            let skip_first = lit.is_some();
            let clause_len = self.lits_of(cref).len();
            for position in 0..clause_len {
                if skip_first && position == 0 {
                    continue;
                }
                let q = self.lits_of(cref)[position];
                let var = q.var().index() as usize;
                if !self.seen[var] && self.level[var] > 0 {
                    self.seen[var] = true;
                    self.seen_list.push(var as u32);
                    self.bump_var(var);
                    if self.level[var] >= current_level {
                        counter += 1;
                    } else {
                        learned.push(q);
                    }
                }
            }
            // Select the next literal to resolve on: last assigned seen literal.
            loop {
                trail_index -= 1;
                let candidate = self.trail[trail_index];
                if self.seen[candidate.var().index() as usize] {
                    lit = Some(candidate);
                    break;
                }
            }
            let p = lit.expect("resolution literal");
            counter -= 1;
            if counter == 0 {
                // p is the first UIP.
                learned.insert(0, p.negate());
                break;
            }
            cref = self.reason[p.var().index() as usize]
                .expect("propagated literal must have a reason");
        }

        // Clear the seen marks for the next call.
        while let Some(var) = self.seen_list.pop() {
            self.seen[var as usize] = false;
        }

        // Backtrack level: second-highest level in the learned clause.
        let backtrack_level = if learned.len() == 1 {
            0
        } else {
            let mut max_index = 1;
            for index in 2..learned.len() {
                if self.level[learned[index].var().index() as usize]
                    > self.level[learned[max_index].var().index() as usize]
                {
                    max_index = index;
                }
            }
            learned.swap(1, max_index);
            self.level[learned[1].var().index() as usize]
        };
        (learned, backtrack_level)
    }

    /// Attaches a learnt clause (≥ 2 literals) with the given LBD.
    fn learn_clause(&mut self, lits: Vec<Lit>, lbd: u32) -> ClauseRef {
        let cref = ClauseRef::learnt(self.learnts.len());
        self.watches[lits[0].code()].push(cref);
        self.watches[lits[1].code()].push(cref);
        self.learnts.push(LearntClause {
            lits,
            activity: self.cla_inc,
            lbd,
        });
        cref
    }

    /// True when the clause is the reason of its asserting literal and
    /// therefore must survive reduction.
    fn is_locked(&self, index: usize) -> bool {
        let var = self.learnts[index].lits[0].var().index() as usize;
        self.assign[var] != UNASSIGNED && self.reason[var] == Some(ClauseRef::learnt(index))
    }

    /// Reduces the learnt database: glue clauses (LBD ≤ 2) and locked
    /// clauses are kept unconditionally, then the lower-activity half of the
    /// rest is deleted. Watches and reasons are remapped to the compacted
    /// arena.
    fn reduce_db(&mut self) {
        let count = self.learnts.len();
        let mut deletable: Vec<usize> = (0..count)
            .filter(|&i| self.learnts[i].lbd > GLUE_LBD && !self.is_locked(i))
            .collect();
        deletable.sort_by(|&a, &b| {
            self.learnts[a]
                .activity
                .partial_cmp(&self.learnts[b].activity)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let target = deletable.len() / 2;
        if target == 0 {
            return;
        }
        let mut delete = vec![false; count];
        for &index in &deletable[..target] {
            delete[index] = true;
        }
        let mut remap = vec![u32::MAX; count];
        let mut kept: Vec<LearntClause> = Vec::with_capacity(count - target);
        for (index, clause) in self.learnts.drain(..).enumerate() {
            if !delete[index] {
                remap[index] = kept.len() as u32;
                kept.push(clause);
            }
        }
        self.learnts = kept;
        self.stats.clauses_deleted += target as u64;
        for list in &mut self.watches {
            list.retain_mut(|cref| {
                if cref.is_learnt() {
                    let new_index = remap[cref.index()];
                    if new_index == u32::MAX {
                        return false;
                    }
                    *cref = ClauseRef::learnt(new_index as usize);
                }
                true
            });
        }
        for cref in self.reason.iter_mut().flatten() {
            if cref.is_learnt() {
                let new_index = remap[cref.index()];
                debug_assert_ne!(new_index, u32::MAX, "locked clause deleted");
                *cref = ClauseRef::learnt(new_index as usize);
            }
        }
    }

    fn backtrack_to(&mut self, target_level: u32) {
        while self.decision_level() > target_level {
            let boundary = self.trail_lim.pop().expect("decision level exists");
            while self.trail.len() > boundary {
                let lit = self.trail.pop().expect("trail non-empty");
                let var = lit.var().index() as usize;
                self.assign[var] = UNASSIGNED;
                self.reason[var] = None;
                if self.eligible.get(var).copied().unwrap_or(false) {
                    self.order.insert(var as u32, &self.activity);
                }
            }
        }
        self.qhead = self.trail.len();
    }

    /// Pops unassigned variables off the order heap (lazy removal of
    /// variables assigned by propagation since their insertion).
    fn pick_branch_var(&mut self) -> Option<BVar> {
        while let Some(var) = self.order.pop(&self.activity) {
            if self.assign[var as usize] == UNASSIGNED {
                return Some(BVar::new(var));
            }
        }
        None
    }

    /// Resets the solver to decision level 0, keeping clauses.
    fn reset_search(&mut self) {
        self.backtrack_to(0);
    }

    /// Decides the satisfiability of the clause set.
    pub fn solve(&mut self) -> SatResult {
        self.solve_under(&[], None)
    }

    /// Decides satisfiability of the clause set under `assumptions` —
    /// literals decided (in order) before any free branching, without ever
    /// being flipped. `Unsat` means the clauses are inconsistent *with the
    /// assumptions*; the clause database itself is left untouched, which is
    /// what makes the solver reusable across queries: per-query activation
    /// literals go in here instead of being asserted as units.
    ///
    /// When `decisions` is `Some`, free branching is restricted to the given
    /// variables: the search stops as soon as every one of them is assigned
    /// and no conflict remains, and the returned model reports any variable
    /// propagation never touched as `false`. Callers that restrict decisions
    /// must therefore validate candidate models against whatever the
    /// unrestricted variables encode (the lazy SMT loop does exactly that).
    pub fn solve_under(&mut self, assumptions: &[Lit], decisions: Option<&[BVar]>) -> SatResult {
        self.stats = SatStats::default();
        if self.trivially_unsat {
            return SatResult::Unsat;
        }
        for lit in assumptions {
            self.ensure_var(lit.var());
        }
        // Clear eligibility before unwinding the previous call's trail so
        // `backtrack_to` does not push stale variables onto the heap.
        self.eligible.clear();
        self.eligible.resize(self.num_vars(), false);
        self.reset_search();
        // Assert pending unit clauses at level 0.
        let units = std::mem::take(&mut self.pending_units);
        for lit in &units {
            if !self.enqueue(*lit, None) {
                self.pending_units = units;
                return SatResult::Unsat;
            }
        }
        self.pending_units = units;
        // Re-propagate the entire level-0 trail: clauses may have been added
        // since the previous solve call and must see existing assignments.
        self.qhead = 0;
        if self.propagate().is_some() {
            return SatResult::Unsat;
        }
        if self.learnts.len() >= self.reduce_limit {
            self.reduce_db();
            self.reduce_limit += REDUCE_STEP;
        }

        // Branching eligibility and the decision heap for this call. The
        // heap is built from the eligible set only — O(eligible) instead of
        // a mask over every variable the session ever allocated.
        match decisions {
            Some(vars) => {
                for var in vars {
                    let index = var.index() as usize;
                    if index < self.eligible.len() {
                        self.eligible[index] = true;
                    }
                }
                self.order.rebuild(
                    vars.iter()
                        .map(|v| v.index())
                        .filter(|&v| self.assign[v as usize] == UNASSIGNED),
                    self.num_vars(),
                    &self.activity,
                );
            }
            None => {
                for flag in &mut self.eligible {
                    *flag = true;
                }
                self.order.rebuild(
                    (0..self.num_vars() as u32).filter(|&v| self.assign[v as usize] == UNASSIGNED),
                    self.num_vars(),
                    &self.activity,
                );
            }
        }

        let mut completed_restarts = 0u64;
        let mut conflicts_until_restart = RESTART_BASE * luby(completed_restarts);
        let mut conflicts_since_restart = 0u64;

        loop {
            match self.propagate() {
                Some(conflict) => {
                    self.stats.conflicts += 1;
                    conflicts_since_restart += 1;
                    if self.decision_level() == 0 {
                        return SatResult::Unsat;
                    }
                    let (learned, backtrack_level) = self.analyze(conflict);
                    // LBD uses assignment levels, so compute it before they
                    // are unwound.
                    let lbd = self.compute_lbd(&learned);
                    self.backtrack_to(backtrack_level);
                    self.stats.learned += 1;
                    let asserting = learned[0];
                    if learned.len() == 1 {
                        if !self.enqueue(asserting, None) {
                            return SatResult::Unsat;
                        }
                    } else {
                        let cref = self.learn_clause(learned, lbd);
                        if !self.enqueue(asserting, Some(cref)) {
                            return SatResult::Unsat;
                        }
                    }
                    self.var_inc *= 1.05;
                    self.cla_inc *= 1.001;
                }
                None => {
                    if conflicts_since_restart >= conflicts_until_restart {
                        conflicts_since_restart = 0;
                        completed_restarts += 1;
                        conflicts_until_restart = RESTART_BASE * luby(completed_restarts);
                        self.stats.restarts += 1;
                        self.stats.restarts_luby += 1;
                        self.backtrack_to(0);
                        if self.learnts.len() >= self.reduce_limit {
                            self.reduce_db();
                            self.reduce_limit += REDUCE_STEP;
                        }
                        continue;
                    }
                    // Establish the assumptions, in order, before any free
                    // branching (backtracking may have unassigned some). An
                    // assumption already false here is implied false by the
                    // clauses together with the earlier assumptions, so the
                    // instance is unsatisfiable under the assumptions.
                    let mut pending_assumption = None;
                    for &lit in assumptions {
                        match self.value_lit(lit) {
                            1 => continue,
                            0 => return SatResult::Unsat,
                            _ => {
                                pending_assumption = Some(lit);
                                break;
                            }
                        }
                    }
                    if let Some(lit) = pending_assumption {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let enqueued = self.enqueue(lit, None);
                        debug_assert!(enqueued, "assumption literal was unassigned");
                        continue;
                    }
                    match self.pick_branch_var() {
                        None => {
                            let model = self
                                .assign
                                .iter()
                                .map(|&value| value == 1)
                                .collect::<Vec<bool>>();
                            return SatResult::Sat(model);
                        }
                        Some(var) => {
                            self.stats.decisions += 1;
                            self.trail_lim.push(self.trail.len());
                            let phase = self.phase[var.index() as usize];
                            let lit = Lit::new(var, phase);
                            let enqueued = self.enqueue(lit, None);
                            debug_assert!(enqueued, "decision variable was unassigned");
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(solver: &mut SatSolver, count: usize) -> Vec<BVar> {
        (0..count).map(|_| solver.new_var()).collect()
    }

    #[test]
    fn empty_instance_is_sat() {
        let mut solver = SatSolver::new();
        assert!(solver.solve().is_sat());
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut solver = SatSolver::new();
        solver.add_clause(vec![]);
        assert_eq!(solver.solve(), SatResult::Unsat);
    }

    #[test]
    fn unit_clauses_propagate() {
        let mut solver = SatSolver::new();
        let vars = lits(&mut solver, 2);
        solver.add_clause(vec![vars[0].positive()]);
        solver.add_clause(vec![vars[0].negative(), vars[1].positive()]);
        match solver.solve() {
            SatResult::Sat(model) => {
                assert!(model[0]);
                assert!(model[1]);
            }
            SatResult::Unsat => panic!("should be sat"),
        }
    }

    #[test]
    fn contradictory_units_are_unsat() {
        let mut solver = SatSolver::new();
        let vars = lits(&mut solver, 1);
        solver.add_clause(vec![vars[0].positive()]);
        solver.add_clause(vec![vars[0].negative()]);
        assert_eq!(solver.solve(), SatResult::Unsat);
    }

    #[test]
    fn simple_3sat_instance() {
        // (a ∨ b ∨ c) ∧ (¬a ∨ b) ∧ (¬b ∨ c) ∧ (¬c ∨ ¬a)
        let mut solver = SatSolver::new();
        let v = lits(&mut solver, 3);
        solver.add_clause(vec![v[0].positive(), v[1].positive(), v[2].positive()]);
        solver.add_clause(vec![v[0].negative(), v[1].positive()]);
        solver.add_clause(vec![v[1].negative(), v[2].positive()]);
        solver.add_clause(vec![v[2].negative(), v[0].negative()]);
        match solver.solve() {
            SatResult::Sat(model) => {
                let (a, b, c) = (model[0], model[1], model[2]);
                assert!(a || b || c);
                assert!(!a || b);
                assert!(!b || c);
                assert!(!c || !a);
            }
            SatResult::Unsat => panic!("should be sat"),
        }
    }

    #[test]
    fn pigeonhole_two_pigeons_one_hole_is_unsat() {
        // Variables: p1h1, p2h1. Each pigeon in the hole, not both.
        let mut solver = SatSolver::new();
        let v = lits(&mut solver, 2);
        solver.add_clause(vec![v[0].positive()]);
        solver.add_clause(vec![v[1].positive()]);
        solver.add_clause(vec![v[0].negative(), v[1].negative()]);
        assert_eq!(solver.solve(), SatResult::Unsat);
    }

    #[test]
    fn pigeonhole_three_pigeons_two_holes_is_unsat() {
        // p_{i,j}: pigeon i sits in hole j, i in 0..3, j in 0..2.
        let mut solver = SatSolver::new();
        let mut var = vec![vec![BVar::new(0); 2]; 3];
        for row in var.iter_mut() {
            for slot in row.iter_mut() {
                *slot = solver.new_var();
            }
        }
        // Every pigeon is in some hole.
        for row in &var {
            solver.add_clause(vec![row[0].positive(), row[1].positive()]);
        }
        // No two pigeons share a hole.
        #[allow(clippy::needless_range_loop)] // indexes two pigeon rows per hole
        for hole in 0..2 {
            for first in 0..3 {
                for second in (first + 1)..3 {
                    solver.add_clause(vec![
                        var[first][hole].negative(),
                        var[second][hole].negative(),
                    ]);
                }
            }
        }
        assert_eq!(solver.solve(), SatResult::Unsat);
    }

    #[test]
    fn assumptions_restrict_without_mutating() {
        let mut solver = SatSolver::new();
        let v = lits(&mut solver, 2);
        solver.add_clause(vec![v[0].positive(), v[1].positive()]);
        // Under ¬a ∧ ¬b the clause is falsified ...
        assert_eq!(
            solver.solve_under(&[v[0].negative(), v[1].negative()], None),
            SatResult::Unsat
        );
        // ... but nothing sticks: the instance stays satisfiable.
        assert!(solver.solve().is_sat());
        // Assuming ¬a forces b through the clause.
        match solver.solve_under(&[v[0].negative()], None) {
            SatResult::Sat(model) => {
                assert!(!model[0]);
                assert!(model[1]);
            }
            SatResult::Unsat => panic!("should be sat under ¬a"),
        }
    }

    #[test]
    fn assumptions_survive_conflict_driven_backtracking() {
        // A chain forcing conflicts under the assumptions: a → b, b → c,
        // a ∧ c → ⊥, so assuming a must come back unsat after learning.
        let mut solver = SatSolver::new();
        let v = lits(&mut solver, 3);
        solver.add_clause(vec![v[0].negative(), v[1].positive()]);
        solver.add_clause(vec![v[1].negative(), v[2].positive()]);
        solver.add_clause(vec![v[0].negative(), v[2].negative()]);
        assert_eq!(
            solver.solve_under(&[v[0].positive()], None),
            SatResult::Unsat
        );
        // The learned unit ¬a is a valid consequence; solving without the
        // assumption still succeeds.
        assert!(solver.solve().is_sat());
    }

    #[test]
    fn restricted_decisions_cover_the_requested_variables() {
        let mut solver = SatSolver::new();
        let v = lits(&mut solver, 4);
        solver.add_clause(vec![v[0].positive(), v[1].positive()]);
        // Branch only on the first two variables; the others are left to
        // propagation (here: untouched, reported false).
        match solver.solve_under(&[], Some(&[v[0], v[1]])) {
            SatResult::Sat(model) => {
                assert!(model[0] || model[1], "the clause must be satisfied");
                assert!(!model[2] && !model[3], "unrestricted vars stay unassigned");
            }
            SatResult::Unsat => panic!("satisfiable instance"),
        }
    }

    #[test]
    fn luby_sequence_prefix_is_correct() {
        let expected = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let actual: Vec<u64> = (0..expected.len() as u64).map(luby).collect();
        assert_eq!(actual, expected);
    }

    #[test]
    fn var_order_pops_highest_activity_with_index_ties() {
        let mut activity = vec![0.0f64; 5];
        activity[3] = 2.0;
        activity[1] = 2.0;
        activity[4] = 5.0;
        let mut order = VarOrder::default();
        order.rebuild(0..5u32, 5, &activity);
        assert_eq!(order.pop(&activity), Some(4));
        // Ties break towards the lower index, like the old linear scan.
        assert_eq!(order.pop(&activity), Some(1));
        assert_eq!(order.pop(&activity), Some(3));
        assert_eq!(order.pop(&activity), Some(0));
        assert_eq!(order.pop(&activity), Some(2));
        assert_eq!(order.pop(&activity), None);
    }

    #[test]
    fn var_order_reinsert_and_bump() {
        let mut activity = vec![0.0f64; 4];
        let mut order = VarOrder::default();
        order.rebuild(0..4u32, 4, &activity);
        assert_eq!(order.pop(&activity), Some(0));
        assert!(!order.contains(0));
        activity[2] = 3.0;
        order.bumped(2, &activity);
        assert_eq!(order.pop(&activity), Some(2));
        order.insert(0, &activity);
        assert_eq!(order.pop(&activity), Some(0));
        assert_eq!(order.pop(&activity), Some(1));
        assert_eq!(order.pop(&activity), Some(3));
    }

    #[test]
    fn reduction_keeps_verdicts_and_fires() {
        // A conflict-heavy unsat family: pigeonhole with 6 pigeons, 5 holes.
        // With a tiny reduction limit the learnt database must be reduced at
        // least once, and the verdict must stay Unsat.
        let mut solver = SatSolver::new();
        let pigeons = 6usize;
        let holes = 5usize;
        let mut var = vec![vec![BVar::new(0); holes]; pigeons];
        for row in var.iter_mut() {
            for slot in row.iter_mut() {
                *slot = solver.new_var();
            }
        }
        for row in &var {
            solver.add_clause(row.iter().map(|v| v.positive()).collect());
        }
        #[allow(clippy::needless_range_loop)]
        for hole in 0..holes {
            for first in 0..pigeons {
                for second in (first + 1)..pigeons {
                    solver.add_clause(vec![
                        var[first][hole].negative(),
                        var[second][hole].negative(),
                    ]);
                }
            }
        }
        solver.set_reduce_limit(20);
        assert_eq!(solver.solve(), SatResult::Unsat);
        assert!(
            solver.stats().clauses_deleted > 0,
            "reduction should have fired: {:?}",
            solver.stats()
        );
        assert!(solver.stats().restarts_luby > 0, "restarts should fire");
    }

    #[test]
    fn random_instances_agree_with_brute_force() {
        // Deterministic pseudo-random 3-SAT instances on 8 variables; compare
        // against exhaustive enumeration.
        let mut seed = 0x1234_5678_u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _instance in 0..25 {
            let num_vars = 8usize;
            let num_clauses = 28usize;
            let mut clauses: Vec<Vec<(usize, bool)>> = Vec::new();
            for _ in 0..num_clauses {
                let mut clause = Vec::new();
                for _ in 0..3 {
                    let var = (next() % num_vars as u64) as usize;
                    let positive = next() % 2 == 0;
                    clause.push((var, positive));
                }
                clauses.push(clause);
            }
            // Brute force.
            let mut brute_sat = false;
            'outer: for bits in 0..(1u32 << num_vars) {
                for clause in &clauses {
                    let ok = clause
                        .iter()
                        .any(|&(var, positive)| ((bits >> var) & 1 == 1) == positive);
                    if !ok {
                        continue 'outer;
                    }
                }
                brute_sat = true;
                break;
            }
            // CDCL.
            let mut solver = SatSolver::new();
            let vars = lits(&mut solver, num_vars);
            for clause in &clauses {
                let cl = clause
                    .iter()
                    .map(|&(var, positive)| Lit::new(vars[var], positive))
                    .collect();
                solver.add_clause(cl);
            }
            let result = solver.solve();
            assert_eq!(
                result.is_sat(),
                brute_sat,
                "solver disagrees with brute force"
            );
            if let SatResult::Sat(model) = result {
                for clause in &clauses {
                    assert!(
                        clause.iter().any(|&(var, positive)| model[var] == positive),
                        "model does not satisfy clause"
                    );
                }
            }
        }
    }
}
