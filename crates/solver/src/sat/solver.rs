//! The CDCL search loop.

use super::types::{BVar, Lit, SatResult};

/// Statistics gathered during a solver run, useful for tests and benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SatStats {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learned clauses.
    pub learned: u64,
}

impl SatStats {
    /// Accumulates another run's counters into this one.
    pub fn merge(&mut self, other: &SatStats) {
        self.decisions += other.decisions;
        self.propagations += other.propagations;
        self.conflicts += other.conflicts;
        self.restarts += other.restarts;
        self.learned += other.learned;
    }
}

const UNASSIGNED: u8 = 2;

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
}

/// A conflict-driven clause-learning SAT solver.
///
/// ```
/// use folic::sat::{SatSolver, SatResult};
///
/// let mut solver = SatSolver::new();
/// let a = solver.new_var();
/// let b = solver.new_var();
/// solver.add_clause(vec![a.positive(), b.positive()]);
/// solver.add_clause(vec![a.negative()]);
/// match solver.solve() {
///     SatResult::Sat(model) => {
///         assert!(!model[a.index() as usize]);
///         assert!(model[b.index() as usize]);
///     }
///     SatResult::Unsat => panic!("should be satisfiable"),
/// }
/// ```
#[derive(Debug, Default)]
pub struct SatSolver {
    clauses: Vec<Clause>,
    /// Watch lists indexed by literal code: clause indices watching that literal.
    watches: Vec<Vec<usize>>,
    /// Current assignment per variable: 0 = false, 1 = true, 2 = unassigned.
    assign: Vec<u8>,
    /// Saved phase per variable for phase saving.
    phase: Vec<bool>,
    /// Decision level at which each variable was assigned.
    level: Vec<u32>,
    /// Reason clause index for each propagated variable.
    reason: Vec<Option<usize>>,
    /// Assignment trail.
    trail: Vec<Lit>,
    /// Indices into the trail marking decision levels.
    trail_lim: Vec<usize>,
    /// Head of the propagation queue within the trail.
    qhead: usize,
    /// VSIDS-style activity per variable.
    activity: Vec<f64>,
    var_inc: f64,
    /// Set when an empty clause has been added.
    trivially_unsat: bool,
    /// Unit clauses queued before solving (asserted at level 0).
    pending_units: Vec<Lit>,
    stats: SatStats,
}

impl SatSolver {
    /// Creates an empty solver with no variables and no clauses.
    pub fn new() -> Self {
        SatSolver {
            var_inc: 1.0,
            ..SatSolver::default()
        }
    }

    /// Statistics for the most recent [`SatSolver::solve`] call.
    pub fn stats(&self) -> SatStats {
        self.stats
    }

    /// Number of variables allocated so far.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of clauses currently in the database (original, learned and
    /// theory clauses alike; unit clauses are absorbed into the level-0
    /// assignment and not counted).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Allocates a fresh boolean variable.
    pub fn new_var(&mut self) -> BVar {
        let index = self.assign.len() as u32;
        self.assign.push(UNASSIGNED);
        self.phase.push(false);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        BVar::new(index)
    }

    /// Ensures variables up to `var` exist.
    pub fn ensure_var(&mut self, var: BVar) {
        while self.num_vars() <= var.index() as usize {
            self.new_var();
        }
    }

    /// Adds a clause (a disjunction of literals).
    ///
    /// Tautological clauses are dropped; duplicate literals are removed; the
    /// empty clause marks the instance trivially unsatisfiable.
    pub fn add_clause(&mut self, mut lits: Vec<Lit>) {
        for lit in &lits {
            self.ensure_var(lit.var());
        }
        lits.sort_by_key(|l| l.code());
        lits.dedup();
        // Drop tautologies (contains both l and ¬l).
        for window in lits.windows(2) {
            if window[0].var() == window[1].var() {
                return;
            }
        }
        match lits.len() {
            0 => self.trivially_unsat = true,
            1 => self.pending_units.push(lits[0]),
            _ => {
                let index = self.clauses.len();
                self.watches[lits[0].code()].push(index);
                self.watches[lits[1].code()].push(index);
                self.clauses.push(Clause { lits });
            }
        }
    }

    fn value_lit(&self, lit: Lit) -> u8 {
        let v = self.assign[lit.var().index() as usize];
        if v == UNASSIGNED {
            UNASSIGNED
        } else if lit.is_positive() {
            v
        } else {
            1 - v
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, lit: Lit, reason: Option<usize>) -> bool {
        match self.value_lit(lit) {
            0 => false,
            1 => true,
            _ => {
                let var = lit.var().index() as usize;
                self.assign[var] = u8::from(lit.is_positive());
                self.phase[var] = lit.is_positive();
                self.level[var] = self.decision_level();
                self.reason[var] = reason;
                self.trail.push(lit);
                self.stats.propagations += 1;
                true
            }
        }
    }

    /// Unit propagation; returns the index of a conflicting clause, if any.
    fn propagate(&mut self) -> Option<usize> {
        while self.qhead < self.trail.len() {
            let lit = self.trail[self.qhead];
            self.qhead += 1;
            let false_lit = lit.negate();
            // Clauses watching ¬lit must be inspected.
            let watching = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut kept = Vec::with_capacity(watching.len());
            let mut conflict = None;
            let iter = watching.into_iter();
            for clause_index in iter {
                if conflict.is_some() {
                    kept.push(clause_index);
                    continue;
                }
                // Ensure the false literal is at position 1.
                {
                    let clause = &mut self.clauses[clause_index];
                    if clause.lits[0] == false_lit {
                        clause.lits.swap(0, 1);
                    }
                }
                let first = self.clauses[clause_index].lits[0];
                if self.value_lit(first) == 1 {
                    kept.push(clause_index);
                    continue;
                }
                // Look for a new literal to watch.
                let mut new_watch = None;
                for (position, &candidate) in
                    self.clauses[clause_index].lits.iter().enumerate().skip(2)
                {
                    if self.value_lit(candidate) != 0 {
                        new_watch = Some((position, candidate));
                        break;
                    }
                }
                match new_watch {
                    Some((position, candidate)) => {
                        self.clauses[clause_index].lits.swap(1, position);
                        self.watches[candidate.code()].push(clause_index);
                    }
                    None => {
                        kept.push(clause_index);
                        // Clause is unit (or conflicting) on `first`.
                        if !self.enqueue(first, Some(clause_index)) {
                            conflict = Some(clause_index);
                        }
                    }
                }
            }
            self.watches[false_lit.code()] = kept;
            if let Some(conflicting) = conflict {
                return Some(conflicting);
            }
        }
        None
    }

    fn bump_var(&mut self, var: usize) {
        self.activity[var] += self.var_inc;
        if self.activity[var] > 1e100 {
            for activity in &mut self.activity {
                *activity *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    /// First-UIP conflict analysis. Returns the learned clause and the level
    /// to backtrack to.
    fn analyze(&mut self, conflict: usize) -> (Vec<Lit>, u32) {
        let mut learned: Vec<Lit> = vec![];
        let mut seen = vec![false; self.num_vars()];
        let mut counter = 0usize;
        let mut lit: Option<Lit> = None;
        let mut clause_index = conflict;
        let mut trail_index = self.trail.len();
        let current_level = self.decision_level();

        loop {
            let clause_lits = self.clauses[clause_index].lits.clone();
            let skip_first = lit.is_some();
            for (position, &q) in clause_lits.iter().enumerate() {
                if skip_first && position == 0 {
                    continue;
                }
                let var = q.var().index() as usize;
                if !seen[var] && self.level[var] > 0 {
                    seen[var] = true;
                    self.bump_var(var);
                    if self.level[var] >= current_level {
                        counter += 1;
                    } else {
                        learned.push(q);
                    }
                }
            }
            // Select the next literal to resolve on: last assigned seen literal.
            loop {
                trail_index -= 1;
                let candidate = self.trail[trail_index];
                if seen[candidate.var().index() as usize] {
                    lit = Some(candidate);
                    break;
                }
            }
            let p = lit.expect("resolution literal");
            counter -= 1;
            if counter == 0 {
                // p is the first UIP.
                learned.insert(0, p.negate());
                break;
            }
            clause_index = self.reason[p.var().index() as usize]
                .expect("propagated literal must have a reason");
            seen[p.var().index() as usize] = true;
        }

        // Backtrack level: second-highest level in the learned clause.
        let backtrack_level = if learned.len() == 1 {
            0
        } else {
            let mut max_index = 1;
            for index in 2..learned.len() {
                if self.level[learned[index].var().index() as usize]
                    > self.level[learned[max_index].var().index() as usize]
                {
                    max_index = index;
                }
            }
            learned.swap(1, max_index);
            self.level[learned[1].var().index() as usize]
        };
        (learned, backtrack_level)
    }

    fn backtrack_to(&mut self, target_level: u32) {
        while self.decision_level() > target_level {
            let boundary = self.trail_lim.pop().expect("decision level exists");
            while self.trail.len() > boundary {
                let lit = self.trail.pop().expect("trail non-empty");
                let var = lit.var().index() as usize;
                self.assign[var] = UNASSIGNED;
                self.reason[var] = None;
            }
        }
        self.qhead = self.trail.len();
    }

    fn pick_branch_var(&self, decisions: Option<&[BVar]>) -> Option<BVar> {
        let mut best: Option<(usize, f64)> = None;
        let mut consider = |var: usize, assign: &[u8], activity: &[f64]| {
            if assign[var] == UNASSIGNED {
                let activity = activity[var];
                match best {
                    Some((_, best_activity)) if best_activity >= activity => {}
                    _ => best = Some((var, activity)),
                }
            }
        };
        match decisions {
            // Restricted branching: only the given variables are eligible.
            // Propagation still assigns whatever the clauses force, but the
            // search never explores variables the caller declared irrelevant
            // (e.g. atoms of retracted or out-of-cone assertion frames).
            Some(vars) => {
                for var in vars {
                    consider(var.index() as usize, &self.assign, &self.activity);
                }
            }
            None => {
                for var in 0..self.assign.len() {
                    consider(var, &self.assign, &self.activity);
                }
            }
        }
        best.map(|(var, _)| BVar::new(var as u32))
    }

    /// Resets the solver to decision level 0, keeping clauses.
    fn reset_search(&mut self) {
        self.backtrack_to(0);
    }

    /// Decides the satisfiability of the clause set.
    pub fn solve(&mut self) -> SatResult {
        self.solve_under(&[], None)
    }

    /// Decides satisfiability of the clause set under `assumptions` —
    /// literals decided (in order) before any free branching, without ever
    /// being flipped. `Unsat` means the clauses are inconsistent *with the
    /// assumptions*; the clause database itself is left untouched, which is
    /// what makes the solver reusable across queries: per-query activation
    /// literals go in here instead of being asserted as units.
    ///
    /// When `decisions` is `Some`, free branching is restricted to the given
    /// variables: the search stops as soon as every one of them is assigned
    /// and no conflict remains, and the returned model reports any variable
    /// propagation never touched as `false`. Callers that restrict decisions
    /// must therefore validate candidate models against whatever the
    /// unrestricted variables encode (the lazy SMT loop does exactly that).
    pub fn solve_under(&mut self, assumptions: &[Lit], decisions: Option<&[BVar]>) -> SatResult {
        self.stats = SatStats::default();
        if self.trivially_unsat {
            return SatResult::Unsat;
        }
        for lit in assumptions {
            self.ensure_var(lit.var());
        }
        self.reset_search();
        // Assert pending unit clauses at level 0.
        let units = std::mem::take(&mut self.pending_units);
        for lit in &units {
            if !self.enqueue(*lit, None) {
                self.pending_units = units;
                return SatResult::Unsat;
            }
        }
        self.pending_units = units;
        // Re-propagate the entire level-0 trail: clauses may have been added
        // since the previous solve call and must see existing assignments.
        self.qhead = 0;
        if self.propagate().is_some() {
            return SatResult::Unsat;
        }

        let mut conflicts_until_restart = 100u64;
        let mut conflicts_since_restart = 0u64;

        loop {
            match self.propagate() {
                Some(conflict) => {
                    self.stats.conflicts += 1;
                    conflicts_since_restart += 1;
                    if self.decision_level() == 0 {
                        return SatResult::Unsat;
                    }
                    let (learned, backtrack_level) = self.analyze(conflict);
                    self.backtrack_to(backtrack_level);
                    self.stats.learned += 1;
                    let asserting = learned[0];
                    if learned.len() == 1 {
                        if !self.enqueue(asserting, None) {
                            return SatResult::Unsat;
                        }
                    } else {
                        let index = self.clauses.len();
                        self.watches[learned[0].code()].push(index);
                        self.watches[learned[1].code()].push(index);
                        self.clauses.push(Clause { lits: learned });
                        if !self.enqueue(asserting, Some(index)) {
                            return SatResult::Unsat;
                        }
                    }
                    self.var_inc *= 1.05;
                }
                None => {
                    if conflicts_since_restart >= conflicts_until_restart {
                        conflicts_since_restart = 0;
                        conflicts_until_restart = (conflicts_until_restart * 3) / 2;
                        self.stats.restarts += 1;
                        self.backtrack_to(0);
                        continue;
                    }
                    // Establish the assumptions, in order, before any free
                    // branching (backtracking may have unassigned some). An
                    // assumption already false here is implied false by the
                    // clauses together with the earlier assumptions, so the
                    // instance is unsatisfiable under the assumptions.
                    let mut pending_assumption = None;
                    for &lit in assumptions {
                        match self.value_lit(lit) {
                            1 => continue,
                            0 => return SatResult::Unsat,
                            _ => {
                                pending_assumption = Some(lit);
                                break;
                            }
                        }
                    }
                    if let Some(lit) = pending_assumption {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let enqueued = self.enqueue(lit, None);
                        debug_assert!(enqueued, "assumption literal was unassigned");
                        continue;
                    }
                    match self.pick_branch_var(decisions) {
                        None => {
                            let model = self
                                .assign
                                .iter()
                                .map(|&value| value == 1)
                                .collect::<Vec<bool>>();
                            return SatResult::Sat(model);
                        }
                        Some(var) => {
                            self.stats.decisions += 1;
                            self.trail_lim.push(self.trail.len());
                            let phase = self.phase[var.index() as usize];
                            let lit = Lit::new(var, phase);
                            let enqueued = self.enqueue(lit, None);
                            debug_assert!(enqueued, "decision variable was unassigned");
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(solver: &mut SatSolver, count: usize) -> Vec<BVar> {
        (0..count).map(|_| solver.new_var()).collect()
    }

    #[test]
    fn empty_instance_is_sat() {
        let mut solver = SatSolver::new();
        assert!(solver.solve().is_sat());
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut solver = SatSolver::new();
        solver.add_clause(vec![]);
        assert_eq!(solver.solve(), SatResult::Unsat);
    }

    #[test]
    fn unit_clauses_propagate() {
        let mut solver = SatSolver::new();
        let vars = lits(&mut solver, 2);
        solver.add_clause(vec![vars[0].positive()]);
        solver.add_clause(vec![vars[0].negative(), vars[1].positive()]);
        match solver.solve() {
            SatResult::Sat(model) => {
                assert!(model[0]);
                assert!(model[1]);
            }
            SatResult::Unsat => panic!("should be sat"),
        }
    }

    #[test]
    fn contradictory_units_are_unsat() {
        let mut solver = SatSolver::new();
        let vars = lits(&mut solver, 1);
        solver.add_clause(vec![vars[0].positive()]);
        solver.add_clause(vec![vars[0].negative()]);
        assert_eq!(solver.solve(), SatResult::Unsat);
    }

    #[test]
    fn simple_3sat_instance() {
        // (a ∨ b ∨ c) ∧ (¬a ∨ b) ∧ (¬b ∨ c) ∧ (¬c ∨ ¬a)
        let mut solver = SatSolver::new();
        let v = lits(&mut solver, 3);
        solver.add_clause(vec![v[0].positive(), v[1].positive(), v[2].positive()]);
        solver.add_clause(vec![v[0].negative(), v[1].positive()]);
        solver.add_clause(vec![v[1].negative(), v[2].positive()]);
        solver.add_clause(vec![v[2].negative(), v[0].negative()]);
        match solver.solve() {
            SatResult::Sat(model) => {
                let (a, b, c) = (model[0], model[1], model[2]);
                assert!(a || b || c);
                assert!(!a || b);
                assert!(!b || c);
                assert!(!c || !a);
            }
            SatResult::Unsat => panic!("should be sat"),
        }
    }

    #[test]
    fn pigeonhole_two_pigeons_one_hole_is_unsat() {
        // Variables: p1h1, p2h1. Each pigeon in the hole, not both.
        let mut solver = SatSolver::new();
        let v = lits(&mut solver, 2);
        solver.add_clause(vec![v[0].positive()]);
        solver.add_clause(vec![v[1].positive()]);
        solver.add_clause(vec![v[0].negative(), v[1].negative()]);
        assert_eq!(solver.solve(), SatResult::Unsat);
    }

    #[test]
    fn pigeonhole_three_pigeons_two_holes_is_unsat() {
        // p_{i,j}: pigeon i sits in hole j, i in 0..3, j in 0..2.
        let mut solver = SatSolver::new();
        let mut var = vec![vec![BVar::new(0); 2]; 3];
        for row in var.iter_mut() {
            for slot in row.iter_mut() {
                *slot = solver.new_var();
            }
        }
        // Every pigeon is in some hole.
        for row in &var {
            solver.add_clause(vec![row[0].positive(), row[1].positive()]);
        }
        // No two pigeons share a hole.
        #[allow(clippy::needless_range_loop)] // indexes two pigeon rows per hole
        for hole in 0..2 {
            for first in 0..3 {
                for second in (first + 1)..3 {
                    solver.add_clause(vec![
                        var[first][hole].negative(),
                        var[second][hole].negative(),
                    ]);
                }
            }
        }
        assert_eq!(solver.solve(), SatResult::Unsat);
    }

    #[test]
    fn assumptions_restrict_without_mutating() {
        let mut solver = SatSolver::new();
        let v = lits(&mut solver, 2);
        solver.add_clause(vec![v[0].positive(), v[1].positive()]);
        // Under ¬a ∧ ¬b the clause is falsified ...
        assert_eq!(
            solver.solve_under(&[v[0].negative(), v[1].negative()], None),
            SatResult::Unsat
        );
        // ... but nothing sticks: the instance stays satisfiable.
        assert!(solver.solve().is_sat());
        // Assuming ¬a forces b through the clause.
        match solver.solve_under(&[v[0].negative()], None) {
            SatResult::Sat(model) => {
                assert!(!model[0]);
                assert!(model[1]);
            }
            SatResult::Unsat => panic!("should be sat under ¬a"),
        }
    }

    #[test]
    fn assumptions_survive_conflict_driven_backtracking() {
        // A chain forcing conflicts under the assumptions: a → b, b → c,
        // a ∧ c → ⊥, so assuming a must come back unsat after learning.
        let mut solver = SatSolver::new();
        let v = lits(&mut solver, 3);
        solver.add_clause(vec![v[0].negative(), v[1].positive()]);
        solver.add_clause(vec![v[1].negative(), v[2].positive()]);
        solver.add_clause(vec![v[0].negative(), v[2].negative()]);
        assert_eq!(
            solver.solve_under(&[v[0].positive()], None),
            SatResult::Unsat
        );
        // The learned unit ¬a is a valid consequence; solving without the
        // assumption still succeeds.
        assert!(solver.solve().is_sat());
    }

    #[test]
    fn restricted_decisions_cover_the_requested_variables() {
        let mut solver = SatSolver::new();
        let v = lits(&mut solver, 4);
        solver.add_clause(vec![v[0].positive(), v[1].positive()]);
        // Branch only on the first two variables; the others are left to
        // propagation (here: untouched, reported false).
        match solver.solve_under(&[], Some(&[v[0], v[1]])) {
            SatResult::Sat(model) => {
                assert!(model[0] || model[1], "the clause must be satisfied");
                assert!(!model[2] && !model[3], "unrestricted vars stay unassigned");
            }
            SatResult::Unsat => panic!("satisfiable instance"),
        }
    }

    #[test]
    fn random_instances_agree_with_brute_force() {
        // Deterministic pseudo-random 3-SAT instances on 8 variables; compare
        // against exhaustive enumeration.
        let mut seed = 0x1234_5678_u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _instance in 0..25 {
            let num_vars = 8usize;
            let num_clauses = 28usize;
            let mut clauses: Vec<Vec<(usize, bool)>> = Vec::new();
            for _ in 0..num_clauses {
                let mut clause = Vec::new();
                for _ in 0..3 {
                    let var = (next() % num_vars as u64) as usize;
                    let positive = next() % 2 == 0;
                    clause.push((var, positive));
                }
                clauses.push(clause);
            }
            // Brute force.
            let mut brute_sat = false;
            'outer: for bits in 0..(1u32 << num_vars) {
                for clause in &clauses {
                    let ok = clause
                        .iter()
                        .any(|&(var, positive)| ((bits >> var) & 1 == 1) == positive);
                    if !ok {
                        continue 'outer;
                    }
                }
                brute_sat = true;
                break;
            }
            // CDCL.
            let mut solver = SatSolver::new();
            let vars = lits(&mut solver, num_vars);
            for clause in &clauses {
                let cl = clause
                    .iter()
                    .map(|&(var, positive)| Lit::new(vars[var], positive))
                    .collect();
                solver.add_clause(cl);
            }
            let result = solver.solve();
            assert_eq!(
                result.is_sat(),
                brute_sat,
                "solver disagrees with brute force"
            );
            if let SatResult::Sat(model) = result {
                for clause in &clauses {
                    assert!(
                        clause.iter().any(|&(var, positive)| model[var] == positive),
                        "model does not satisfy clause"
                    );
                }
            }
        }
    }
}
