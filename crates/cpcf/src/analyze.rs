//! The analysis driver: soft contract verification with counterexamples.
//!
//! For every contracted export of a module, the analyzer synthesizes the
//! most general unknown context allowed by the contract — opaque arguments
//! for every `->` domain, iterated when the range is itself a function
//! contract — and runs the symbolic evaluator. Errors blamed on the module
//! are candidate violations; for each one the heap's model is used to
//! reconstruct concrete inputs, the program is re-run concretely, and only a
//! confirmed blame is reported as a counterexample (otherwise the export is
//! flagged as a *probable* violation, exactly like the paper's tool when the
//! solver cannot produce a model).

use std::collections::HashMap;

use crate::cex::{reconstruct_bindings, Counterexample};
use crate::eval::{eval, Ctx, EvalOptions, Outcome};
use crate::heap::{empty_env, Heap};
use crate::prove::SessionStats;
use crate::syntax::{CBlame, Expr, Label, Module, Program, Provide};

/// The blame party used for the synthesized unknown context.
pub const CONTEXT_PARTY: &str = "context";

/// Options controlling an analysis run.
#[derive(Debug, Clone)]
pub struct AnalyzeOptions {
    /// Evaluator options (fuel, branching, case maps, havoc depth).
    pub eval: EvalOptions,
    /// Re-run counterexamples concretely before reporting them.
    pub validate: bool,
    /// How many nested `->` ranges the synthesized context applies.
    pub context_depth: u32,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        AnalyzeOptions {
            eval: EvalOptions::default(),
            validate: true,
            context_depth: 3,
        }
    }
}

/// The verdict for a single contracted export.
#[derive(Debug, Clone, PartialEq)]
pub enum ExportAnalysis {
    /// No error blamed on the module is reachable within the budget, and the
    /// whole (finite) interaction space was explored.
    Verified,
    /// A confirmed, concrete counterexample.
    Counterexample(Counterexample),
    /// An error was reached symbolically but no concrete counterexample
    /// could be confirmed.
    ProbableError(CBlame),
    /// The evaluation budget was exhausted before the space was covered.
    Exhausted,
}

impl ExportAnalysis {
    /// True if the export was verified.
    pub fn is_verified(&self) -> bool {
        matches!(self, ExportAnalysis::Verified)
    }

    /// The counterexample, if any.
    pub fn counterexample(&self) -> Option<&Counterexample> {
        match self {
            ExportAnalysis::Counterexample(c) => Some(c),
            _ => None,
        }
    }
}

/// The analysis report for one module.
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleReport {
    /// The analysed module.
    pub module: String,
    /// Per-export verdicts.
    pub exports: Vec<(String, ExportAnalysis)>,
    /// Aggregated prover-session statistics over every export analysis
    /// (including counterexample validation re-runs): query counts, cache
    /// hits, and how many full versus incremental heap encodings the solver
    /// interaction needed.
    pub stats: SessionStats,
}

impl ModuleReport {
    /// True if every export was verified.
    pub fn all_verified(&self) -> bool {
        self.exports.iter().all(|(_, a)| a.is_verified())
    }

    /// The first counterexample found, if any.
    pub fn first_counterexample(&self) -> Option<&Counterexample> {
        self.exports.iter().find_map(|(_, a)| a.counterexample())
    }
}

/// Analyzes the last module of the program with default options.
pub fn analyze(program: &Program) -> ModuleReport {
    let name = program
        .modules
        .last()
        .map(|m| m.name.clone())
        .unwrap_or_else(|| "main".to_string());
    analyze_module(program, &name, &AnalyzeOptions::default())
}

/// Analyzes the named module.
pub fn analyze_module(
    program: &Program,
    module_name: &str,
    options: &AnalyzeOptions,
) -> ModuleReport {
    let Some(module) = program.module(module_name) else {
        return ModuleReport {
            module: module_name.to_string(),
            exports: Vec::new(),
            stats: SessionStats::default(),
        };
    };
    let mut stats = SessionStats::default();
    let exports = module
        .provides
        .iter()
        .map(|provide| {
            let (verdict, export_stats) = analyze_export(program, module, provide, options);
            stats.merge(&export_stats);
            (provide.name.clone(), verdict)
        })
        .collect();
    ModuleReport {
        module: module_name.to_string(),
        exports,
        stats,
    }
}

/// Builds a fresh context and global heap with every module's definitions
/// loaded. Returns `None` if a definition itself fails to evaluate.
fn load_globals(program: &Program, options: &AnalyzeOptions) -> Option<(Ctx, Heap)> {
    let mut ctx = Ctx::new(options.eval.clone());
    for module in &program.modules {
        for def in &module.structs {
            ctx.structs.insert(def.name.clone(), def.clone());
        }
    }
    let mut heap = Heap::new();
    let env = empty_env();
    for module in &program.modules {
        for definition in &module.definitions {
            let outcomes = eval(&mut ctx, &env, &module.name, &definition.body, &heap);
            let (loc, new_heap) = outcomes
                .into_iter()
                .find_map(|(outcome, h)| match outcome {
                    Outcome::Val(loc) => Some((loc, h)),
                    _ => None,
                })?;
            heap = new_heap;
            ctx.globals.insert(definition.name.clone(), loc);
        }
    }
    Some((ctx, heap))
}

/// The synthesized most-general-context expression for an export, along with
/// the opaque labels it introduces.
fn context_expression(
    module: &Module,
    provide: &Provide,
    depth: u32,
    next_label: &mut u32,
) -> Expr {
    let mut fresh = || {
        let label = Label(*next_label);
        *next_label += 1;
        label
    };
    let mut expr = Expr::Mon {
        contract: Box::new(provide.contract.clone()),
        value: Box::new(Expr::var(&provide.name)),
        pos: module.name.clone(),
        neg: CONTEXT_PARTY.to_string(),
        label: fresh(),
    };
    let mut contract = &provide.contract;
    let mut remaining = depth;
    while remaining > 0 {
        match contract {
            Expr::CArrow(doms, rng) => {
                let args: Vec<Expr> = doms.iter().map(|_| Expr::Opaque(fresh())).collect();
                expr = Expr::app(expr, args);
                contract = rng;
                remaining -= 1;
            }
            Expr::CAnd(parts) => {
                // Use the first arrow conjunct, if any, to drive the context.
                match parts.iter().find(|p| matches!(p, Expr::CArrow(_, _))) {
                    Some(arrow) => contract = arrow,
                    None => break,
                }
            }
            _ => break,
        }
    }
    expr
}

fn analyze_export(
    program: &Program,
    module: &Module,
    provide: &Provide,
    options: &AnalyzeOptions,
) -> (ExportAnalysis, SessionStats) {
    let Some((mut ctx, heap)) = load_globals(program, options) else {
        return (
            ExportAnalysis::ProbableError(CBlame {
                party: module.name.clone(),
                message: "a module-level definition failed to evaluate".to_string(),
                label: Label(u32::MAX),
            }),
            SessionStats::default(),
        );
    };
    let mut next_label = 500_000;
    let context_expr = context_expression(module, provide, options.context_depth, &mut next_label);
    let labels = context_expr.opaque_labels();
    let outcomes = eval(&mut ctx, &empty_env(), CONTEXT_PARTY, &context_expr, &heap);

    let mut stats = SessionStats::default();
    let mut probable: Option<CBlame> = None;
    let mut saw_timeout = false;
    for (outcome, branch_heap) in &outcomes {
        match outcome {
            Outcome::Timeout => saw_timeout = true,
            Outcome::Err(blame) if blame.party == module.name => {
                match reconstruct_bindings(&mut ctx.prover, branch_heap, &labels) {
                    None => {
                        if probable.is_none() {
                            probable = Some(blame.clone());
                        }
                    }
                    Some(bindings) => {
                        let mut counterexample = Counterexample {
                            blame: blame.clone(),
                            bindings,
                            validated: false,
                        };
                        if options.validate {
                            let (confirmed, validation_stats) =
                                validate(program, &context_expr, &counterexample, options);
                            stats.merge(&validation_stats);
                            if confirmed {
                                counterexample.validated = true;
                                stats.merge(&ctx.prover.stats());
                                return (ExportAnalysis::Counterexample(counterexample), stats);
                            }
                            if probable.is_none() {
                                probable = Some(blame.clone());
                            }
                        } else {
                            stats.merge(&ctx.prover.stats());
                            return (ExportAnalysis::Counterexample(counterexample), stats);
                        }
                    }
                }
            }
            _ => {}
        }
    }
    stats.merge(&ctx.prover.stats());
    let verdict = if let Some(blame) = probable {
        ExportAnalysis::ProbableError(blame)
    } else if saw_timeout {
        ExportAnalysis::Exhausted
    } else {
        ExportAnalysis::Verified
    };
    (verdict, stats)
}

/// Re-runs the context expression with the counterexample's concrete inputs
/// and checks that the same party is blamed. Returns the verdict together
/// with the prover statistics of the validation run.
fn validate(
    program: &Program,
    context_expr: &Expr,
    counterexample: &Counterexample,
    options: &AnalyzeOptions,
) -> (bool, SessionStats) {
    let bindings: HashMap<Label, Expr> = counterexample
        .bindings
        .iter()
        .map(|(l, e)| (*l, e.clone()))
        .collect();
    let concrete = instantiate(context_expr, &bindings);
    let Some((mut ctx, heap)) = load_globals(program, options) else {
        return (false, SessionStats::default());
    };
    let outcomes = eval(&mut ctx, &empty_env(), CONTEXT_PARTY, &concrete, &heap);
    let confirmed = outcomes.iter().any(|(outcome, _)| {
        matches!(outcome, Outcome::Err(blame) if blame.party == counterexample.blame.party)
    });
    (confirmed, ctx.prover.stats())
}

/// Replaces opaque sub-expressions by the bindings' concrete expressions.
pub fn instantiate(expr: &Expr, bindings: &HashMap<Label, Expr>) -> Expr {
    match expr {
        Expr::Opaque(label) => bindings.get(label).cloned().unwrap_or_else(|| expr.clone()),
        Expr::Var(_)
        | Expr::Int(_)
        | Expr::Complex(_, _)
        | Expr::Bool(_)
        | Expr::Str(_)
        | Expr::Nil
        | Expr::CAny => expr.clone(),
        Expr::Lam { params, body } => Expr::Lam {
            params: params.clone(),
            body: Box::new(instantiate(body, bindings)),
        },
        Expr::App(f, args) => Expr::App(
            Box::new(instantiate(f, bindings)),
            args.iter().map(|a| instantiate(a, bindings)).collect(),
        ),
        Expr::If(c, t, e) => Expr::If(
            Box::new(instantiate(c, bindings)),
            Box::new(instantiate(t, bindings)),
            Box::new(instantiate(e, bindings)),
        ),
        Expr::And(es) => Expr::And(es.iter().map(|e| instantiate(e, bindings)).collect()),
        Expr::Or(es) => Expr::Or(es.iter().map(|e| instantiate(e, bindings)).collect()),
        Expr::Begin(es) => Expr::Begin(es.iter().map(|e| instantiate(e, bindings)).collect()),
        Expr::Let {
            bindings: lets,
            recursive,
            body,
        } => Expr::Let {
            bindings: lets
                .iter()
                .map(|(n, e)| (n.clone(), instantiate(e, bindings)))
                .collect(),
            recursive: *recursive,
            body: Box::new(instantiate(body, bindings)),
        },
        Expr::Prim(p, args, label) => Expr::Prim(
            *p,
            args.iter().map(|a| instantiate(a, bindings)).collect(),
            *label,
        ),
        Expr::CArrow(doms, rng) => Expr::CArrow(
            doms.iter().map(|d| instantiate(d, bindings)).collect(),
            Box::new(instantiate(rng, bindings)),
        ),
        Expr::CAnd(es) => Expr::CAnd(es.iter().map(|e| instantiate(e, bindings)).collect()),
        Expr::COr(es) => Expr::COr(es.iter().map(|e| instantiate(e, bindings)).collect()),
        Expr::CCons(a, b) => Expr::CCons(
            Box::new(instantiate(a, bindings)),
            Box::new(instantiate(b, bindings)),
        ),
        Expr::CListOf(c) => Expr::CListOf(Box::new(instantiate(c, bindings))),
        Expr::COneOf(es) => Expr::COneOf(es.iter().map(|e| instantiate(e, bindings)).collect()),
        Expr::Mon {
            contract,
            value,
            pos,
            neg,
            label,
        } => Expr::Mon {
            contract: Box::new(instantiate(contract, bindings)),
            value: Box::new(instantiate(value, bindings)),
            pos: pos.clone(),
            neg: neg.clone(),
            label: *label,
        },
        Expr::StructMake(name, args) => Expr::StructMake(
            name.clone(),
            args.iter().map(|a| instantiate(a, bindings)).collect(),
        ),
        Expr::StructPred(name, e) => {
            Expr::StructPred(name.clone(), Box::new(instantiate(e, bindings)))
        }
        Expr::StructGet(name, index, e, label) => Expr::StructGet(
            name.clone(),
            *index,
            Box::new(instantiate(e, bindings)),
            *label,
        ),
    }
}

/// Convenience: parse and analyze source text, returning the report of the
/// last module.
///
/// # Errors
///
/// Returns a parse error message when the source is malformed.
pub fn analyze_source(source: &str) -> Result<ModuleReport, String> {
    analyze_source_with(source, &AnalyzeOptions::default())
}

/// [`analyze_source`] with explicit options.
///
/// # Errors
///
/// Returns a parse error message when the source is malformed.
pub fn analyze_source_with(source: &str, options: &AnalyzeOptions) -> Result<ModuleReport, String> {
    let (program, _structs) = crate::parse::parse_program(source).map_err(|e| e.to_string())?;
    let name = program
        .modules
        .last()
        .map(|m| m.name.clone())
        .unwrap_or_else(|| "main".to_string());
    Ok(analyze_module(&program, &name, options))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn safe_increment_is_verified() {
        let report = analyze_source(
            r#"
            (module inc
              (provide [f (-> integer? integer?)])
              (define (f x) (+ x 1)))
            "#,
        )
        .expect("parses");
        assert!(report.all_verified(), "report: {report:?}");
    }

    #[test]
    fn quickcheck_hard_division_yields_counterexample() {
        // f n = 1 / (100 - n): needs exactly n = 100 (§5.2 of the paper).
        let report = analyze_source(
            r#"
            (module div100
              (provide [f (-> integer? integer?)])
              (define (f n) (/ 1 (- 100 n))))
            "#,
        )
        .expect("parses");
        let cex = report.first_counterexample().expect("counterexample");
        assert!(cex.validated);
        assert!(
            cex.bindings.iter().any(|(_, e)| *e == Expr::Int(100)),
            "expected the input 100, got {:?}",
            cex.bindings
        );
    }

    #[test]
    fn guarded_division_is_verified() {
        let report = analyze_source(
            r#"
            (module safe-div
              (provide [f (-> integer? integer?)])
              (define (f n) (if (zero? n) 0 (/ 100 n))))
            "#,
        )
        .expect("parses");
        assert!(report.all_verified(), "report: {report:?}");
    }

    #[test]
    fn precondition_protects_division() {
        // The contract requires a non-zero argument, so no error is reachable.
        let report = analyze_source(
            r#"
            (module safe-div2
              (provide [f (-> (and/c integer? (lambda (n) (not (zero? n)))) integer?)])
              (define (f n) (/ 100 n)))
            "#,
        )
        .expect("parses");
        assert!(report.all_verified(), "report: {report:?}");
    }

    #[test]
    fn weak_contract_lets_complex_numbers_through() {
        // `<` requires reals but the contract only demands number?: the
        // argmin-style counterexample (§5.2).
        let report = analyze_source(
            r#"
            (module cmp
              (provide [smaller? (-> number? boolean?)])
              (define (smaller? x) (< x 0)))
            "#,
        )
        .expect("parses");
        let cex = report.first_counterexample().expect("counterexample");
        assert!(cex.validated);
        assert!(
            cex.bindings
                .iter()
                .any(|(_, e)| matches!(e, Expr::Complex(_, _))),
            "expected a complex input, got {:?}",
            cex.bindings
        );
    }

    #[test]
    fn higher_order_argument_counterexample() {
        // The exported function applies its functional argument and divides
        // by the result minus 100: the counterexample must provide a function
        // returning 100.
        let report = analyze_source(
            r#"
            (module ho
              (provide [f (-> (-> integer? integer?) integer? integer?)])
              (define (f g n) (/ 1 (- 100 (g n)))))
            "#,
        )
        .expect("parses");
        let cex = report.first_counterexample().expect("counterexample");
        assert!(cex.validated);
        assert!(
            cex.bindings
                .iter()
                .any(|(_, e)| matches!(e, Expr::Lam { .. })),
            "expected a functional input, got {:?}",
            cex.bindings
        );
    }

    #[test]
    fn car_of_possibly_empty_list_is_caught() {
        let report = analyze_source(
            r#"
            (module head
              (provide [head (-> (listof integer?) integer?)])
              (define (head xs) (car xs)))
            "#,
        )
        .expect("parses");
        let cex = report.first_counterexample().expect("counterexample");
        assert!(cex.validated);
    }

    #[test]
    fn nonempty_list_contract_verifies_car() {
        let report = analyze_source(
            r#"
            (module head
              (provide [head (-> (and/c (listof integer?) pair?) integer?)])
              (define (head xs) (car xs)))
            "#,
        )
        .expect("parses");
        assert!(report.all_verified(), "report: {report:?}");
    }

    #[test]
    fn range_contract_violations_blame_the_module() {
        // The module promises a positive result but returns the argument
        // unchanged.
        let report = analyze_source(
            r#"
            (module pos
              (provide [f (-> integer? (and/c integer? (lambda (r) (> r 0))))])
              (define (f x) x))
            "#,
        )
        .expect("parses");
        let cex = report.first_counterexample().expect("counterexample");
        assert!(cex.validated);
    }

    #[test]
    fn struct_accessors_are_checked() {
        let report = analyze_source(
            r#"
            (module tree
              (struct node (left right))
              (provide [left-of (-> any/c any/c)])
              (define (left-of t) (node-left t)))
            "#,
        )
        .expect("parses");
        let cex = report.first_counterexample().expect("counterexample");
        assert!(
            cex.validated,
            "accessing a field of a non-node must be caught"
        );
    }

    #[test]
    fn struct_contract_protects_accessors() {
        let report = analyze_source(
            r#"
            (module tree
              (struct node (left right))
              (provide [left-of (-> node? any/c)])
              (define (left-of t) (node-left t)))
            "#,
        )
        .expect("parses");
        assert!(report.all_verified(), "report: {report:?}");
    }
}
