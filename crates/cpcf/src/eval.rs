//! The symbolic evaluator for CPCF: non-deterministic big-step evaluation
//! over the symbolic heap, with contract monitoring, blame, structural
//! refinement of opaque values and a demonic ("havoc") treatment of values
//! that escape to the unknown context.
//!
//! The typed core (`spcf`) follows the paper's small-step presentation rule
//! for rule; this crate — which has to handle contracts, structures, boxes
//! and dynamic typing — uses an equivalent big-step formulation with an
//! explicit fuel budget, which keeps the many language features manageable.
//! Each evaluation returns *all* possible outcomes, each paired with the
//! heap (path condition) it holds in.

use std::collections::HashMap;

use folic::{CmpOp, Proof};

use crate::heap::{
    extend_env, CRefinement, CSymExpr, ContractVal, Env, Heap, Loc, SVal, Tag,
};
use crate::numeric::Number;
use crate::prove::Prover;
use crate::syntax::{CBlame, Expr, Label, Prim, StructDef};

/// A single outcome of evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Normal termination with a value.
    Val(Loc),
    /// Blame.
    Err(CBlame),
    /// The fuel budget ran out along this path.
    Timeout,
}

impl Outcome {
    /// The value location, if this is a normal outcome.
    pub fn value(&self) -> Option<Loc> {
        match self {
            Outcome::Val(l) => Some(*l),
            _ => None,
        }
    }

    /// The blame, if this is an error outcome.
    pub fn blame(&self) -> Option<&CBlame> {
        match self {
            Outcome::Err(b) => Some(b),
            _ => None,
        }
    }
}

/// Evaluation options.
#[derive(Debug, Clone, Copy)]
pub struct EvalOptions {
    /// Total fuel (recursive evaluation steps) for one analysis run.
    pub fuel: u64,
    /// Maximum number of outcome branches kept at any point.
    pub max_branches: usize,
    /// Memoise applications of opaque functions (`case` maps).
    pub use_case_maps: bool,
    /// How deep the demonic context explores escaped structured values.
    pub havoc_depth: u32,
    /// Unrolling bound for `listof` contracts on opaque values.
    pub listof_depth: u32,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            fuel: 60_000,
            max_branches: 512,
            use_case_maps: true,
            havoc_depth: 3,
            listof_depth: 3,
        }
    }
}

/// The evaluation context: prover, options, global definitions, struct
/// declarations and the remaining fuel.
#[derive(Debug)]
pub struct Ctx {
    /// The prover used for tag and numeric queries.
    pub prover: Prover,
    /// Options.
    pub options: EvalOptions,
    /// Global (module-level) definitions: name → location.
    pub globals: HashMap<String, Loc>,
    /// Struct declarations by name.
    pub structs: HashMap<String, StructDef>,
    /// Remaining fuel.
    pub fuel: u64,
    /// Counter for generating fresh opaque labels during havoc.
    pub next_label: u32,
}

impl Ctx {
    /// Creates a context with the given options.
    pub fn new(options: EvalOptions) -> Self {
        Ctx {
            prover: Prover::new(),
            options,
            globals: HashMap::new(),
            structs: HashMap::new(),
            fuel: options.fuel,
            next_label: 1_000_000,
        }
    }

    fn tick(&mut self) -> bool {
        if self.fuel == 0 {
            false
        } else {
            self.fuel -= 1;
            true
        }
    }

    /// A fresh label (used for synthesized opaque values during havoc).
    pub fn fresh_label(&mut self) -> Label {
        let label = Label(self.next_label);
        self.next_label += 1;
        label
    }
}

/// All outcomes of evaluating `expr`.
pub fn eval(ctx: &mut Ctx, env: &Env, owner: &str, expr: &Expr, heap: &Heap) -> Vec<(Outcome, Heap)> {
    if !ctx.tick() {
        return vec![(Outcome::Timeout, heap.clone())];
    }
    let mut results = eval_inner(ctx, env, owner, expr, heap);
    if results.len() > ctx.options.max_branches {
        results.truncate(ctx.options.max_branches);
    }
    results
}

fn eval_inner(
    ctx: &mut Ctx,
    env: &Env,
    owner: &str,
    expr: &Expr,
    heap: &Heap,
) -> Vec<(Outcome, Heap)> {
    match expr {
        Expr::Int(n) => alloc_value(heap, SVal::Num(Number::Int(*n))),
        Expr::Complex(re, im) => alloc_value(heap, SVal::Num(Number::complex(*re, *im))),
        Expr::Bool(b) => alloc_value(heap, SVal::Bool(*b)),
        Expr::Str(s) => alloc_value(heap, SVal::Str(s.clone())),
        Expr::Nil => alloc_value(heap, SVal::Nil),
        Expr::Opaque(label) => {
            let mut heap = heap.clone();
            let loc = heap.alloc_opaque(*label);
            vec![(Outcome::Val(loc), heap)]
        }
        Expr::Var(name) => match env.get(name).copied().or_else(|| ctx.globals.get(name).copied()) {
            Some(loc) => vec![(Outcome::Val(loc), heap.clone())],
            None => vec![(
                Outcome::Err(CBlame {
                    party: owner.to_string(),
                    message: format!("unbound variable `{name}`"),
                    label: Label(u32::MAX),
                }),
                heap.clone(),
            )],
        },
        Expr::Lam { params, body } => alloc_value(
            heap,
            SVal::Closure {
                params: params.clone(),
                body: (**body).clone(),
                env: env.clone(),
                owner: owner.to_string(),
            },
        ),
        Expr::If(condition, then_branch, else_branch) => {
            bind(ctx, env, owner, condition, heap, |ctx, loc, heap| {
                truthiness(ctx, &heap, loc)
                    .into_iter()
                    .flat_map(|(is_true, branch_heap)| {
                        let branch = if is_true { then_branch } else { else_branch };
                        eval(ctx, env, owner, branch, &branch_heap)
                    })
                    .collect()
            })
        }
        Expr::And(parts) => eval_and(ctx, env, owner, parts, heap),
        Expr::Or(parts) => eval_or(ctx, env, owner, parts, heap),
        Expr::Begin(parts) => eval_begin(ctx, env, owner, parts, heap),
        Expr::Let { bindings, recursive, body } => {
            eval_let(ctx, env, owner, bindings, *recursive, body, heap)
        }
        Expr::App(function, args) => bind(ctx, env, owner, function, heap, |ctx, f_loc, heap| {
            bind_list(ctx, env, owner, args, &heap, |ctx, arg_locs, heap| {
                apply(ctx, owner, f_loc, &arg_locs, &heap, Label(u32::MAX))
            })
        }),
        Expr::Prim(prim, args, label) => {
            bind_list(ctx, env, owner, args, heap, |ctx, arg_locs, heap| {
                apply_prim(ctx, owner, *prim, &arg_locs, &heap, *label)
            })
        }
        Expr::StructMake(name, args) => {
            bind_list(ctx, env, owner, args, heap, |_, arg_locs, heap| {
                let mut heap = heap;
                let loc = heap.alloc(SVal::StructVal {
                    tag: name.clone(),
                    fields: arg_locs,
                });
                vec![(Outcome::Val(loc), heap)]
            })
        }
        Expr::StructPred(name, inner) => bind(ctx, env, owner, inner, heap, |ctx, loc, heap| {
            tag_predicate(ctx, &heap, loc, &Tag::Struct(name.clone()))
        }),
        Expr::StructGet(name, index, inner, label) => {
            let field_count = ctx.structs.get(name).map(|d| d.fields.len()).unwrap_or(0);
            let name = name.clone();
            let index = *index;
            let label = *label;
            bind(ctx, env, owner, inner, heap, move |ctx, loc, heap| {
                struct_project(ctx, owner, &heap, loc, &name, index, field_count, label)
            })
        }
        // Contract combinators evaluate to contract values.
        Expr::CAny => alloc_value(heap, SVal::Contract(ContractVal::Any)),
        Expr::CArrow(doms, rng) => bind_list(ctx, env, owner, doms, heap, |ctx, dom_locs, heap| {
            bind(ctx, env, owner, rng, &heap, |_, rng_loc, heap| {
                let mut heap = heap;
                let loc = heap.alloc(SVal::Contract(ContractVal::Func {
                    doms: dom_locs.clone(),
                    rng: rng_loc,
                }));
                vec![(Outcome::Val(loc), heap)]
            })
        }),
        Expr::CAnd(parts) => bind_list(ctx, env, owner, parts, heap, |_, locs, heap| {
            let mut heap = heap;
            let loc = heap.alloc(SVal::Contract(ContractVal::And(locs)));
            vec![(Outcome::Val(loc), heap)]
        }),
        Expr::COr(parts) => bind_list(ctx, env, owner, parts, heap, |_, locs, heap| {
            let mut heap = heap;
            let loc = heap.alloc(SVal::Contract(ContractVal::Or(locs)));
            vec![(Outcome::Val(loc), heap)]
        }),
        Expr::CCons(car, cdr) => bind(ctx, env, owner, car, heap, |ctx, car_loc, heap| {
            bind(ctx, env, owner, cdr, &heap, |_, cdr_loc, heap| {
                let mut heap = heap;
                let loc = heap.alloc(SVal::Contract(ContractVal::Cons(car_loc, cdr_loc)));
                vec![(Outcome::Val(loc), heap)]
            })
        }),
        Expr::CListOf(element) => bind(ctx, env, owner, element, heap, |_, element_loc, heap| {
            let mut heap = heap;
            let loc = heap.alloc(SVal::Contract(ContractVal::ListOf(element_loc)));
            vec![(Outcome::Val(loc), heap)]
        }),
        Expr::COneOf(parts) => bind_list(ctx, env, owner, parts, heap, |_, locs, heap| {
            let mut heap = heap;
            let loc = heap.alloc(SVal::Contract(ContractVal::OneOf(locs)));
            vec![(Outcome::Val(loc), heap)]
        }),
        Expr::Mon { contract, value, pos, neg, label } => {
            let (pos, neg, label) = (pos.clone(), neg.clone(), *label);
            bind(ctx, env, owner, contract, heap, move |ctx, contract_loc, heap| {
                let (pos, neg) = (pos.clone(), neg.clone());
                bind(ctx, env, owner, value, &heap, move |ctx, value_loc, heap| {
                    monitor(ctx, contract_loc, value_loc, &pos, &neg, label, &heap)
                })
            })
        }
    }
}

// ---------------------------------------------------------------------------
// Plumbing helpers
// ---------------------------------------------------------------------------

fn alloc_value(heap: &Heap, value: SVal) -> Vec<(Outcome, Heap)> {
    let mut heap = heap.clone();
    let loc = heap.alloc(value);
    vec![(Outcome::Val(loc), heap)]
}

/// Evaluates `expr` and continues with `k` on every normal outcome,
/// propagating errors and timeouts.
fn bind<K>(
    ctx: &mut Ctx,
    env: &Env,
    owner: &str,
    expr: &Expr,
    heap: &Heap,
    mut k: K,
) -> Vec<(Outcome, Heap)>
where
    K: FnMut(&mut Ctx, Loc, Heap) -> Vec<(Outcome, Heap)>,
{
    let mut out = Vec::new();
    for (outcome, branch_heap) in eval(ctx, env, owner, expr, heap) {
        if out.len() >= ctx.options.max_branches {
            break;
        }
        match outcome {
            Outcome::Val(loc) => out.extend(k(ctx, loc, branch_heap)),
            other => out.push((other, branch_heap)),
        }
    }
    out
}

/// Evaluates a list of expressions left to right and continues with the
/// resulting locations.
fn bind_list<K>(
    ctx: &mut Ctx,
    env: &Env,
    owner: &str,
    exprs: &[Expr],
    heap: &Heap,
    mut k: K,
) -> Vec<(Outcome, Heap)>
where
    K: FnMut(&mut Ctx, Vec<Loc>, Heap) -> Vec<(Outcome, Heap)>,
{
    fn go<K>(
        ctx: &mut Ctx,
        env: &Env,
        owner: &str,
        exprs: &[Expr],
        done: Vec<Loc>,
        heap: Heap,
        k: &mut K,
    ) -> Vec<(Outcome, Heap)>
    where
        K: FnMut(&mut Ctx, Vec<Loc>, Heap) -> Vec<(Outcome, Heap)>,
    {
        match exprs.split_first() {
            None => k(ctx, done, heap),
            Some((first, rest)) => {
                let mut out = Vec::new();
                for (outcome, branch_heap) in eval(ctx, env, owner, first, &heap) {
                    if out.len() >= ctx.options.max_branches {
                        break;
                    }
                    match outcome {
                        Outcome::Val(loc) => {
                            let mut done = done.clone();
                            done.push(loc);
                            out.extend(go(ctx, env, owner, rest, done, branch_heap, k));
                        }
                        other => out.push((other, branch_heap)),
                    }
                }
                out
            }
        }
    }
    go(ctx, env, owner, exprs, Vec::new(), heap.clone(), &mut k)
}

fn eval_and(ctx: &mut Ctx, env: &Env, owner: &str, parts: &[Expr], heap: &Heap) -> Vec<(Outcome, Heap)> {
    match parts.split_first() {
        None => alloc_value(heap, SVal::Bool(true)),
        Some((first, [])) => eval(ctx, env, owner, first, heap),
        Some((first, rest)) => bind(ctx, env, owner, first, heap, |ctx, loc, heap| {
            truthiness(ctx, &heap, loc)
                .into_iter()
                .flat_map(|(is_true, branch_heap)| {
                    if is_true {
                        eval_and(ctx, env, owner, rest, &branch_heap)
                    } else {
                        alloc_value(&branch_heap, SVal::Bool(false))
                    }
                })
                .collect()
        }),
    }
}

fn eval_or(ctx: &mut Ctx, env: &Env, owner: &str, parts: &[Expr], heap: &Heap) -> Vec<(Outcome, Heap)> {
    match parts.split_first() {
        None => alloc_value(heap, SVal::Bool(false)),
        Some((first, [])) => eval(ctx, env, owner, first, heap),
        Some((first, rest)) => bind(ctx, env, owner, first, heap, |ctx, loc, heap| {
            truthiness(ctx, &heap, loc)
                .into_iter()
                .flat_map(|(is_true, branch_heap)| {
                    if is_true {
                        vec![(Outcome::Val(loc), branch_heap)]
                    } else {
                        eval_or(ctx, env, owner, rest, &branch_heap)
                    }
                })
                .collect()
        }),
    }
}

fn eval_begin(ctx: &mut Ctx, env: &Env, owner: &str, parts: &[Expr], heap: &Heap) -> Vec<(Outcome, Heap)> {
    match parts.split_first() {
        None => alloc_value(heap, SVal::Nil),
        Some((only, [])) => eval(ctx, env, owner, only, heap),
        Some((first, rest)) => bind(ctx, env, owner, first, heap, |ctx, _loc, heap| {
            eval_begin(ctx, env, owner, rest, &heap)
        }),
    }
}

fn eval_let(
    ctx: &mut Ctx,
    env: &Env,
    owner: &str,
    bindings: &[(String, Expr)],
    recursive: bool,
    body: &Expr,
    heap: &Heap,
) -> Vec<(Outcome, Heap)> {
    if recursive {
        // Pre-allocate placeholder locations so right-hand sides can refer to
        // every binding, then overwrite the placeholders with the results.
        let mut heap = heap.clone();
        let placeholders: Vec<(String, Loc)> = bindings
            .iter()
            .map(|(name, _)| (name.clone(), heap.alloc(SVal::opaque())))
            .collect();
        let extended = extend_env(env, placeholders.clone());
        let exprs: Vec<Expr> = bindings.iter().map(|(_, e)| e.clone()).collect();
        bind_list(ctx, &extended, owner, &exprs, &heap, |ctx, locs, heap| {
            let mut heap = heap;
            for ((_, placeholder), value_loc) in placeholders.iter().zip(&locs) {
                let value = heap.get(*value_loc).clone();
                heap.set(*placeholder, value);
            }
            eval(ctx, &extended, owner, body, &heap)
        })
    } else {
        let exprs: Vec<Expr> = bindings.iter().map(|(_, e)| e.clone()).collect();
        let names: Vec<String> = bindings.iter().map(|(n, _)| n.clone()).collect();
        bind_list(ctx, env, owner, &exprs, heap, |ctx, locs, heap| {
            let extended = extend_env(env, names.iter().cloned().zip(locs.iter().copied()));
            eval(ctx, &extended, owner, body, &heap)
        })
    }
}

// ---------------------------------------------------------------------------
// Truthiness and tag predicates
// ---------------------------------------------------------------------------

/// The possible truth values of the value at `loc` (Racket-style: only `#f`
/// is false).
pub fn truthiness(ctx: &mut Ctx, heap: &Heap, loc: Loc) -> Vec<(bool, Heap)> {
    match heap.get(loc) {
        SVal::Bool(false) => vec![(false, heap.clone())],
        SVal::Opaque { refinements, .. } => {
            if refinements.contains(&CRefinement::IsFalse) {
                return vec![(false, heap.clone())];
            }
            if refinements.contains(&CRefinement::IsTruthy)
                || refinements.iter().any(|r| {
                    matches!(r, CRefinement::Is(tag) if *tag != Tag::Boolean)
                        || matches!(r, CRefinement::NumCmp(_, _))
                })
            {
                return vec![(true, heap.clone())];
            }
            let _ = ctx;
            let mut truthy = heap.clone();
            truthy.refine(loc, CRefinement::IsTruthy);
            let mut falsy = heap.clone();
            falsy.set(loc, SVal::Bool(false));
            vec![(true, truthy), (false, falsy)]
        }
        _ => vec![(true, heap.clone())],
    }
}

/// A tag predicate applied to `loc`: returns boolean outcomes, structurally
/// refining opaque values on the positive branch where that pins down their
/// shape.
pub fn tag_predicate(ctx: &mut Ctx, heap: &Heap, loc: Loc, tag: &Tag) -> Vec<(Outcome, Heap)> {
    match ctx.prover.prove_tag(heap, loc, tag) {
        Proof::Proved => alloc_value(heap, SVal::Bool(true)),
        Proof::Refuted => alloc_value(heap, SVal::Bool(false)),
        Proof::Ambiguous => {
            let mut yes = heap.clone();
            refine_to_tag(ctx, &mut yes, loc, tag);
            let mut no = heap.clone();
            no.refine(loc, CRefinement::IsNot(tag.clone()));
            let mut out = alloc_value(&yes, SVal::Bool(true));
            out.extend(alloc_value(&no, SVal::Bool(false)));
            out
        }
    }
}

/// Refines the opaque value at `loc` to have the given tag, replacing it
/// structurally when the tag determines a shape (§4.2).
pub fn refine_to_tag(ctx: &mut Ctx, heap: &mut Heap, loc: Loc, tag: &Tag) {
    match tag {
        Tag::Pair => {
            let car = heap.alloc(SVal::opaque());
            let cdr = heap.alloc(SVal::opaque());
            heap.set(loc, SVal::Pair(car, cdr));
        }
        Tag::Null => heap.set(loc, SVal::Nil),
        Tag::BoxT => {
            let inner = heap.alloc(SVal::opaque());
            heap.set(loc, SVal::BoxVal(inner));
        }
        Tag::Struct(name) => {
            let field_count = ctx.structs.get(name).map(|d| d.fields.len()).unwrap_or(0);
            let fields = (0..field_count).map(|_| heap.alloc(SVal::opaque())).collect();
            heap.set(
                loc,
                SVal::StructVal {
                    tag: name.clone(),
                    fields,
                },
            );
        }
        other => heap.refine(loc, CRefinement::Is(other.clone())),
    }
}

fn struct_project(
    ctx: &mut Ctx,
    owner: &str,
    heap: &Heap,
    loc: Loc,
    name: &str,
    index: usize,
    field_count: usize,
    label: Label,
) -> Vec<(Outcome, Heap)> {
    let blame = CBlame {
        party: owner.to_string(),
        message: format!("{name}-{index}: expected a {name}"),
        label,
    };
    match heap.get(loc) {
        SVal::StructVal { tag, fields } if tag == name => match fields.get(index) {
            Some(field) => vec![(Outcome::Val(*field), heap.clone())],
            None => vec![(Outcome::Err(blame), heap.clone())],
        },
        SVal::Opaque { .. } => match ctx.prover.prove_tag(heap, loc, &Tag::Struct(name.to_string())) {
            Proof::Refuted => vec![(Outcome::Err(blame), heap.clone())],
            _ => {
                // Positive branch: refine to a struct with fresh fields.
                let mut yes = heap.clone();
                let fields: Vec<Loc> = (0..field_count.max(index + 1))
                    .map(|_| yes.alloc(SVal::opaque()))
                    .collect();
                let field = fields[index];
                yes.set(
                    loc,
                    SVal::StructVal {
                        tag: name.to_string(),
                        fields,
                    },
                );
                // Negative branch: blame.
                let mut no = heap.clone();
                no.refine(loc, CRefinement::IsNot(Tag::Struct(name.to_string())));
                vec![(Outcome::Val(field), yes), (Outcome::Err(blame), no)]
            }
        },
        _ => vec![(Outcome::Err(blame), heap.clone())],
    }
}

// ---------------------------------------------------------------------------
// Application
// ---------------------------------------------------------------------------

/// Applies the value at `function_loc` to `args`.
pub fn apply(
    ctx: &mut Ctx,
    caller: &str,
    function_loc: Loc,
    args: &[Loc],
    heap: &Heap,
    label: Label,
) -> Vec<(Outcome, Heap)> {
    if !ctx.tick() {
        return vec![(Outcome::Timeout, heap.clone())];
    }
    match heap.get(function_loc).clone() {
        SVal::Closure { params, body, env, owner } => {
            if params.len() != args.len() {
                return vec![(
                    Outcome::Err(CBlame {
                        party: caller.to_string(),
                        message: format!(
                            "arity mismatch: expected {} arguments, got {}",
                            params.len(),
                            args.len()
                        ),
                        label,
                    }),
                    heap.clone(),
                )];
            }
            let extended = extend_env(&env, params.into_iter().zip(args.iter().copied()));
            eval(ctx, &extended, &owner, &body, heap)
        }
        SVal::Guarded { doms, rng, inner, pos, neg, label: mon_label } => {
            if doms.len() != args.len() {
                return vec![(
                    Outcome::Err(CBlame {
                        party: neg.clone(),
                        message: format!(
                            "arity mismatch on contracted function: expected {}, got {}",
                            doms.len(),
                            args.len()
                        ),
                        label: mon_label,
                    }),
                    heap.clone(),
                )];
            }
            // Monitor each argument against its domain contract with the
            // blame parties swapped, then run the inner function, then
            // monitor the result against the range contract.
            monitor_args(ctx, &doms, args, &neg, &pos, mon_label, heap, Vec::new(), &mut |ctx,
                 monitored,
                 heap| {
                let mut out = Vec::new();
                for (outcome, inner_heap) in
                    apply(ctx, caller, inner, &monitored, &heap, label)
                {
                    match outcome {
                        Outcome::Val(result) => out.extend(monitor(
                            ctx, rng, result, &pos, &neg, mon_label, &inner_heap,
                        )),
                        other => out.push((other, inner_heap)),
                    }
                }
                out
            })
        }
        SVal::Opaque { .. } => apply_opaque(ctx, caller, function_loc, args, heap, label),
        _ => vec![(
            Outcome::Err(CBlame {
                party: caller.to_string(),
                message: "application of a non-procedure".to_string(),
                label,
            }),
            heap.clone(),
        )],
    }
}

#[allow(clippy::too_many_arguments)]
fn monitor_args(
    ctx: &mut Ctx,
    doms: &[Loc],
    args: &[Loc],
    pos: &str,
    neg: &str,
    label: Label,
    heap: &Heap,
    done: Vec<Loc>,
    k: &mut dyn FnMut(&mut Ctx, Vec<Loc>, Heap) -> Vec<(Outcome, Heap)>,
) -> Vec<(Outcome, Heap)> {
    match (doms.split_first(), args.split_first()) {
        (None, None) => k(ctx, done, heap.clone()),
        (Some((dom, doms_rest)), Some((arg, args_rest))) => {
            let mut out = Vec::new();
            for (outcome, branch_heap) in monitor(ctx, *dom, *arg, pos, neg, label, heap) {
                match outcome {
                    Outcome::Val(monitored) => {
                        let mut done = done.clone();
                        done.push(monitored);
                        out.extend(monitor_args(
                            ctx, doms_rest, args_rest, pos, neg, label, &branch_heap, done, k,
                        ));
                    }
                    other => out.push((other, branch_heap)),
                }
            }
            out
        }
        _ => vec![(Outcome::Timeout, heap.clone())],
    }
}

/// Applies an opaque (unknown) function: the paper's demonic-context rules
/// adapted to the untyped setting.
fn apply_opaque(
    ctx: &mut Ctx,
    caller: &str,
    function_loc: Loc,
    args: &[Loc],
    heap: &Heap,
    label: Label,
) -> Vec<(Outcome, Heap)> {
    let blame = CBlame {
        party: caller.to_string(),
        message: "application of a value that may not be a procedure".to_string(),
        label,
    };
    let mut outcomes = Vec::new();
    match ctx.prover.prove_tag(heap, function_loc, &Tag::Procedure) {
        Proof::Refuted => return vec![(Outcome::Err(blame), heap.clone())],
        Proof::Ambiguous => {
            let mut no = heap.clone();
            no.refine(function_loc, CRefinement::IsNot(Tag::Procedure));
            outcomes.push((Outcome::Err(blame), no));
        }
        Proof::Proved => {}
    }

    // The function is (assumed) a procedure: refine and produce a result.
    let mut base = heap.clone();
    if !matches!(
        ctx.prover.prove_tag(&base, function_loc, &Tag::Procedure),
        Proof::Proved
    ) {
        base.refine(function_loc, CRefinement::Is(Tag::Procedure));
    }

    // Memoised result for a previously seen single simple argument.
    if ctx.options.use_case_maps && args.len() == 1 && is_simple(&base, args[0]) {
        if let SVal::Opaque { entries, .. } = base.get(function_loc) {
            if let Some((_, result)) = entries.iter().find(|(a, _)| *a == args[0]) {
                outcomes.push((Outcome::Val(*result), base));
                return outcomes;
            }
        }
        let result = base.alloc(SVal::opaque());
        if let SVal::Opaque { refinements, entries } = base.get(function_loc).clone() {
            let mut entries = entries;
            entries.push((args[0], result));
            base.set(function_loc, SVal::Opaque { refinements, entries });
        }
        outcomes.push((Outcome::Val(result), base.clone()));
    } else {
        let result = base.alloc(SVal::opaque());
        outcomes.push((Outcome::Val(result), base.clone()));
    }

    // Demonic exploration: the unknown function may use its behavioural
    // arguments arbitrarily; errors found that way are real errors of the
    // escaping values' owners.
    let havoc_depth = ctx.options.havoc_depth;
    if havoc_depth > 0 {
        for &arg in args {
            for (outcome, havoc_heap) in havoc(ctx, caller, arg, &base, havoc_depth) {
                match outcome {
                    Outcome::Err(_) | Outcome::Timeout => outcomes.push((outcome, havoc_heap)),
                    Outcome::Val(_) => {
                        // The exploration finished without an error: the
                        // unknown context then returns an unknown value.
                        let mut h = havoc_heap;
                        let result = h.alloc(SVal::opaque());
                        outcomes.push((Outcome::Val(result), h));
                    }
                }
            }
        }
    }
    outcomes
}

fn is_simple(heap: &Heap, loc: Loc) -> bool {
    matches!(
        heap.get(loc),
        SVal::Num(_) | SVal::Bool(_) | SVal::Str(_) | SVal::Nil | SVal::Opaque { .. }
    )
}

/// The demonic context: explores a value that escaped to unknown code.
/// Procedures are applied to fresh opaque arguments; pairs, boxes and
/// structs are explored component-wise.
pub fn havoc(ctx: &mut Ctx, caller: &str, loc: Loc, heap: &Heap, depth: u32) -> Vec<(Outcome, Heap)> {
    if depth == 0 || !ctx.tick() {
        return vec![(Outcome::Val(loc), heap.clone())];
    }
    match heap.get(loc).clone() {
        SVal::Closure { params, .. } => {
            let mut heap = heap.clone();
            let args: Vec<Loc> = (0..params.len()).map(|_| heap.alloc(SVal::opaque())).collect();
            let mut out = Vec::new();
            for (outcome, branch_heap) in apply(ctx, "context", loc, &args, &heap, Label(u32::MAX))
            {
                match outcome {
                    Outcome::Val(result) => {
                        out.extend(havoc(ctx, caller, result, &branch_heap, depth - 1));
                    }
                    other => out.push((other, branch_heap)),
                }
            }
            out
        }
        SVal::Guarded { doms, .. } => {
            let mut heap = heap.clone();
            let args: Vec<Loc> = (0..doms.len()).map(|_| heap.alloc(SVal::opaque())).collect();
            let mut out = Vec::new();
            for (outcome, branch_heap) in apply(ctx, "context", loc, &args, &heap, Label(u32::MAX))
            {
                match outcome {
                    Outcome::Val(result) => {
                        out.extend(havoc(ctx, caller, result, &branch_heap, depth - 1));
                    }
                    other => out.push((other, branch_heap)),
                }
            }
            out
        }
        SVal::Pair(car, cdr) => {
            let mut out = Vec::new();
            for (outcome, branch_heap) in havoc(ctx, caller, car, heap, depth - 1) {
                match outcome {
                    Outcome::Val(_) => out.extend(havoc(ctx, caller, cdr, &branch_heap, depth - 1)),
                    other => out.push((other, branch_heap)),
                }
            }
            out
        }
        SVal::StructVal { fields, .. } => {
            let mut states = vec![(Outcome::Val(loc), heap.clone())];
            for field in fields {
                let mut next = Vec::new();
                for (outcome, branch_heap) in states {
                    match outcome {
                        Outcome::Val(_) => {
                            next.extend(havoc(ctx, caller, field, &branch_heap, depth - 1));
                        }
                        other => next.push((other, branch_heap)),
                    }
                }
                states = next;
            }
            states
        }
        SVal::BoxVal(inner) => havoc(ctx, caller, inner, heap, depth - 1),
        _ => vec![(Outcome::Val(loc), heap.clone())],
    }
}

// ---------------------------------------------------------------------------
// Contract monitoring
// ---------------------------------------------------------------------------

/// Monitors the value at `value_loc` against the contract at `contract_loc`.
pub fn monitor(
    ctx: &mut Ctx,
    contract_loc: Loc,
    value_loc: Loc,
    pos: &str,
    neg: &str,
    label: Label,
    heap: &Heap,
) -> Vec<(Outcome, Heap)> {
    if !ctx.tick() {
        return vec![(Outcome::Timeout, heap.clone())];
    }
    let listof_depth = ctx.options.listof_depth;
    let blame = |message: String| CBlame {
        party: pos.to_string(),
        message,
        label,
    };
    match heap.get(contract_loc).clone() {
        SVal::Contract(ContractVal::Any) => vec![(Outcome::Val(value_loc), heap.clone())],
        SVal::Contract(ContractVal::Func { doms, rng }) => {
            match ctx.prover.prove_tag(heap, value_loc, &Tag::Procedure) {
                Proof::Refuted => vec![(
                    Outcome::Err(blame("expected a procedure".to_string())),
                    heap.clone(),
                )],
                proof => {
                    let mut outcomes = Vec::new();
                    if proof == Proof::Ambiguous {
                        let mut no = heap.clone();
                        no.refine(value_loc, CRefinement::IsNot(Tag::Procedure));
                        outcomes
                            .push((Outcome::Err(blame("expected a procedure".to_string())), no));
                    }
                    let mut yes = heap.clone();
                    if proof == Proof::Ambiguous {
                        yes.refine(value_loc, CRefinement::Is(Tag::Procedure));
                    }
                    let guarded = yes.alloc(SVal::Guarded {
                        doms,
                        rng,
                        inner: value_loc,
                        pos: pos.to_string(),
                        neg: neg.to_string(),
                        label,
                    });
                    outcomes.push((Outcome::Val(guarded), yes));
                    outcomes
                }
            }
        }
        SVal::Contract(ContractVal::And(parts)) => {
            monitor_all(ctx, &parts, value_loc, pos, neg, label, heap)
        }
        SVal::Contract(ContractVal::Or(parts)) => {
            monitor_or(ctx, &parts, value_loc, pos, neg, label, heap)
        }
        SVal::Contract(ContractVal::Cons(car_contract, cdr_contract)) => {
            monitor_pair(ctx, car_contract, cdr_contract, value_loc, pos, neg, label, heap)
        }
        SVal::Contract(ContractVal::ListOf(element)) => {
            monitor_listof(ctx, element, value_loc, pos, neg, label, heap, listof_depth)
        }
        SVal::Contract(ContractVal::OneOf(options)) => {
            monitor_one_of(ctx, &options, value_loc, pos, neg, label, heap)
        }
        SVal::Contract(ContractVal::Flat(predicate)) => {
            monitor_flat(ctx, predicate, value_loc, pos, label, heap)
        }
        // A procedure used directly as a contract is a flat contract.
        SVal::Closure { .. } | SVal::Guarded { .. } => {
            monitor_flat(ctx, contract_loc, value_loc, pos, label, heap)
        }
        // A literal value as a contract means equality with that value.
        other_value => {
            let holds = values_equal(heap, contract_loc, value_loc);
            match holds {
                Some(true) => vec![(Outcome::Val(value_loc), heap.clone())],
                Some(false) => vec![(
                    Outcome::Err(blame(format!("expected the literal {other_value}"))),
                    heap.clone(),
                )],
                None => {
                    // Opaque value: branch on taking the literal's value.
                    let mut yes = heap.clone();
                    yes.set(value_loc, other_value.clone());
                    let mut no = heap.clone();
                    let _ = &mut no;
                    vec![
                        (Outcome::Val(value_loc), yes),
                        (
                            Outcome::Err(blame(format!("expected the literal {other_value}"))),
                            no,
                        ),
                    ]
                }
            }
        }
    }
}

fn monitor_all(
    ctx: &mut Ctx,
    contracts: &[Loc],
    value_loc: Loc,
    pos: &str,
    neg: &str,
    label: Label,
    heap: &Heap,
) -> Vec<(Outcome, Heap)> {
    match contracts.split_first() {
        None => vec![(Outcome::Val(value_loc), heap.clone())],
        Some((first, rest)) => {
            let mut out = Vec::new();
            for (outcome, branch_heap) in monitor(ctx, *first, value_loc, pos, neg, label, heap) {
                match outcome {
                    Outcome::Val(next_value) => {
                        out.extend(monitor_all(ctx, rest, next_value, pos, neg, label, &branch_heap));
                    }
                    other => out.push((other, branch_heap)),
                }
            }
            out
        }
    }
}

fn monitor_or(
    ctx: &mut Ctx,
    contracts: &[Loc],
    value_loc: Loc,
    pos: &str,
    neg: &str,
    label: Label,
    heap: &Heap,
) -> Vec<(Outcome, Heap)> {
    match contracts.split_first() {
        None => vec![(
            Outcome::Err(CBlame {
                party: pos.to_string(),
                message: "none of the or/c alternatives hold".to_string(),
                label,
            }),
            heap.clone(),
        )],
        Some((first, rest)) => {
            // A branch where the first alternative succeeds, and branches
            // where it fails and the rest are tried.
            let mut out = Vec::new();
            for (outcome, branch_heap) in monitor(ctx, *first, value_loc, pos, neg, label, heap) {
                match outcome {
                    Outcome::Val(v) => out.push((Outcome::Val(v), branch_heap)),
                    Outcome::Err(_) => {
                        out.extend(monitor_or(ctx, rest, value_loc, pos, neg, label, &branch_heap));
                    }
                    Outcome::Timeout => out.push((Outcome::Timeout, branch_heap)),
                }
            }
            out
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn monitor_pair(
    ctx: &mut Ctx,
    car_contract: Loc,
    cdr_contract: Loc,
    value_loc: Loc,
    pos: &str,
    neg: &str,
    label: Label,
    heap: &Heap,
) -> Vec<(Outcome, Heap)> {
    let blame = CBlame {
        party: pos.to_string(),
        message: "expected a pair".to_string(),
        label,
    };
    let branches: Vec<(Option<(Loc, Loc)>, Heap)> = match heap.get(value_loc) {
        SVal::Pair(car, cdr) => vec![(Some((*car, *cdr)), heap.clone())],
        SVal::Opaque { .. } => match ctx.prover.prove_tag(heap, value_loc, &Tag::Pair) {
            Proof::Refuted => vec![(None, heap.clone())],
            _ => {
                let mut yes = heap.clone();
                refine_to_tag(ctx, &mut yes, value_loc, &Tag::Pair);
                let (car, cdr) = match yes.get(value_loc) {
                    SVal::Pair(a, b) => (*a, *b),
                    _ => unreachable!("refine_to_tag installs a pair"),
                };
                let mut no = heap.clone();
                no.refine(value_loc, CRefinement::IsNot(Tag::Pair));
                vec![(Some((car, cdr)), yes), (None, no)]
            }
        },
        _ => vec![(None, heap.clone())],
    };
    let mut out = Vec::new();
    for (pair, branch_heap) in branches {
        match pair {
            None => out.push((Outcome::Err(blame.clone()), branch_heap)),
            Some((car, cdr)) => {
                for (car_outcome, car_heap) in
                    monitor(ctx, car_contract, car, pos, neg, label, &branch_heap)
                {
                    match car_outcome {
                        Outcome::Val(_) => {
                            out.extend(monitor(ctx, cdr_contract, cdr, pos, neg, label, &car_heap)
                                .into_iter()
                                .map(|(o, h)| match o {
                                    Outcome::Val(_) => (Outcome::Val(value_loc), h),
                                    other => (other, h),
                                }));
                        }
                        other => out.push((other, car_heap)),
                    }
                }
            }
        }
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn monitor_listof(
    ctx: &mut Ctx,
    element_contract: Loc,
    value_loc: Loc,
    pos: &str,
    neg: &str,
    label: Label,
    heap: &Heap,
    depth: u32,
) -> Vec<(Outcome, Heap)> {
    let blame = CBlame {
        party: pos.to_string(),
        message: "expected a proper list".to_string(),
        label,
    };
    match heap.get(value_loc).clone() {
        SVal::Nil => vec![(Outcome::Val(value_loc), heap.clone())],
        SVal::Pair(car, cdr) => {
            let mut out = Vec::new();
            for (car_outcome, car_heap) in
                monitor(ctx, element_contract, car, pos, neg, label, heap)
            {
                match car_outcome {
                    Outcome::Val(_) => out.extend(
                        monitor_listof(ctx, element_contract, cdr, pos, neg, label, &car_heap, depth)
                            .into_iter()
                            .map(|(o, h)| match o {
                                Outcome::Val(_) => (Outcome::Val(value_loc), h),
                                other => (other, h),
                            }),
                    ),
                    other => out.push((other, car_heap)),
                }
            }
            out
        }
        SVal::Opaque { .. } => {
            if depth == 0 {
                // Assume the rest of the unknown list is empty.
                let mut heap = heap.clone();
                heap.set(value_loc, SVal::Nil);
                return vec![(Outcome::Val(value_loc), heap)];
            }
            // Branch: the unknown value is '() / a pair / not a list at all.
            let mut nil_heap = heap.clone();
            nil_heap.set(value_loc, SVal::Nil);
            let mut pair_heap = heap.clone();
            refine_to_tag(ctx, &mut pair_heap, value_loc, &Tag::Pair);
            let mut bad_heap = heap.clone();
            bad_heap.refine(value_loc, CRefinement::IsNot(Tag::Pair));
            bad_heap.refine(value_loc, CRefinement::IsNot(Tag::Null));
            let mut out = vec![(Outcome::Val(value_loc), nil_heap)];
            out.extend(monitor_listof(
                ctx,
                element_contract,
                value_loc,
                pos,
                neg,
                label,
                &pair_heap,
                depth - 1,
            ));
            out.push((Outcome::Err(blame), bad_heap));
            out
        }
        _ => vec![(Outcome::Err(blame), heap.clone())],
    }
}

fn monitor_one_of(
    ctx: &mut Ctx,
    options: &[Loc],
    value_loc: Loc,
    pos: &str,
    _neg: &str,
    label: Label,
    heap: &Heap,
) -> Vec<(Outcome, Heap)> {
    let _ = ctx;
    let blame = CBlame {
        party: pos.to_string(),
        message: "value is not one of the allowed literals".to_string(),
        label,
    };
    let mut out = Vec::new();
    let mut all_decided_false = true;
    for &option in options {
        match values_equal(heap, option, value_loc) {
            Some(true) => return vec![(Outcome::Val(value_loc), heap.clone())],
            Some(false) => {}
            None => {
                all_decided_false = false;
                // Branch where the opaque value takes this literal's value.
                let mut branch = heap.clone();
                branch.set(value_loc, heap.get(option).clone());
                out.push((Outcome::Val(value_loc), branch));
            }
        }
    }
    if all_decided_false || !out.is_empty() {
        out.push((Outcome::Err(blame), heap.clone()));
    }
    out
}

fn monitor_flat(
    ctx: &mut Ctx,
    predicate: Loc,
    value_loc: Loc,
    pos: &str,
    label: Label,
    heap: &Heap,
) -> Vec<(Outcome, Heap)> {
    let mut out = Vec::new();
    for (outcome, branch_heap) in apply(ctx, pos, predicate, &[value_loc], heap, label) {
        match outcome {
            Outcome::Val(result) => {
                for (is_true, truth_heap) in truthiness(ctx, &branch_heap, result) {
                    if is_true {
                        out.push((Outcome::Val(value_loc), truth_heap));
                    } else {
                        out.push((
                            Outcome::Err(CBlame {
                                party: pos.to_string(),
                                message: "flat contract violated".to_string(),
                                label,
                            }),
                            truth_heap,
                        ));
                    }
                }
            }
            other => out.push((other, branch_heap)),
        }
    }
    out
}

/// Structural equality of two concrete values; `None` when an opaque value
/// is involved.
pub fn values_equal(heap: &Heap, a: Loc, b: Loc) -> Option<bool> {
    if a == b {
        return Some(true);
    }
    match (heap.get(a), heap.get(b)) {
        (SVal::Opaque { .. }, _) | (_, SVal::Opaque { .. }) => None,
        (SVal::Num(x), SVal::Num(y)) => Some(x.num_eq(*y)),
        (SVal::Bool(x), SVal::Bool(y)) => Some(x == y),
        (SVal::Str(x), SVal::Str(y)) => Some(x == y),
        (SVal::Nil, SVal::Nil) => Some(true),
        (SVal::Pair(a1, a2), SVal::Pair(b1, b2)) => {
            match (values_equal(heap, *a1, *b1), values_equal(heap, *a2, *b2)) {
                (Some(true), Some(true)) => Some(true),
                (Some(false), _) | (_, Some(false)) => Some(false),
                _ => None,
            }
        }
        (SVal::StructVal { tag: t1, fields: f1 }, SVal::StructVal { tag: t2, fields: f2 }) => {
            if t1 != t2 || f1.len() != f2.len() {
                return Some(false);
            }
            let mut all = Some(true);
            for (x, y) in f1.iter().zip(f2.iter()) {
                match values_equal(heap, *x, *y) {
                    Some(true) => {}
                    Some(false) => return Some(false),
                    None => all = None,
                }
            }
            all
        }
        _ => Some(false),
    }
}

// ---------------------------------------------------------------------------
// Primitive operations
// ---------------------------------------------------------------------------

fn operand(heap: &Heap, loc: Loc) -> CSymExpr {
    match heap.int_at(loc) {
        Some(n) => CSymExpr::int(n),
        None => CSymExpr::loc(loc),
    }
}

/// Applies a primitive operation.
pub fn apply_prim(
    ctx: &mut Ctx,
    owner: &str,
    prim: Prim,
    args: &[Loc],
    heap: &Heap,
    label: Label,
) -> Vec<(Outcome, Heap)> {
    let blame = |message: String| CBlame {
        party: owner.to_string(),
        message,
        label,
    };
    match prim {
        Prim::IsNumber => tag_predicate(ctx, heap, args[0], &Tag::Number),
        Prim::IsReal => tag_predicate(ctx, heap, args[0], &Tag::Real),
        Prim::IsInteger => tag_predicate(ctx, heap, args[0], &Tag::Integer),
        Prim::IsProcedure => tag_predicate(ctx, heap, args[0], &Tag::Procedure),
        Prim::IsPair => tag_predicate(ctx, heap, args[0], &Tag::Pair),
        Prim::IsNull => tag_predicate(ctx, heap, args[0], &Tag::Null),
        Prim::IsBoolean => tag_predicate(ctx, heap, args[0], &Tag::Boolean),
        Prim::IsString => tag_predicate(ctx, heap, args[0], &Tag::StringT),
        Prim::IsBox => tag_predicate(ctx, heap, args[0], &Tag::BoxT),
        Prim::Not => truthiness(ctx, heap, args[0])
            .into_iter()
            .flat_map(|(is_true, branch_heap)| alloc_value(&branch_heap, SVal::Bool(!is_true)))
            .collect(),
        Prim::Cons => {
            let mut heap = heap.clone();
            let loc = heap.alloc(SVal::Pair(args[0], args[1]));
            vec![(Outcome::Val(loc), heap)]
        }
        Prim::Car | Prim::Cdr => pair_project(ctx, owner, prim, args[0], heap, label),
        Prim::Equal => match values_equal(heap, args[0], args[1]) {
            Some(result) => alloc_value(heap, SVal::Bool(result)),
            None => {
                let mut out = alloc_value(heap, SVal::Bool(true));
                out.extend(alloc_value(heap, SVal::Bool(false)));
                out
            }
        },
        Prim::Assert => truthiness(ctx, heap, args[0])
            .into_iter()
            .map(|(is_true, branch_heap)| {
                if is_true {
                    (Outcome::Val(args[0]), branch_heap)
                } else {
                    (Outcome::Err(blame("assertion failed".to_string())), branch_heap)
                }
            })
            .collect(),
        Prim::Raise => {
            let message = match heap.get(args[0]) {
                SVal::Str(s) => s.clone(),
                other => format!("{other}"),
            };
            vec![(Outcome::Err(blame(format!("error: {message}"))), heap.clone())]
        }
        Prim::MakeBox => {
            let mut heap = heap.clone();
            let loc = heap.alloc(SVal::BoxVal(args[0]));
            vec![(Outcome::Val(loc), heap)]
        }
        Prim::Unbox => match heap.get(args[0]).clone() {
            SVal::BoxVal(inner) => vec![(Outcome::Val(inner), heap.clone())],
            SVal::Opaque { .. } => {
                let mut yes = heap.clone();
                refine_to_tag(ctx, &mut yes, args[0], &Tag::BoxT);
                let inner = match yes.get(args[0]) {
                    SVal::BoxVal(inner) => *inner,
                    _ => unreachable!("refine_to_tag installs a box"),
                };
                let mut no = heap.clone();
                no.refine(args[0], CRefinement::IsNot(Tag::BoxT));
                vec![
                    (Outcome::Val(inner), yes),
                    (Outcome::Err(blame("unbox: expected a box".to_string())), no),
                ]
            }
            _ => vec![(Outcome::Err(blame("unbox: expected a box".to_string())), heap.clone())],
        },
        Prim::SetBox => match heap.get(args[0]).clone() {
            SVal::BoxVal(_) => {
                let mut heap = heap.clone();
                heap.set(args[0], SVal::BoxVal(args[1]));
                alloc_value(&heap, SVal::Nil)
            }
            _ => vec![(
                Outcome::Err(blame("set-box!: expected a box".to_string())),
                heap.clone(),
            )],
        },
        Prim::StringLength => match heap.get(args[0]) {
            SVal::Str(s) => alloc_value(heap, SVal::Num(Number::Int(s.len() as i64))),
            SVal::Opaque { .. } => {
                let proof = ctx.prover.prove_tag(heap, args[0], &Tag::StringT);
                let mut outcomes = Vec::new();
                if proof != Proof::Refuted {
                    let mut result_heap = heap.clone();
                    if proof != Proof::Proved {
                        result_heap.refine(args[0], CRefinement::Is(Tag::StringT));
                    }
                    let result = result_heap.alloc_fresh_opaque();
                    result_heap.refine(result, CRefinement::Is(Tag::Integer));
                    result_heap.refine(result, CRefinement::NumCmp(CmpOp::Ge, CSymExpr::int(0)));
                    outcomes.push((Outcome::Val(result), result_heap));
                }
                if proof != Proof::Proved {
                    let mut no = heap.clone();
                    no.refine(args[0], CRefinement::IsNot(Tag::StringT));
                    outcomes.push((
                        Outcome::Err(blame("string-length: expected a string".to_string())),
                        no,
                    ));
                }
                outcomes
            }
            _ => vec![(
                Outcome::Err(blame("string-length: expected a string".to_string())),
                heap.clone(),
            )],
        },
        Prim::IsZero => numeric_comparison(ctx, owner, Prim::NumEq, args[0], None, heap, label),
        Prim::NumEq | Prim::Lt | Prim::Le | Prim::Gt | Prim::Ge => {
            numeric_comparison(ctx, owner, prim, args[0], Some(args[1]), heap, label)
        }
        Prim::Add | Prim::Sub | Prim::Mul | Prim::Add1 | Prim::Sub1 | Prim::Div | Prim::Mod => {
            arithmetic(ctx, owner, prim, args, heap, label)
        }
    }
}

fn pair_project(
    ctx: &mut Ctx,
    owner: &str,
    prim: Prim,
    loc: Loc,
    heap: &Heap,
    label: Label,
) -> Vec<(Outcome, Heap)> {
    let blame = CBlame {
        party: owner.to_string(),
        message: format!("{prim}: expected a pair"),
        label,
    };
    match heap.get(loc) {
        SVal::Pair(car, cdr) => {
            let field = if prim == Prim::Car { *car } else { *cdr };
            vec![(Outcome::Val(field), heap.clone())]
        }
        SVal::Opaque { .. } => match ctx.prover.prove_tag(heap, loc, &Tag::Pair) {
            Proof::Refuted => vec![(Outcome::Err(blame), heap.clone())],
            _ => {
                let mut yes = heap.clone();
                refine_to_tag(ctx, &mut yes, loc, &Tag::Pair);
                let (car, cdr) = match yes.get(loc) {
                    SVal::Pair(a, b) => (*a, *b),
                    _ => unreachable!("refine_to_tag installs a pair"),
                };
                let field = if prim == Prim::Car { car } else { cdr };
                let mut no = heap.clone();
                no.refine(loc, CRefinement::IsNot(Tag::Pair));
                vec![(Outcome::Val(field), yes), (Outcome::Err(blame), no)]
            }
        },
        _ => vec![(Outcome::Err(blame), heap.clone())],
    }
}

/// Ensures `loc` can be treated as an integer for symbolic arithmetic,
/// returning the feasible branches: `(is_real_integer, heap)`. The non-real
/// branch concretises the value to `0+1i` so counterexamples involving the
/// numeric tower (the `argmin` example) can be produced.
fn integer_branches(ctx: &mut Ctx, heap: &Heap, loc: Loc, allow_complex: bool) -> Vec<(bool, Heap)> {
    match heap.get(loc) {
        SVal::Num(n) => vec![(n.is_real(), heap.clone())],
        SVal::Opaque { .. } => match ctx.prover.prove_tag(heap, loc, &Tag::Real) {
            Proof::Proved => vec![(true, heap.clone())],
            Proof::Refuted => vec![(false, heap.clone())],
            Proof::Ambiguous => {
                let mut real = heap.clone();
                real.refine(loc, CRefinement::Is(Tag::Integer));
                let mut branches = vec![(true, real)];
                if allow_complex
                    && ctx.prover.prove_tag(heap, loc, &Tag::Number) != Proof::Refuted
                {
                    let mut complex = heap.clone();
                    complex.set(loc, SVal::Num(Number::complex(0, 1)));
                    branches.push((false, complex));
                }
                branches
            }
        },
        _ => vec![(false, heap.clone())],
    }
}

#[allow(clippy::too_many_arguments)]
fn numeric_comparison(
    ctx: &mut Ctx,
    owner: &str,
    prim: Prim,
    left: Loc,
    right: Option<Loc>,
    heap: &Heap,
    label: Label,
) -> Vec<(Outcome, Heap)> {
    let blame = CBlame {
        party: owner.to_string(),
        message: format!("{prim}: expected real numbers"),
        label,
    };
    let cmp = match prim {
        Prim::NumEq => CmpOp::Eq,
        Prim::Lt => CmpOp::Lt,
        Prim::Le => CmpOp::Le,
        Prim::Gt => CmpOp::Gt,
        Prim::Ge => CmpOp::Ge,
        _ => CmpOp::Eq,
    };
    // `=` works on all numbers, the orderings require reals.
    let needs_real = !matches!(prim, Prim::NumEq);
    let mut out = Vec::new();
    for (left_real, left_heap) in integer_branches(ctx, heap, left, needs_real) {
        if !left_real && needs_real {
            out.push((Outcome::Err(blame.clone()), left_heap));
            continue;
        }
        if !left_real && !needs_real {
            // Comparing a complex number for equality: decided concretely
            // when possible, otherwise both ways.
            out.extend(alloc_value(&left_heap, SVal::Bool(false)));
            continue;
        }
        let branches_right = match right {
            Some(right) => integer_branches(ctx, &left_heap, right, needs_real),
            None => vec![(true, left_heap.clone())],
        };
        for (right_real, branch_heap) in branches_right {
            if !right_real && needs_real {
                out.push((Outcome::Err(blame.clone()), branch_heap));
                continue;
            }
            if !right_real {
                out.extend(alloc_value(&branch_heap, SVal::Bool(false)));
                continue;
            }
            // Both sides (assumed) integers: decide or branch symbolically.
            let left_concrete = branch_heap.int_at(left);
            let right_concrete = match right {
                Some(r) => branch_heap.int_at(r),
                None => Some(0),
            };
            match (left_concrete, right_concrete) {
                (Some(a), Some(b)) => {
                    out.extend(alloc_value(&branch_heap, SVal::Bool(cmp.eval(a, b))));
                }
                _ => {
                    let (subject, subject_cmp, other_expr) = if branch_heap.int_at(left).is_none() {
                        let rhs = match right {
                            Some(r) => operand(&branch_heap, r),
                            None => CSymExpr::int(0),
                        };
                        (left, cmp, rhs)
                    } else {
                        let flipped = match cmp {
                            CmpOp::Eq => CmpOp::Eq,
                            CmpOp::Ne => CmpOp::Ne,
                            CmpOp::Lt => CmpOp::Gt,
                            CmpOp::Le => CmpOp::Ge,
                            CmpOp::Gt => CmpOp::Lt,
                            CmpOp::Ge => CmpOp::Le,
                        };
                        (right.expect("symbolic side"), flipped, operand(&branch_heap, left))
                    };
                    match ctx.prover.prove_num(&branch_heap, subject, subject_cmp, &other_expr) {
                        Proof::Proved => out.extend(alloc_value(&branch_heap, SVal::Bool(true))),
                        Proof::Refuted => out.extend(alloc_value(&branch_heap, SVal::Bool(false))),
                        Proof::Ambiguous => {
                            let mut yes = branch_heap.clone();
                            yes.refine(subject, CRefinement::NumCmp(subject_cmp, other_expr.clone()));
                            out.extend(alloc_value(&yes, SVal::Bool(true)));
                            let mut no = branch_heap.clone();
                            no.refine(
                                subject,
                                CRefinement::NumCmp(subject_cmp.negate(), other_expr),
                            );
                            out.extend(alloc_value(&no, SVal::Bool(false)));
                        }
                    }
                }
            }
        }
    }
    out
}

fn arithmetic(
    ctx: &mut Ctx,
    owner: &str,
    prim: Prim,
    args: &[Loc],
    heap: &Heap,
    label: Label,
) -> Vec<(Outcome, Heap)> {
    let blame = |message: String| CBlame {
        party: owner.to_string(),
        message,
        label,
    };
    // All-concrete fast path (covers complex arithmetic too).
    let concrete: Option<Vec<Number>> = args.iter().map(|&l| heap.num_at(l)).collect();
    if let Some(values) = concrete {
        return match concrete_arith(prim, &values) {
            Ok(result) => alloc_value(heap, SVal::Num(result)),
            Err(message) => vec![(Outcome::Err(blame(message)), heap.clone())],
        };
    }
    // Symbolic path: every opaque argument is assumed to be an integer (a
    // branch blaming non-numbers is produced when the tag is refutable).
    let mut branch_heaps = vec![heap.clone()];
    for &arg in args {
        let mut next = Vec::new();
        for branch_heap in branch_heaps {
            match branch_heap.get(arg) {
                SVal::Num(n) if n.is_real() => next.push(branch_heap),
                SVal::Num(_) => {
                    // Complex argument to integer-only symbolic arithmetic:
                    // only +,-,* support it and those were handled in the
                    // concrete path, so here the other operand is opaque;
                    // treat the operation as erroneous only for / and modulo.
                    next.push(branch_heap);
                }
                SVal::Opaque { .. } => {
                    match ctx.prover.prove_tag(&branch_heap, arg, &Tag::Number) {
                        Proof::Refuted => {}
                        _ => {
                            let mut yes = branch_heap.clone();
                            if ctx.prover.prove_tag(&yes, arg, &Tag::Integer) != Proof::Proved {
                                yes.refine(arg, CRefinement::Is(Tag::Integer));
                            }
                            next.push(yes);
                        }
                    }
                }
                _ => {}
            }
        }
        branch_heaps = next;
    }
    let mut out: Vec<(Outcome, Heap)> = Vec::new();
    // A branch blaming the operation when some argument may not be a number.
    for &arg in args {
        if matches!(heap.get(arg), SVal::Opaque { .. })
            && ctx.prover.prove_tag(heap, arg, &Tag::Number) != Proof::Proved
        {
            let mut bad = heap.clone();
            bad.refine(arg, CRefinement::IsNot(Tag::Number));
            out.push((Outcome::Err(blame(format!("{prim}: expected numbers"))), bad));
            break;
        }
    }
    for branch_heap in branch_heaps {
        match prim {
            Prim::Div | Prim::Mod => {
                let divisor = args[1];
                let zero = CRefinement::NumCmp(CmpOp::Eq, CSymExpr::int(0));
                match ctx.prover.prove_num(&branch_heap, divisor, CmpOp::Eq, &CSymExpr::int(0)) {
                    Proof::Proved => out.push((
                        Outcome::Err(blame(format!("{prim}: division by zero"))),
                        branch_heap,
                    )),
                    Proof::Refuted => {
                        out.push(symbolic_arith_result(prim, args, branch_heap));
                    }
                    Proof::Ambiguous => {
                        let mut error_heap = branch_heap.clone();
                        if matches!(error_heap.get(divisor), SVal::Opaque { .. }) {
                            error_heap.refine(divisor, zero);
                        }
                        out.push((
                            Outcome::Err(blame(format!("{prim}: division by zero"))),
                            error_heap,
                        ));
                        let mut ok_heap = branch_heap.clone();
                        if matches!(ok_heap.get(divisor), SVal::Opaque { .. }) {
                            ok_heap.refine(
                                divisor,
                                CRefinement::NumCmp(CmpOp::Ne, CSymExpr::int(0)),
                            );
                        }
                        out.push(symbolic_arith_result(prim, args, ok_heap));
                    }
                }
            }
            _ => out.push(symbolic_arith_result(prim, args, branch_heap)),
        }
    }
    out
}

fn symbolic_arith_result(prim: Prim, args: &[Loc], mut heap: Heap) -> (Outcome, Heap) {
    let expr = match prim {
        Prim::Add1 => CSymExpr::Add(Box::new(operand(&heap, args[0])), Box::new(CSymExpr::int(1))),
        Prim::Sub1 => CSymExpr::Sub(Box::new(operand(&heap, args[0])), Box::new(CSymExpr::int(1))),
        Prim::Add | Prim::Sub | Prim::Mul => {
            let mut iter = args.iter();
            let first = operand(&heap, *iter.next().expect("at least one argument"));
            iter.fold(first, |acc, &next| {
                let rhs = operand(&heap, next);
                match prim {
                    Prim::Add => CSymExpr::Add(Box::new(acc), Box::new(rhs)),
                    Prim::Sub => CSymExpr::Sub(Box::new(acc), Box::new(rhs)),
                    _ => CSymExpr::Mul(Box::new(acc), Box::new(rhs)),
                }
            })
        }
        Prim::Div => CSymExpr::Div(
            Box::new(operand(&heap, args[0])),
            Box::new(operand(&heap, args[1])),
        ),
        Prim::Mod => CSymExpr::Mod(
            Box::new(operand(&heap, args[0])),
            Box::new(operand(&heap, args[1])),
        ),
        _ => unreachable!("not an arithmetic primitive"),
    };
    let result = heap.alloc_fresh_opaque();
    heap.refine(result, CRefinement::Is(Tag::Integer));
    heap.refine(result, CRefinement::NumCmp(CmpOp::Eq, expr));
    (Outcome::Val(result), heap)
}

fn concrete_arith(prim: Prim, values: &[Number]) -> Result<Number, String> {
    match prim {
        Prim::Add1 => Ok(values[0].add(Number::Int(1))),
        Prim::Sub1 => Ok(values[0].sub(Number::Int(1))),
        Prim::Add => Ok(values.iter().fold(Number::Int(0), |a, b| a.add(*b))),
        Prim::Mul => Ok(values.iter().fold(Number::Int(1), |a, b| a.mul(*b))),
        Prim::Sub => {
            if values.len() == 1 {
                Ok(Number::Int(0).sub(values[0]))
            } else {
                Ok(values[1..].iter().fold(values[0], |a, b| a.sub(*b)))
            }
        }
        Prim::Div => values[0]
            .div(values[1])
            .ok_or_else(|| "/: division by zero or non-integer operands".to_string()),
        Prim::Mod => values[0]
            .rem(values[1])
            .ok_or_else(|| "modulo: division by zero or non-integer operands".to_string()),
        _ => Err(format!("{prim}: not an arithmetic primitive")),
    }
}
