//! Analysis of a single contracted export: run the symbolic evaluator
//! against the synthesized most general context, and validate candidate
//! counterexamples by a concrete re-run.

use std::collections::HashMap;

use crate::cex::{reconstruct_bindings, Counterexample};
use crate::eval::{eval, Ctx, Outcome};
use crate::heap::{empty_env, Heap};
use crate::prove::{ProverSession, SessionStats};
use crate::syntax::{CBlame, Expr, Label, Module, Program, Provide};

use super::context::{context_expression, instantiate};
use super::{AnalyzeOptions, ExportAnalysis, CONTEXT_PARTY};

/// A prover session configured per `options`: shared-cache-backed when the
/// analysis carries a [`super::SharedVerdictCache`], private otherwise, and
/// attached to the run's theory-lemma pool when one is present.
pub(super) fn new_session(options: &AnalyzeOptions) -> ProverSession {
    let session = match &options.shared_cache {
        Some(cache) => {
            ProverSession::with_config_and_cache(options.eval.prove.clone(), cache.clone())
        }
        None => ProverSession::with_config(options.eval.prove.clone()),
    };
    match &options.shared_lemmas {
        Some(pool) => session.with_lemma_pool(pool.clone()),
        None => session,
    }
}

/// Loads every module's struct declarations and definitions into `ctx`,
/// returning the global heap. Returns `None` if a definition itself fails to
/// evaluate (the context keeps whatever was loaded so far, and its prover
/// session stays usable).
fn load_globals(ctx: &mut Ctx, program: &Program) -> Option<Heap> {
    for module in &program.modules {
        for def in &module.structs {
            ctx.structs.insert(def.name.clone(), def.clone());
        }
    }
    let mut heap = Heap::new();
    let env = empty_env();
    for module in &program.modules {
        for definition in &module.definitions {
            let outcomes = eval(ctx, &env, &module.name, &definition.body, &heap);
            let (loc, new_heap) = outcomes
                .into_iter()
                .find_map(|(outcome, h)| match outcome {
                    Outcome::Val(loc) => Some((loc, h)),
                    _ => None,
                })?;
            heap = new_heap;
            ctx.globals.insert(definition.name.clone(), loc);
        }
    }
    Some(heap)
}

/// Analyzes one export, reusing `session` (and returning it for the caller's
/// next export). The returned [`SessionStats`] cover exactly this export's
/// work: the session's counters are reset on entry, and the counters of the
/// throwaway validation sessions are merged in.
pub(super) fn analyze_export(
    program: &Program,
    module: &Module,
    provide: &Provide,
    options: &AnalyzeOptions,
    mut session: ProverSession,
) -> (ExportAnalysis, SessionStats, ProverSession) {
    session.reset_stats();
    let mut ctx = Ctx::with_prover(options.eval.clone(), session);
    let Some(heap) = load_globals(&mut ctx, program) else {
        let stats = ctx.prover.stats();
        return (
            ExportAnalysis::ProbableError(CBlame {
                party: module.name.clone(),
                message: "a module-level definition failed to evaluate".to_string(),
                label: Label(u32::MAX),
            }),
            stats,
            ctx.prover,
        );
    };
    let mut next_label = 500_000;
    let context_expr = context_expression(module, provide, options.context_depth, &mut next_label);
    let labels = context_expr.opaque_labels();
    let outcomes = eval(&mut ctx, &empty_env(), CONTEXT_PARTY, &context_expr, &heap);

    let mut stats = SessionStats::default();
    let mut probable: Option<CBlame> = None;
    let mut saw_timeout = false;
    for (outcome, branch_heap) in &outcomes {
        match outcome {
            Outcome::Timeout => saw_timeout = true,
            Outcome::Err(blame) if blame.party == module.name => {
                match reconstruct_bindings(&mut ctx.prover, branch_heap, &labels) {
                    None => {
                        if probable.is_none() {
                            probable = Some(blame.clone());
                        }
                    }
                    Some(bindings) => {
                        let mut counterexample = Counterexample {
                            blame: blame.clone(),
                            bindings,
                            validated: false,
                        };
                        if options.validate {
                            let (confirmed, validation_stats) =
                                validate(program, &context_expr, &counterexample, options);
                            stats.merge(&validation_stats);
                            if confirmed {
                                counterexample.validated = true;
                                stats.merge(&ctx.prover.stats());
                                return (
                                    ExportAnalysis::Counterexample(counterexample),
                                    stats,
                                    ctx.prover,
                                );
                            }
                            if probable.is_none() {
                                probable = Some(blame.clone());
                            }
                        } else {
                            stats.merge(&ctx.prover.stats());
                            return (
                                ExportAnalysis::Counterexample(counterexample),
                                stats,
                                ctx.prover,
                            );
                        }
                    }
                }
            }
            _ => {}
        }
    }
    stats.merge(&ctx.prover.stats());
    let verdict = if let Some(blame) = probable {
        ExportAnalysis::ProbableError(blame)
    } else if saw_timeout {
        ExportAnalysis::Exhausted
    } else {
        ExportAnalysis::Verified
    };
    (verdict, stats, ctx.prover)
}

/// Re-runs the context expression with the counterexample's concrete inputs
/// and checks that the same party is blamed. Returns the verdict together
/// with the prover statistics of the validation run.
fn validate(
    program: &Program,
    context_expr: &Expr,
    counterexample: &Counterexample,
    options: &AnalyzeOptions,
) -> (bool, SessionStats) {
    let bindings: HashMap<Label, Expr> = counterexample
        .bindings
        .iter()
        .map(|(l, e)| (*l, e.clone()))
        .collect();
    let concrete = instantiate(context_expr, &bindings);
    let mut ctx = Ctx::with_prover(options.eval.clone(), new_session(options));
    let Some(heap) = load_globals(&mut ctx, program) else {
        return (false, ctx.prover.stats());
    };
    let outcomes = eval(&mut ctx, &empty_env(), CONTEXT_PARTY, &concrete, &heap);
    let confirmed = outcomes.iter().any(|(outcome, _)| {
        matches!(outcome, Outcome::Err(blame) if blame.party == counterexample.blame.party)
    });
    (confirmed, ctx.prover.stats())
}
