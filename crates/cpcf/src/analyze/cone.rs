//! Per-export dependency-cone hashing for incremental re-verification.
//!
//! An export's verdict is a deterministic function of (a) its contract,
//! (b) every definition transitively reachable from the contract or the
//! exported definition, and (c) the program's struct declarations — nothing
//! else in the program can influence the analysis. Hashing exactly that
//! *cone* gives a content address for the verdict: an edit outside the cone
//! leaves the hash unchanged, so `analyze --incremental` can reuse the
//! stored [`super::ExportAnalysis`] instead of re-running the export.
//!
//! Reachability is name-based: starting from the variables referenced by
//! the contract plus the exported name itself, the walk follows `Var`
//! references into the program-wide definition map (later modules shadow
//! earlier ones, matching the evaluator's global-loading order). This
//! over-approximates — a lambda parameter shadowing a global pulls the
//! global's definition into the cone anyway — which is the sound direction:
//! a too-big cone only re-analyzes more than strictly necessary, never
//! reuses a stale verdict.
//!
//! One deliberate over-approximation in the *other* direction is documented
//! at [`export_cone_hash`]: the cone covers definitions, not the incidental
//! order in which unrelated modules load, so a program whose unrelated
//! module fails to *load* (diverges at load time) is outside the model.
//! Evaluation budgets do not need to be in the hash: they live in the
//! engine-config fingerprint that names the store file.

use std::collections::{BTreeMap, HashSet};

use crate::store::{fnv1a, Enc};
use crate::syntax::{Expr, Module, Program, Provide};

/// Every variable name referenced anywhere inside `expr` (including in
/// binding positions' bodies; shadowing is ignored — see the module docs).
fn referenced_names(expr: &Expr, into: &mut Vec<String>) {
    expr.walk(&mut |node| {
        if let Expr::Var(name) = node {
            into.push(name.clone());
        }
    });
}

/// The dependency-cone hash of one contracted export.
///
/// Covers, in a canonical order: the analyzed module's name, the export's
/// name and contract, every struct declaration in the program, and every
/// definition reachable by name from the contract or the export (each
/// tagged with the module that ultimately provides it under the
/// last-module-wins shadowing the evaluator uses). Two program versions
/// with equal hashes analyze this export identically, with one caveat: the
/// analysis also evaluates *unrelated* top-level definitions while loading
/// globals, so a definition outside the cone that fails to load can abort
/// the whole module run — the incremental mode trades that corner for
/// skipping everything untouched, and `--incremental` is opt-in for exactly
/// this reason.
pub fn export_cone_hash(program: &Program, module: &Module, provide: &Provide) -> u64 {
    // The program-wide definition map the evaluator effectively builds:
    // every module's definitions in module order, later names shadowing
    // earlier ones.
    let mut definitions: BTreeMap<&str, (&str, &Expr)> = BTreeMap::new();
    for m in &program.modules {
        for def in &m.definitions {
            definitions.insert(def.name.as_str(), (m.name.as_str(), &def.body));
        }
    }

    // Name-based reachability from the contract and the exported name.
    let mut worklist: Vec<String> = Vec::new();
    referenced_names(&provide.contract, &mut worklist);
    worklist.push(provide.name.clone());
    let mut visited: HashSet<String> = HashSet::new();
    let mut cone: BTreeMap<&str, (&str, &Expr)> = BTreeMap::new();
    while let Some(name) = worklist.pop() {
        if !visited.insert(name.clone()) {
            continue;
        }
        if let Some((&key, &(owner, body))) = definitions.get_key_value(name.as_str()) {
            cone.insert(key, (owner, body));
            referenced_names(body, &mut worklist);
        }
    }

    let mut enc = Enc::new();
    enc.str(&module.name);
    enc.str(&provide.name);
    crate::store::encode_expr(&mut enc, &provide.contract);
    // Struct declarations are program-global (the parser resolves accessors
    // by struct name), so they are all part of every cone.
    for m in &program.modules {
        for st in &m.structs {
            enc.str(&m.name);
            enc.str(&st.name);
            enc.u32(st.fields.len() as u32);
            for field in &st.fields {
                enc.str(field);
            }
        }
    }
    // Reachable definitions in canonical (BTreeMap name) order.
    for (name, (owner, body)) in &cone {
        enc.str(name);
        enc.str(owner);
        crate::store::encode_expr(&mut enc, body);
    }
    fnv1a(enc.bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    const TWO_MODULES: &str = r#"
        (module helpers
          (provide [double (-> integer? integer?)])
          (define (double x) (* x 2))
          (define (offset x) (+ x 7)))
        (module main
          (provide [f (-> integer? integer?)]
                   [g (-> integer? integer?)])
          (define (f n) (double n))
          (define (g n) (+ n 1)))
    "#;

    fn parsed(source: &str) -> Program {
        crate::parse::parse_program(source).expect("parses").0
    }

    fn hash_of(program: &Program, module: &str, export: &str) -> u64 {
        let module = program.module(module).expect("module exists");
        let provide = module
            .provides
            .iter()
            .find(|p| p.name == export)
            .expect("export exists");
        export_cone_hash(program, module, provide)
    }

    #[test]
    fn cone_hash_is_stable_across_parses() {
        let a = parsed(TWO_MODULES);
        let b = parsed(TWO_MODULES);
        assert_eq!(hash_of(&a, "main", "f"), hash_of(&b, "main", "f"));
        assert_eq!(hash_of(&a, "main", "g"), hash_of(&b, "main", "g"));
        assert_ne!(
            hash_of(&a, "main", "f"),
            hash_of(&a, "main", "g"),
            "distinct exports hash distinctly"
        );
    }

    #[test]
    fn editing_a_dependency_changes_only_dependent_cones() {
        let before = parsed(TWO_MODULES);
        // Edit `double`, which only `f` reaches.
        let after = parsed(&TWO_MODULES.replace("(* x 2)", "(* x 3)"));
        assert_ne!(
            hash_of(&before, "main", "f"),
            hash_of(&after, "main", "f"),
            "f depends on double"
        );
        assert_eq!(
            hash_of(&before, "main", "g"),
            hash_of(&after, "main", "g"),
            "g does not reach double"
        );
        // `offset` is referenced by nobody: editing it moves no main cone.
        let unrelated = parsed(&TWO_MODULES.replace("(+ x 7)", "(+ x 8)"));
        assert_eq!(
            hash_of(&before, "main", "f"),
            hash_of(&unrelated, "main", "f")
        );
        assert_eq!(
            hash_of(&before, "main", "g"),
            hash_of(&unrelated, "main", "g")
        );
    }

    #[test]
    fn editing_the_contract_or_body_changes_the_cone() {
        let before = parsed(TWO_MODULES);
        let contract_edit =
            parsed(&TWO_MODULES.replace("[g (-> integer? integer?)]", "[g (-> integer? number?)]"));
        assert_ne!(
            hash_of(&before, "main", "g"),
            hash_of(&contract_edit, "main", "g")
        );
        let body_edit = parsed(&TWO_MODULES.replace("(+ n 1)", "(+ n 2)"));
        assert_ne!(
            hash_of(&before, "main", "g"),
            hash_of(&body_edit, "main", "g")
        );
        assert_eq!(
            hash_of(&before, "main", "f"),
            hash_of(&body_edit, "main", "f"),
            "f does not reach g"
        );
    }

    #[test]
    fn struct_declarations_are_in_every_cone() {
        let source = r#"
            (module shapes
              (struct point (x y))
              (provide [get-x (-> point? integer?)])
              (define (get-x p) (point-x p)))
        "#;
        let before = parsed(source);
        let after = parsed(&source.replace("(struct point (x y))", "(struct point (x y z))"));
        assert_ne!(
            hash_of(&before, "shapes", "get-x"),
            hash_of(&after, "shapes", "get-x"),
            "changing a struct arity must invalidate"
        );
    }
}
