//! Synthesis of the most general unknown context for an export, and the
//! instantiation of that context with concrete counterexample inputs.

use std::collections::HashMap;

use crate::syntax::{Expr, Label, Module, Provide};

/// The synthesized most-general-context expression for an export, along with
/// the opaque labels it introduces.
pub(super) fn context_expression(
    module: &Module,
    provide: &Provide,
    depth: u32,
    next_label: &mut u32,
) -> Expr {
    let mut fresh = || {
        let label = Label(*next_label);
        *next_label += 1;
        label
    };
    let mut expr = Expr::Mon {
        contract: Box::new(provide.contract.clone()),
        value: Box::new(Expr::var(&provide.name)),
        pos: module.name.clone(),
        neg: super::CONTEXT_PARTY.to_string(),
        label: fresh(),
    };
    let mut contract = &provide.contract;
    let mut remaining = depth;
    while remaining > 0 {
        match contract {
            Expr::CArrow(doms, rng) => {
                let args: Vec<Expr> = doms.iter().map(|_| Expr::Opaque(fresh())).collect();
                expr = Expr::app(expr, args);
                contract = rng;
                remaining -= 1;
            }
            Expr::CAnd(parts) => {
                // Use the first arrow conjunct, if any, to drive the context.
                match parts.iter().find(|p| matches!(p, Expr::CArrow(_, _))) {
                    Some(arrow) => contract = arrow,
                    None => break,
                }
            }
            _ => break,
        }
    }
    expr
}

/// Replaces opaque sub-expressions by the bindings' concrete expressions.
pub fn instantiate(expr: &Expr, bindings: &HashMap<Label, Expr>) -> Expr {
    match expr {
        Expr::Opaque(label) => bindings.get(label).cloned().unwrap_or_else(|| expr.clone()),
        Expr::Var(_)
        | Expr::Int(_)
        | Expr::Complex(_, _)
        | Expr::Bool(_)
        | Expr::Str(_)
        | Expr::Nil
        | Expr::CAny => expr.clone(),
        Expr::Lam { params, body } => Expr::Lam {
            params: params.clone(),
            body: Box::new(instantiate(body, bindings)),
        },
        Expr::App(f, args) => Expr::App(
            Box::new(instantiate(f, bindings)),
            args.iter().map(|a| instantiate(a, bindings)).collect(),
        ),
        Expr::If(c, t, e) => Expr::If(
            Box::new(instantiate(c, bindings)),
            Box::new(instantiate(t, bindings)),
            Box::new(instantiate(e, bindings)),
        ),
        Expr::And(es) => Expr::And(es.iter().map(|e| instantiate(e, bindings)).collect()),
        Expr::Or(es) => Expr::Or(es.iter().map(|e| instantiate(e, bindings)).collect()),
        Expr::Begin(es) => Expr::Begin(es.iter().map(|e| instantiate(e, bindings)).collect()),
        Expr::Let {
            bindings: lets,
            recursive,
            body,
        } => Expr::Let {
            bindings: lets
                .iter()
                .map(|(n, e)| (n.clone(), instantiate(e, bindings)))
                .collect(),
            recursive: *recursive,
            body: Box::new(instantiate(body, bindings)),
        },
        Expr::Prim(p, args, label) => Expr::Prim(
            *p,
            args.iter().map(|a| instantiate(a, bindings)).collect(),
            *label,
        ),
        Expr::CArrow(doms, rng) => Expr::CArrow(
            doms.iter().map(|d| instantiate(d, bindings)).collect(),
            Box::new(instantiate(rng, bindings)),
        ),
        Expr::CAnd(es) => Expr::CAnd(es.iter().map(|e| instantiate(e, bindings)).collect()),
        Expr::COr(es) => Expr::COr(es.iter().map(|e| instantiate(e, bindings)).collect()),
        Expr::CCons(a, b) => Expr::CCons(
            Box::new(instantiate(a, bindings)),
            Box::new(instantiate(b, bindings)),
        ),
        Expr::CListOf(c) => Expr::CListOf(Box::new(instantiate(c, bindings))),
        Expr::COneOf(es) => Expr::COneOf(es.iter().map(|e| instantiate(e, bindings)).collect()),
        Expr::Mon {
            contract,
            value,
            pos,
            neg,
            label,
        } => Expr::Mon {
            contract: Box::new(instantiate(contract, bindings)),
            value: Box::new(instantiate(value, bindings)),
            pos: pos.clone(),
            neg: neg.clone(),
            label: *label,
        },
        Expr::StructMake(name, args) => Expr::StructMake(
            name.clone(),
            args.iter().map(|a| instantiate(a, bindings)).collect(),
        ),
        Expr::StructPred(name, e) => {
            Expr::StructPred(name.clone(), Box::new(instantiate(e, bindings)))
        }
        Expr::StructGet(name, index, e, label) => Expr::StructGet(
            name.clone(),
            *index,
            Box::new(instantiate(e, bindings)),
            *label,
        ),
    }
}
