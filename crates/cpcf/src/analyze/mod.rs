//! The analysis driver: soft contract verification with counterexamples.
//!
//! For every contracted export of a module, the analyzer synthesizes the
//! most general unknown context allowed by the contract — opaque arguments
//! for every `->` domain, iterated when the range is itself a function
//! contract — and runs the symbolic evaluator. Errors blamed on the module
//! are candidate violations; for each one the heap's model is used to
//! reconstruct concrete inputs, the program is re-run concretely, and only a
//! confirmed blame is reported as a counterexample (otherwise the export is
//! flagged as a *probable* violation, exactly like the paper's tool when the
//! solver cannot produce a model).
//!
//! The driver is split by concern:
//!
//! * [`mod@self`] — options, verdicts and the [`ModuleReport`];
//! * `context` — most-general-context synthesis and counterexample
//!   instantiation ([`instantiate`]);
//! * `export` — the single-export analysis and concrete validation;
//! * `scheduler` — the worker pool sharding per-export analyses across
//!   threads ([`AnalyzeOptions::workers`]), one long-lived
//!   [`crate::ProverSession`] per worker.

mod cone;
mod context;
mod export;
mod scheduler;

pub use cone::export_cone_hash;
pub use context::instantiate;

use folic::SharedLemmaPool;

use crate::cex::Counterexample;
use crate::eval::EvalOptions;
use crate::prove::{SessionStats, SharedVerdictCache};
use crate::syntax::{CBlame, Program};

/// The blame party used for the synthesized unknown context.
pub const CONTEXT_PARTY: &str = "context";

/// Options controlling an analysis run.
#[derive(Debug, Clone)]
pub struct AnalyzeOptions {
    /// Evaluator options (fuel, branching, case maps, havoc depth).
    pub eval: EvalOptions,
    /// Re-run counterexamples concretely before reporting them.
    pub validate: bool,
    /// How many nested `->` ranges the synthesized context applies.
    pub context_depth: u32,
    /// How many worker threads shard the per-export analyses. `1` runs the
    /// exports sequentially (still through the scheduler, with one reused
    /// session); `0` means "auto": one worker per hardware thread, as
    /// reported by [`std::thread::available_parallelism`] (resolved by
    /// [`resolve_workers`] at scheduling time, so the same options value
    /// adapts to the machine it runs on). Defaults to the `ANALYZE_WORKERS`
    /// environment variable — which follows the same convention, `0` for
    /// auto — or `1` when unset or unparsable.
    pub workers: usize,
    /// A verdict cache shared across this run's workers and, when the same
    /// handle is passed to several runs, across runs — e.g. the correct and
    /// faulty variants of a benchmark program. `None` keeps every session's
    /// cache private.
    pub shared_cache: Option<SharedVerdictCache>,
    /// A theory-lemma pool shared across this run's workers (and, when the
    /// same handle spans several runs, across runs). `None` lets the
    /// scheduler consult [`folic::default_lemma_sharing`]
    /// (`CPCF_LEMMA_SHARING`) and create a per-run pool when sharing is on;
    /// `Some` pins an explicit pool regardless of the environment.
    pub shared_lemmas: Option<SharedLemmaPool>,
    /// A persistent [`crate::AnalysisStore`]. When set, the scheduler
    /// warm-starts the lemma pool from it before analyzing, records every
    /// freshly computed per-export verdict under its dependency-cone hash
    /// ([`export_cone_hash`]), and records new lemmas after the run. (The
    /// *verdict-cache* tier is wired separately: build the shared cache
    /// with [`SharedVerdictCache::with_store`].)
    pub store: Option<crate::store::AnalysisStore>,
    /// Incremental re-verification: when `store` is set, exports whose
    /// dependency-cone hash matches a stored verdict are skipped entirely
    /// (the stored [`ExportAnalysis`] is returned and the export listed in
    /// [`ModuleReport::skipped`]); only edited cones are re-analyzed.
    pub incremental: bool,
}

/// The worker count taken from the `ANALYZE_WORKERS` environment variable,
/// or 1 when unset or unparsable. `0` is passed through (it means "auto",
/// see [`AnalyzeOptions::workers`]); positive values are clamped to `1..=64`.
pub fn default_workers() -> usize {
    std::env::var("ANALYZE_WORKERS")
        .ok()
        .and_then(|value| value.trim().parse::<usize>().ok())
        .map_or(1, |n| if n == 0 { 0 } else { n.clamp(1, 64) })
}

/// Resolves a requested worker count to an actual one: `0` ("auto") becomes
/// the machine's available parallelism (1 when that cannot be determined),
/// any other value is taken as-is.
pub fn resolve_workers(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        requested
    }
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        AnalyzeOptions {
            eval: EvalOptions::default(),
            validate: true,
            context_depth: 3,
            workers: default_workers(),
            shared_cache: None,
            shared_lemmas: None,
            store: None,
            incremental: false,
        }
    }
}

/// The verdict for a single contracted export.
#[derive(Debug, Clone, PartialEq)]
pub enum ExportAnalysis {
    /// No error blamed on the module is reachable within the budget, and the
    /// whole (finite) interaction space was explored.
    Verified,
    /// A confirmed, concrete counterexample.
    Counterexample(Counterexample),
    /// An error was reached symbolically but no concrete counterexample
    /// could be confirmed.
    ProbableError(CBlame),
    /// The evaluation budget was exhausted before the space was covered.
    Exhausted,
}

impl ExportAnalysis {
    /// True if the export was verified.
    pub fn is_verified(&self) -> bool {
        matches!(self, ExportAnalysis::Verified)
    }

    /// The counterexample, if any.
    pub fn counterexample(&self) -> Option<&Counterexample> {
        match self {
            ExportAnalysis::Counterexample(c) => Some(c),
            _ => None,
        }
    }
}

/// The analysis report for one module.
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleReport {
    /// The analysed module.
    pub module: String,
    /// Per-export verdicts, in module (declaration) order regardless of the
    /// worker count or completion order.
    pub exports: Vec<(String, ExportAnalysis)>,
    /// Aggregated prover-session statistics over every export analysis
    /// (including counterexample validation re-runs): query counts, cache
    /// hits, and how many full versus incremental heap encodings the solver
    /// interaction needed.
    pub stats: SessionStats,
    /// Per-worker statistics, in worker-index order (one entry when the
    /// analysis ran sequentially). Summing these gives `stats`.
    pub worker_stats: Vec<SessionStats>,
    /// Exports whose verdict was reused from the persistent store because
    /// their dependency-cone hash was unchanged (incremental mode only; a
    /// subset of the `exports` names, in module order). Empty outside
    /// [`AnalyzeOptions::incremental`] runs.
    pub skipped: Vec<String>,
}

impl ModuleReport {
    /// True if every export was verified.
    pub fn all_verified(&self) -> bool {
        self.exports.iter().all(|(_, a)| a.is_verified())
    }

    /// The first counterexample found, if any.
    pub fn first_counterexample(&self) -> Option<&Counterexample> {
        self.exports.iter().find_map(|(_, a)| a.counterexample())
    }
}

/// Analyzes the last module of the program with default options.
pub fn analyze(program: &Program) -> ModuleReport {
    let name = program
        .modules
        .last()
        .map(|m| m.name.clone())
        .unwrap_or_else(|| "main".to_string());
    analyze_module(program, &name, &AnalyzeOptions::default())
}

/// Analyzes the named module, sharding the per-export analyses across
/// `options.workers` threads.
pub fn analyze_module(
    program: &Program,
    module_name: &str,
    options: &AnalyzeOptions,
) -> ModuleReport {
    let Some(module) = program.module(module_name) else {
        return ModuleReport {
            module: module_name.to_string(),
            exports: Vec::new(),
            stats: SessionStats::default(),
            worker_stats: Vec::new(),
            skipped: Vec::new(),
        };
    };
    let (exports, stats, worker_stats, skipped) = scheduler::run_exports(program, module, options);
    ModuleReport {
        module: module_name.to_string(),
        exports,
        stats,
        worker_stats,
        skipped,
    }
}

/// Convenience: parse and analyze source text, returning the report of the
/// last module.
///
/// # Errors
///
/// Returns a parse error message when the source is malformed.
pub fn analyze_source(source: &str) -> Result<ModuleReport, String> {
    analyze_source_with(source, &AnalyzeOptions::default())
}

/// [`analyze_source`] with explicit options.
///
/// # Errors
///
/// Returns a parse error message when the source is malformed.
pub fn analyze_source_with(source: &str, options: &AnalyzeOptions) -> Result<ModuleReport, String> {
    let (program, _structs) = crate::parse::parse_program(source).map_err(|e| e.to_string())?;
    let name = program
        .modules
        .last()
        .map(|m| m.name.clone())
        .unwrap_or_else(|| "main".to_string());
    Ok(analyze_module(&program, &name, options))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::Expr;

    #[test]
    fn safe_increment_is_verified() {
        let report = analyze_source(
            r#"
            (module inc
              (provide [f (-> integer? integer?)])
              (define (f x) (+ x 1)))
            "#,
        )
        .expect("parses");
        assert!(report.all_verified(), "report: {report:?}");
    }

    #[test]
    fn quickcheck_hard_division_yields_counterexample() {
        // f n = 1 / (100 - n): needs exactly n = 100 (§5.2 of the paper).
        let report = analyze_source(
            r#"
            (module div100
              (provide [f (-> integer? integer?)])
              (define (f n) (/ 1 (- 100 n))))
            "#,
        )
        .expect("parses");
        let cex = report.first_counterexample().expect("counterexample");
        assert!(cex.validated);
        assert!(
            cex.bindings.iter().any(|(_, e)| *e == Expr::Int(100)),
            "expected the input 100, got {:?}",
            cex.bindings
        );
    }

    #[test]
    fn guarded_division_is_verified() {
        let report = analyze_source(
            r#"
            (module safe-div
              (provide [f (-> integer? integer?)])
              (define (f n) (if (zero? n) 0 (/ 100 n))))
            "#,
        )
        .expect("parses");
        assert!(report.all_verified(), "report: {report:?}");
    }

    #[test]
    fn precondition_protects_division() {
        // The contract requires a non-zero argument, so no error is reachable.
        let report = analyze_source(
            r#"
            (module safe-div2
              (provide [f (-> (and/c integer? (lambda (n) (not (zero? n)))) integer?)])
              (define (f n) (/ 100 n)))
            "#,
        )
        .expect("parses");
        assert!(report.all_verified(), "report: {report:?}");
    }

    #[test]
    fn weak_contract_lets_complex_numbers_through() {
        // `<` requires reals but the contract only demands number?: the
        // argmin-style counterexample (§5.2).
        let report = analyze_source(
            r#"
            (module cmp
              (provide [smaller? (-> number? boolean?)])
              (define (smaller? x) (< x 0)))
            "#,
        )
        .expect("parses");
        let cex = report.first_counterexample().expect("counterexample");
        assert!(cex.validated);
        assert!(
            cex.bindings
                .iter()
                .any(|(_, e)| matches!(e, Expr::Complex(_, _))),
            "expected a complex input, got {:?}",
            cex.bindings
        );
    }

    #[test]
    fn higher_order_argument_counterexample() {
        // The exported function applies its functional argument and divides
        // by the result minus 100: the counterexample must provide a function
        // returning 100.
        let report = analyze_source(
            r#"
            (module ho
              (provide [f (-> (-> integer? integer?) integer? integer?)])
              (define (f g n) (/ 1 (- 100 (g n)))))
            "#,
        )
        .expect("parses");
        let cex = report.first_counterexample().expect("counterexample");
        assert!(cex.validated);
        assert!(
            cex.bindings
                .iter()
                .any(|(_, e)| matches!(e, Expr::Lam { .. })),
            "expected a functional input, got {:?}",
            cex.bindings
        );
    }

    #[test]
    fn car_of_possibly_empty_list_is_caught() {
        let report = analyze_source(
            r#"
            (module head
              (provide [head (-> (listof integer?) integer?)])
              (define (head xs) (car xs)))
            "#,
        )
        .expect("parses");
        let cex = report.first_counterexample().expect("counterexample");
        assert!(cex.validated);
    }

    #[test]
    fn nonempty_list_contract_verifies_car() {
        let report = analyze_source(
            r#"
            (module head
              (provide [head (-> (and/c (listof integer?) pair?) integer?)])
              (define (head xs) (car xs)))
            "#,
        )
        .expect("parses");
        assert!(report.all_verified(), "report: {report:?}");
    }

    #[test]
    fn range_contract_violations_blame_the_module() {
        // The module promises a positive result but returns the argument
        // unchanged.
        let report = analyze_source(
            r#"
            (module pos
              (provide [f (-> integer? (and/c integer? (lambda (r) (> r 0))))])
              (define (f x) x))
            "#,
        )
        .expect("parses");
        let cex = report.first_counterexample().expect("counterexample");
        assert!(cex.validated);
    }

    #[test]
    fn struct_accessors_are_checked() {
        let report = analyze_source(
            r#"
            (module tree
              (struct node (left right))
              (provide [left-of (-> any/c any/c)])
              (define (left-of t) (node-left t)))
            "#,
        )
        .expect("parses");
        let cex = report.first_counterexample().expect("counterexample");
        assert!(
            cex.validated,
            "accessing a field of a non-node must be caught"
        );
    }

    #[test]
    fn struct_contract_protects_accessors() {
        let report = analyze_source(
            r#"
            (module tree
              (struct node (left right))
              (provide [left-of (-> node? any/c)])
              (define (left-of t) (node-left t)))
            "#,
        )
        .expect("parses");
        assert!(report.all_verified(), "report: {report:?}");
    }

    /// A module with several exports of mixed verdicts, for scheduler tests.
    const MULTI_EXPORT: &str = r#"
        (module multi
          (provide [safe (-> integer? integer?)]
                   [crash (-> integer? integer?)]
                   [guarded (-> integer? integer?)]
                   [wrong-range (-> integer? (and/c integer? (lambda (r) (> r 0))))])
          (define (safe x) (+ x 1))
          (define (crash n) (/ 1 (- 100 n)))
          (define (guarded n) (if (zero? n) 0 (/ 100 n)))
          (define (wrong-range x) x))
    "#;

    fn verdict_kind(analysis: &ExportAnalysis) -> &'static str {
        match analysis {
            ExportAnalysis::Verified => "verified",
            ExportAnalysis::Counterexample(_) => "counterexample",
            ExportAnalysis::ProbableError(_) => "probable",
            ExportAnalysis::Exhausted => "exhausted",
        }
    }

    #[test]
    fn sharded_analysis_matches_sequential_and_keeps_order() {
        let sequential = analyze_source_with(
            MULTI_EXPORT,
            &AnalyzeOptions {
                workers: 1,
                ..AnalyzeOptions::default()
            },
        )
        .expect("parses");
        let sharded = analyze_source_with(
            MULTI_EXPORT,
            &AnalyzeOptions {
                workers: 4,
                ..AnalyzeOptions::default()
            },
        )
        .expect("parses");
        let names: Vec<&str> = sequential.exports.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            vec!["safe", "crash", "guarded", "wrong-range"],
            "export order must follow the module declaration"
        );
        assert_eq!(
            sequential
                .exports
                .iter()
                .map(|(n, a)| (n.as_str(), verdict_kind(a)))
                .collect::<Vec<_>>(),
            sharded
                .exports
                .iter()
                .map(|(n, a)| (n.as_str(), verdict_kind(a)))
                .collect::<Vec<_>>(),
            "worker count must not change verdicts or their order"
        );
        assert_eq!(sequential.worker_stats.len(), 1);
        assert!(sharded.worker_stats.len() > 1, "several workers ran");
        // Per-worker stats sum to the merged stats.
        let mut summed = SessionStats::default();
        for per_worker in &sharded.worker_stats {
            summed.merge(per_worker);
        }
        assert_eq!(summed, sharded.stats);
    }

    #[test]
    fn shared_cache_feeds_sibling_workers_and_later_runs() {
        let cache = SharedVerdictCache::new();
        let options = AnalyzeOptions {
            workers: 4,
            shared_cache: Some(cache.clone()),
            ..AnalyzeOptions::default()
        };
        let first = analyze_source_with(MULTI_EXPORT, &options).expect("parses");
        assert!(
            !cache.is_empty(),
            "the run must populate the shared cache: {:?}",
            first.stats
        );
        cache.advance_epoch();
        let second = analyze_source_with(MULTI_EXPORT, &options).expect("parses");
        assert_eq!(
            first
                .exports
                .iter()
                .map(|(n, a)| (n.as_str(), verdict_kind(a)))
                .collect::<Vec<_>>(),
            second
                .exports
                .iter()
                .map(|(n, a)| (n.as_str(), verdict_kind(a)))
                .collect::<Vec<_>>(),
        );
        assert!(
            cache.cross_epoch_hits() > 0,
            "the second run must reuse verdicts computed by the first"
        );
        assert!(
            second.stats.shared_cache_hits > 0,
            "sessions must report shared hits: {:?}",
            second.stats
        );
    }

    #[test]
    fn workers_env_variable_feeds_the_default() {
        // `default_workers` clamps and falls back rather than panicking; it
        // may legitimately return 0 ("auto") when ANALYZE_WORKERS=0.
        let workers = default_workers();
        assert!(workers <= 64);
        assert_eq!(AnalyzeOptions::default().workers, workers);
    }

    #[test]
    fn zero_workers_resolves_to_available_parallelism() {
        let auto = resolve_workers(0);
        assert!(auto >= 1, "auto never resolves below one worker");
        assert_eq!(
            auto,
            std::thread::available_parallelism().map_or(1, |n| n.get())
        );
        // Positive requests pass through unchanged.
        assert_eq!(resolve_workers(1), 1);
        assert_eq!(resolve_workers(7), 7);
    }

    #[test]
    fn zero_workers_analysis_runs_with_auto_parallelism() {
        let report = analyze_source_with(
            MULTI_EXPORT,
            &AnalyzeOptions {
                workers: 0,
                ..AnalyzeOptions::default()
            },
        )
        .expect("parses");
        let expected_workers = resolve_workers(0).clamp(1, report.exports.len());
        assert_eq!(
            report.worker_stats.len(),
            expected_workers,
            "workers: 0 must spawn one worker per hardware thread (capped by exports)"
        );
        // Verdicts are unchanged versus the sequential run.
        let sequential = analyze_source_with(
            MULTI_EXPORT,
            &AnalyzeOptions {
                workers: 1,
                ..AnalyzeOptions::default()
            },
        )
        .expect("parses");
        assert_eq!(
            sequential
                .exports
                .iter()
                .map(|(n, a)| (n.as_str(), verdict_kind(a)))
                .collect::<Vec<_>>(),
            report
                .exports
                .iter()
                .map(|(n, a)| (n.as_str(), verdict_kind(a)))
                .collect::<Vec<_>>(),
        );
    }
}
