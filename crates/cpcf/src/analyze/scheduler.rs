//! The analysis scheduler: shards a module's per-export analyses across a
//! pool of `std::thread` workers.
//!
//! Per-export analyses are embarrassingly parallel — each export is analyzed
//! against its own most general context on its own symbolic heap — so the
//! pool uses the simplest sound work distribution: an atomic claim counter
//! over the export list. Each worker keeps **one long-lived
//! [`ProverSession`]** for every export it claims, so the session's verdict
//! cache (and, when export heaps share a journal prefix, its live solver
//! frames) stay warm across exports; a [`super::SharedVerdictCache`] in the
//! options additionally lets verdicts flow *between* workers and across
//! analysis runs.
//!
//! Determinism: the export slot a verdict lands in is fixed by the export's
//! position in the module, not by completion order, so `ModuleReport`
//! ordering is stable for any worker count. Verdicts themselves are
//! scheduling-independent because every cached proof is keyed by heap
//! content (fingerprint), and the prover is a deterministic function of that
//! content. Statistics are merged in worker-index order.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::prove::SessionStats;
use crate::syntax::{Module, Program};

use super::export::{analyze_export, new_session};
use super::{AnalyzeOptions, ExportAnalysis};

/// What a sharded module run produces: the per-export verdicts in module
/// order, the merged statistics, the per-worker statistics in worker-index
/// order, and the names of exports skipped by incremental re-verification.
pub(super) type ExportRun = (
    Vec<(String, ExportAnalysis)>,
    SessionStats,
    Vec<SessionStats>,
    Vec<String>,
);

/// Runs every export of `module`, sharded over `options.workers` threads.
pub(super) fn run_exports(
    program: &Program,
    module: &Module,
    options: &AnalyzeOptions,
) -> ExportRun {
    let export_count = module.provides.len();
    // Resolve lemma sharing once per module run: every worker session (and
    // every throwaway validation session they spawn) gets a handle to the
    // same pool, so theory lemmas derived against one export prune the
    // searches of the others. An explicit pool in the options wins;
    // otherwise `CPCF_LEMMA_SHARING` decides whether a per-run pool exists.
    let mut options = options.clone();
    if options.shared_lemmas.is_none() && folic::default_lemma_sharing() {
        options.shared_lemmas = Some(folic::SharedLemmaPool::new());
    }
    let options = &options;
    let store = options.store.clone();
    // Warm-start the lemma pool from disk before any session exists: stored
    // theory lemmas are universally valid arithmetic facts, so the first
    // CDCL search of this run already begins with the previous run's
    // learned blocking clauses.
    if let (Some(store), Some(pool)) = (&store, &options.shared_lemmas) {
        store.warm_start_lemmas(pool);
    }

    // Dependency-cone hashes, computed once per export whenever a store is
    // attached: incremental mode reads them to skip unchanged cones, and
    // every mode writes freshly computed verdicts under them.
    let cone_hashes: Vec<u64> = if store.is_some() {
        module
            .provides
            .iter()
            .map(|provide| super::cone::export_cone_hash(program, module, provide))
            .collect()
    } else {
        Vec::new()
    };

    let mut slots: Vec<Option<(String, ExportAnalysis)>> = vec![None; export_count];
    let mut skipped: Vec<String> = Vec::new();
    // The work list: export indices that actually need analysis. In
    // incremental mode, an export whose cone hash matches a stored verdict
    // is answered from the store and never claimed by a worker.
    let mut pending: Vec<usize> = Vec::with_capacity(export_count);
    for (index, provide) in module.provides.iter().enumerate() {
        let reused = if options.incremental {
            store
                .as_ref()
                .and_then(|s| s.lookup_export(&module.name, &provide.name, cone_hashes[index]))
        } else {
            None
        };
        match reused {
            Some(analysis) => {
                slots[index] = Some((provide.name.clone(), analysis));
                skipped.push(provide.name.clone());
            }
            None => pending.push(index),
        }
    }

    // `workers: 0` means "auto" (one worker per hardware thread); whatever
    // the request resolves to is then capped by the amount of actual work.
    let worker_count = super::resolve_workers(options.workers).clamp(1, pending.len().max(1));
    let next = AtomicUsize::new(0);
    let pending = &pending[..];
    let mut worker_stats: Vec<SessionStats> = Vec::with_capacity(worker_count);

    let place = |slots: &mut Vec<Option<(String, ExportAnalysis)>>,
                 worker_stats: &mut Vec<SessionStats>,
                 outcome: WorkerOutcome| {
        for (index, name, verdict) in outcome.results {
            slots[index] = Some((name, verdict));
        }
        worker_stats.push(outcome.stats);
    };

    if worker_count <= 1 {
        let outcome = worker_loop(program, module, options, pending, &next);
        place(&mut slots, &mut worker_stats, outcome);
    } else {
        // The heap's `Rc`-based environments keep evaluator state
        // thread-local, but the program, options and shared cache are all
        // `Sync`, so scoped threads borrow them directly.
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..worker_count)
                .map(|_| scope.spawn(|| worker_loop(program, module, options, pending, &next)))
                .collect();
            for handle in handles {
                let outcome = handle.join().expect("analysis worker panicked");
                place(&mut slots, &mut worker_stats, outcome);
            }
        });
    }

    // Persist what this run added: freshly computed per-export verdicts
    // under their cone hashes (skipped slots are already on disk) and any
    // new theory lemmas, then flush so a crashed *next* process still reads
    // a clean file.
    if let Some(store) = &store {
        for &index in pending {
            if let Some((name, verdict)) = &slots[index] {
                store.record_export(&module.name, name, cone_hashes[index], verdict);
            }
        }
        if let Some(pool) = &options.shared_lemmas {
            store.record_lemmas(pool, 0);
        }
        store.flush();
    }

    let exports: Vec<(String, ExportAnalysis)> = slots
        .into_iter()
        .map(|slot| slot.expect("every export slot is filled by exactly one worker"))
        .collect();
    let mut stats = SessionStats::default();
    for per_worker in &worker_stats {
        stats.merge(per_worker);
    }
    (exports, stats, worker_stats, skipped)
}

/// What one worker produced: verdicts tagged with their export index, plus
/// the worker's accumulated session statistics.
struct WorkerOutcome {
    results: Vec<(usize, String, ExportAnalysis)>,
    stats: SessionStats,
}

/// Claims exports off the shared counter (an index into the pending work
/// list, which excludes incrementally skipped exports) until the list is
/// exhausted, reusing one prover session for all of them.
fn worker_loop(
    program: &Program,
    module: &Module,
    options: &AnalyzeOptions,
    pending: &[usize],
    next: &AtomicUsize,
) -> WorkerOutcome {
    let mut session = new_session(options);
    let mut results = Vec::new();
    let mut stats = SessionStats::default();
    loop {
        let claim = next.fetch_add(1, Ordering::SeqCst);
        let Some(&index) = pending.get(claim) else {
            break;
        };
        let provide = &module.provides[index];
        // Heaps are thread-local (Rc-based environments), so the per-thread
        // sharing counters attribute this export's snapshot/copy-on-write
        // work exactly; the delta rides along in the export's SessionStats.
        let sharing_before = crate::pmap::sharing_totals();
        let (verdict, mut export_stats, reusable) =
            analyze_export(program, module, provide, options, session);
        export_stats.add_sharing(&crate::pmap::sharing_totals().since(&sharing_before));
        session = reusable;
        stats.merge(&export_stats);
        results.push((index, provide.name.clone(), verdict));
    }
    WorkerOutcome { results, stats }
}
