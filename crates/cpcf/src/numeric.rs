//! A small slice of Racket's numeric tower: exact integers and exact
//! (Gaussian-integer) complex numbers.
//!
//! The paper's evaluation leans on the fact that Racket's `number?` accepts
//! complex numbers while `<` requires reals — that mismatch is exactly what
//! the `argmin` counterexample (§5.2) exploits. Supporting integers plus
//! exact complex numbers is enough to reproduce those counterexamples; the
//! rest of the tower (rationals, floats) is orthogonal to the technique and
//! is documented as out of scope in DESIGN.md.

use std::fmt;

/// A number: an exact integer or an exact complex with integer parts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Number {
    /// An exact integer.
    Int(i64),
    /// An exact complex number `re + im·i` with `im ≠ 0`.
    Complex(i64, i64),
}

impl Number {
    /// Builds a number, normalising a zero imaginary part to an integer.
    pub fn complex(re: i64, im: i64) -> Number {
        if im == 0 {
            Number::Int(re)
        } else {
            Number::Complex(re, im)
        }
    }

    /// The integer value, if the number is a (real) integer.
    pub fn as_int(self) -> Option<i64> {
        match self {
            Number::Int(n) => Some(n),
            Number::Complex(_, _) => None,
        }
    }

    /// True if the number is real (no imaginary part).
    pub fn is_real(self) -> bool {
        matches!(self, Number::Int(_))
    }

    /// True if the number is zero.
    pub fn is_zero(self) -> bool {
        matches!(self, Number::Int(0))
    }

    /// The real part.
    pub fn re(self) -> i64 {
        match self {
            Number::Int(n) => n,
            Number::Complex(re, _) => re,
        }
    }

    /// The imaginary part.
    pub fn im(self) -> i64 {
        match self {
            Number::Int(_) => 0,
            Number::Complex(_, im) => im,
        }
    }

    /// Addition.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Number) -> Number {
        Number::complex(
            self.re().wrapping_add(other.re()),
            self.im().wrapping_add(other.im()),
        )
    }

    /// Subtraction.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Number) -> Number {
        Number::complex(
            self.re().wrapping_sub(other.re()),
            self.im().wrapping_sub(other.im()),
        )
    }

    /// Multiplication `(a+bi)(c+di) = (ac−bd) + (ad+bc)i`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Number) -> Number {
        let (a, b, c, d) = (self.re(), self.im(), other.re(), other.im());
        Number::complex(
            a.wrapping_mul(c).wrapping_sub(b.wrapping_mul(d)),
            a.wrapping_mul(d).wrapping_add(b.wrapping_mul(c)),
        )
    }

    /// Integer (truncated) division; defined only for real operands with a
    /// non-zero divisor. Returns `None` otherwise; the caller turns that
    /// into blame.
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, other: Number) -> Option<Number> {
        match (self, other) {
            (Number::Int(_), Number::Int(0)) => None,
            (Number::Int(a), Number::Int(b)) => Some(Number::Int(a.wrapping_div(b))),
            _ => None,
        }
    }

    /// Remainder; same domain restrictions as [`Number::div`].
    #[allow(clippy::should_implement_trait)]
    pub fn rem(self, other: Number) -> Option<Number> {
        match (self, other) {
            (Number::Int(_), Number::Int(0)) => None,
            (Number::Int(a), Number::Int(b)) => Some(Number::Int(a.wrapping_rem(b))),
            _ => None,
        }
    }

    /// Numeric equality (defined for all numbers).
    pub fn num_eq(self, other: Number) -> bool {
        self.re() == other.re() && self.im() == other.im()
    }

    /// Ordering comparison; `None` when either operand is not real — Racket
    /// raises a contract error for `<` on complex numbers, and so do we.
    pub fn compare(self, other: Number) -> Option<std::cmp::Ordering> {
        match (self, other) {
            (Number::Int(a), Number::Int(b)) => Some(a.cmp(&b)),
            _ => None,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::Int(n) => write!(f, "{n}"),
            Number::Complex(re, im) => {
                if *im >= 0 {
                    write!(f, "{re}+{im}i")
                } else {
                    write!(f, "{re}{im}i")
                }
            }
        }
    }
}

impl From<i64> for Number {
    fn from(n: i64) -> Self {
        Number::Int(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_imaginary_normalises_to_int() {
        assert_eq!(Number::complex(5, 0), Number::Int(5));
        assert!(Number::complex(5, 0).is_real());
        assert!(!Number::complex(5, 1).is_real());
    }

    #[test]
    fn complex_arithmetic() {
        let i = Number::complex(0, 1);
        // i * i = -1
        assert_eq!(i.mul(i), Number::Int(-1));
        // (1+i) + (2-i) = 3
        assert_eq!(
            Number::complex(1, 1).add(Number::complex(2, -1)),
            Number::Int(3)
        );
        assert_eq!(
            Number::complex(1, 2).sub(Number::Int(1)),
            Number::complex(0, 2)
        );
    }

    #[test]
    fn division_is_partial() {
        assert_eq!(Number::Int(7).div(Number::Int(2)), Some(Number::Int(3)));
        assert_eq!(Number::Int(7).div(Number::Int(0)), None);
        assert_eq!(Number::complex(1, 1).div(Number::Int(2)), None);
        assert_eq!(Number::Int(7).rem(Number::Int(2)), Some(Number::Int(1)));
        assert_eq!(Number::Int(7).rem(Number::Int(0)), None);
    }

    #[test]
    fn comparison_requires_reals() {
        assert_eq!(
            Number::Int(1).compare(Number::Int(2)),
            Some(std::cmp::Ordering::Less)
        );
        assert_eq!(Number::complex(0, 1).compare(Number::Int(0)), None);
    }

    #[test]
    fn equality_covers_complex() {
        assert!(Number::complex(0, 1).num_eq(Number::complex(0, 1)));
        assert!(!Number::complex(0, 1).num_eq(Number::Int(0)));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Number::Int(-3).to_string(), "-3");
        assert_eq!(Number::complex(0, 1).to_string(), "0+1i");
        assert_eq!(Number::complex(2, -5).to_string(), "2-5i");
    }
}
