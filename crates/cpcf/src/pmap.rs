//! A persistent, structurally-shared ordered map with O(1) snapshots.
//!
//! [`PMap`] is a path-copying AVL tree whose nodes live behind [`Arc`]s.
//! Cloning a map copies one pointer and a length — nothing else — so two
//! clones share every node until one of them writes. A write walks the
//! search path and copies **only the nodes that are still shared**
//! ([`Arc::make_mut`]); a map that has not been snapshotted since its last
//! write mutates entirely in place, so the common evaluator pattern
//! (mutate, mutate, …, branch-snapshot, mutate both sides) costs O(log n)
//! node copies per write *after* a snapshot and zero before.
//!
//! This is the heap-side half of the copy-on-write snapshot design (the
//! other half is the journal's chunk chain in [`crate::heap`]): the symbolic
//! evaluator forks the entire machine state at every branch split, so
//! snapshot cost — not query cost — dominates. The structure is hand-rolled
//! rather than imported (`im`, `rpds`) because the build environment is
//! offline.
//!
//! Iteration is in key order, matching the `BTreeMap`s this structure
//! replaced; [`Heap::iter`](crate::heap::Heap::iter) and the solver
//! translation depend on that order being deterministic.
//!
//! The module also hosts the thread-local **sharing counters**
//! ([`SharingStats`]): snapshots taken, nodes copied by shared-path writes,
//! and journal bytes shared instead of deep-copied. Heaps are thread-local
//! (their environments are `Rc`-based), so plain `Cell` counters are exact;
//! the analysis scheduler reads deltas around each export run and reports
//! them through `SessionStats` up to `table1 --json`.

use std::cell::Cell;
use std::fmt;
use std::sync::Arc;

/// One tree node. `Clone` is only invoked by [`Arc::make_mut`] when the node
/// is shared with another snapshot — the structural copy that path-copying
/// pays instead of the old whole-map deep clone.
#[derive(Debug, Clone)]
struct Node<K, V> {
    key: K,
    value: V,
    height: u8,
    left: Link<K, V>,
    right: Link<K, V>,
}

type Link<K, V> = Option<Arc<Node<K, V>>>;

impl<K, V> Node<K, V> {
    fn leaf(key: K, value: V) -> Self {
        Node {
            key,
            value,
            height: 1,
            left: None,
            right: None,
        }
    }
}

fn height<K, V>(link: &Link<K, V>) -> u8 {
    link.as_ref().map_or(0, |n| n.height)
}

/// Copy-on-write access to a node: in place when this snapshot is the sole
/// owner, a counted structural copy otherwise.
fn cow<K: Clone, V: Clone>(arc: &mut Arc<Node<K, V>>) -> &mut Node<K, V> {
    if Arc::strong_count(arc) > 1 {
        note_nodes_copied(1);
    }
    Arc::make_mut(arc)
}

/// A persistent ordered map: O(1) clone, O(log n) reads, O(log n) writes
/// that copy only snapshot-shared nodes.
pub struct PMap<K, V> {
    root: Link<K, V>,
    len: usize,
}

impl<K, V> Default for PMap<K, V> {
    fn default() -> Self {
        PMap { root: None, len: 0 }
    }
}

impl<K, V> Clone for PMap<K, V> {
    fn clone(&self) -> Self {
        PMap {
            root: self.root.clone(),
            len: self.len,
        }
    }
}

impl<K: Ord + Clone, V: Clone> PMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        PMap::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no entry is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Looks up a key.
    pub fn get(&self, key: &K) -> Option<&V> {
        let mut link = &self.root;
        while let Some(node) = link {
            match key.cmp(&node.key) {
                std::cmp::Ordering::Equal => return Some(&node.value),
                std::cmp::Ordering::Less => link = &node.left,
                std::cmp::Ordering::Greater => link = &node.right,
            }
        }
        None
    }

    /// True if the key is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// A mutable reference to the value for `key`, path-copying any node
    /// still shared with another snapshot. Other snapshots are unaffected.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        // Immutable existence probe first: a miss must not copy-on-write
        // (and count) shared nodes along a search path it will not mutate.
        if !self.contains_key(key) {
            return None;
        }
        let mut link = &mut self.root;
        loop {
            match link {
                None => return None,
                Some(arc) => {
                    // The comparison borrows immutably first so the
                    // copy-on-write only happens on paths that exist.
                    let ordering = key.cmp(&arc.key);
                    let node = cow(arc);
                    match ordering {
                        std::cmp::Ordering::Equal => return Some(&mut node.value),
                        std::cmp::Ordering::Less => link = &mut node.left,
                        std::cmp::Ordering::Greater => link = &mut node.right,
                    }
                }
            }
        }
    }

    /// Inserts a key/value pair, returning the previous value if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let previous = insert_rec(&mut self.root, key, value);
        if previous.is_none() {
            self.len += 1;
        }
        previous
    }

    /// Removes a key, returning its value if it was present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        // Same miss guard as `get_mut`: only a removal that will actually
        // happen is allowed to path-copy shared nodes.
        if !self.contains_key(key) {
            return None;
        }
        let removed = remove_rec(&mut self.root, key);
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    /// In-order (sorted by key) iteration.
    pub fn iter(&self) -> Iter<'_, K, V> {
        let mut iter = Iter { stack: Vec::new() };
        iter.push_left(&self.root);
        iter
    }

    /// The keys, in order.
    pub fn keys(&self) -> impl Iterator<Item = &K> + '_ {
        self.iter().map(|(k, _)| k)
    }
}

fn update_height<K, V>(node: &mut Node<K, V>) {
    node.height = 1 + height(&node.left).max(height(&node.right));
}

/// Left subtree height minus right subtree height.
fn balance_factor<K, V>(node: &Node<K, V>) -> i16 {
    height(&node.left) as i16 - height(&node.right) as i16
}

fn rotate_right<K: Clone, V: Clone>(link: &mut Link<K, V>) {
    let mut y_arc = link.take().expect("rotate_right on empty link");
    let mut x_arc = {
        let y = cow(&mut y_arc);
        y.left.take().expect("rotate_right without a left child")
    };
    {
        let x = cow(&mut x_arc);
        let y = cow(&mut y_arc);
        y.left = x.right.take();
        update_height(y);
        x.right = Some(y_arc);
        update_height(x);
    }
    *link = Some(x_arc);
}

fn rotate_left<K: Clone, V: Clone>(link: &mut Link<K, V>) {
    let mut x_arc = link.take().expect("rotate_left on empty link");
    let mut y_arc = {
        let x = cow(&mut x_arc);
        x.right.take().expect("rotate_left without a right child")
    };
    {
        let y = cow(&mut y_arc);
        let x = cow(&mut x_arc);
        x.right = y.left.take();
        update_height(x);
        y.left = Some(x_arc);
        update_height(y);
    }
    *link = Some(y_arc);
}

/// Restores the AVL invariant at `link` after one insertion or removal in a
/// subtree (both children are already balanced, heights may be stale).
fn rebalance<K: Clone, V: Clone>(link: &mut Link<K, V>) {
    let Some(arc) = link else { return };
    let factor = {
        let node = cow(arc);
        update_height(node);
        balance_factor(node)
    };
    if factor > 1 {
        let node = cow(link.as_mut().expect("checked above"));
        if balance_factor(node.left.as_ref().expect("left-heavy")) < 0 {
            rotate_left(&mut node.left);
        }
        rotate_right(link);
    } else if factor < -1 {
        let node = cow(link.as_mut().expect("checked above"));
        if balance_factor(node.right.as_ref().expect("right-heavy")) > 0 {
            rotate_right(&mut node.right);
        }
        rotate_left(link);
    }
}

fn insert_rec<K: Ord + Clone, V: Clone>(link: &mut Link<K, V>, key: K, value: V) -> Option<V> {
    match link {
        None => {
            *link = Some(Arc::new(Node::leaf(key, value)));
            None
        }
        Some(arc) => {
            let ordering = key.cmp(&arc.key);
            let node = cow(arc);
            let previous = match ordering {
                std::cmp::Ordering::Equal => {
                    return Some(std::mem::replace(&mut node.value, value));
                }
                std::cmp::Ordering::Less => insert_rec(&mut node.left, key, value),
                std::cmp::Ordering::Greater => insert_rec(&mut node.right, key, value),
            };
            rebalance(link);
            previous
        }
    }
}

/// Removes and returns the minimum entry of a non-empty subtree.
fn take_min<K: Ord + Clone, V: Clone>(link: &mut Link<K, V>) -> (K, V) {
    let arc = link.as_mut().expect("take_min on empty subtree");
    if arc.left.is_some() {
        let node = cow(arc);
        let min = take_min(&mut node.left);
        rebalance(link);
        min
    } else {
        let node = cow(arc);
        let right = node.right.take();
        let key = node.key.clone();
        let value = node.value.clone();
        *link = right;
        (key, value)
    }
}

fn remove_rec<K: Ord + Clone, V: Clone>(link: &mut Link<K, V>, key: &K) -> Option<V> {
    let arc = link.as_mut()?;
    let ordering = key.cmp(&arc.key);
    let removed = match ordering {
        std::cmp::Ordering::Less => remove_rec(&mut cow(arc).left, key),
        std::cmp::Ordering::Greater => remove_rec(&mut cow(arc).right, key),
        std::cmp::Ordering::Equal => {
            let node = cow(arc);
            let value = node.value.clone();
            match (node.left.take(), node.right.take()) {
                (None, None) => *link = None,
                (Some(child), None) | (None, Some(child)) => *link = Some(child),
                (left, mut right) => {
                    let (successor_key, successor_value) = take_min(&mut right);
                    let node = cow(link.as_mut().expect("two-child node"));
                    node.left = left;
                    node.right = right;
                    node.key = successor_key;
                    node.value = successor_value;
                }
            }
            Some(value)
        }
    };
    if removed.is_some() {
        rebalance(link);
    }
    removed
}

/// In-order iterator over a [`PMap`].
pub struct Iter<'a, K, V> {
    stack: Vec<&'a Node<K, V>>,
}

impl<'a, K, V> Iter<'a, K, V> {
    fn push_left(&mut self, mut link: &'a Link<K, V>) {
        while let Some(node) = link {
            self.stack.push(node);
            link = &node.left;
        }
    }
}

impl<'a, K, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        let node = self.stack.pop()?;
        self.push_left(&node.right);
        Some((&node.key, &node.value))
    }
}

impl<K: Ord + Clone + fmt::Debug, V: Clone + fmt::Debug> fmt::Debug for PMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<K: Ord + Clone, V: Clone + PartialEq> PartialEq for PMap<K, V> {
    fn eq(&self, other: &Self) -> bool {
        if self.len != other.len {
            return false;
        }
        // Snapshots that share their root are equal without any traversal —
        // the common case when comparing a heap to its own fresh snapshot.
        match (&self.root, &other.root) {
            (Some(a), Some(b)) if Arc::ptr_eq(a, b) => return true,
            _ => {}
        }
        self.iter().eq(other.iter())
    }
}

// ---------------------------------------------------------------------------
// Sharing counters
// ---------------------------------------------------------------------------

thread_local! {
    static SNAPSHOTS: Cell<u64> = const { Cell::new(0) };
    static NODES_COPIED: Cell<u64> = const { Cell::new(0) };
    static JOURNAL_BYTES_SHARED: Cell<u64> = const { Cell::new(0) };
}

/// Thread-local totals of the copy-on-write machinery's work: how often heap
/// state was snapshotted, how many map nodes shared-path writes had to copy,
/// and how many journal bytes snapshots shared instead of deep-copying.
/// Heaps never cross threads, so per-thread counters are exact; consumers
/// subtract two [`sharing_totals`] readings to attribute work to a region.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharingStats {
    /// Heap snapshots taken ([`Heap::clone`](crate::heap::Heap::clone)).
    pub snapshots: u64,
    /// Map nodes structurally copied because a write hit a node still
    /// shared with another snapshot.
    pub nodes_copied: u64,
    /// Journal bytes a snapshot shared by bumping a reference count where
    /// the old representation memcpy'd the whole journal vector.
    pub journal_bytes_shared: u64,
}

impl SharingStats {
    /// The counter-wise difference `self - earlier` (saturating, so a
    /// mismatched pair of readings cannot underflow).
    pub fn since(&self, earlier: &SharingStats) -> SharingStats {
        SharingStats {
            snapshots: self.snapshots.saturating_sub(earlier.snapshots),
            nodes_copied: self.nodes_copied.saturating_sub(earlier.nodes_copied),
            journal_bytes_shared: self
                .journal_bytes_shared
                .saturating_sub(earlier.journal_bytes_shared),
        }
    }
}

/// Reads this thread's sharing counters.
pub fn sharing_totals() -> SharingStats {
    SharingStats {
        snapshots: SNAPSHOTS.with(Cell::get),
        nodes_copied: NODES_COPIED.with(Cell::get),
        journal_bytes_shared: JOURNAL_BYTES_SHARED.with(Cell::get),
    }
}

pub(crate) fn note_nodes_copied(count: u64) {
    NODES_COPIED.with(|cell| cell.set(cell.get() + count));
}

pub(crate) fn note_snapshot(journal_bytes: u64) {
    SNAPSHOTS.with(|cell| cell.set(cell.get() + 1));
    JOURNAL_BYTES_SHARED.with(|cell| cell.set(cell.get() + journal_bytes));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_pairs(pairs: &[(u32, &'static str)]) -> PMap<u32, &'static str> {
        let mut map = PMap::new();
        for &(k, v) in pairs {
            map.insert(k, v);
        }
        map
    }

    #[test]
    fn insert_get_and_replace() {
        let mut map = PMap::new();
        assert_eq!(map.insert(3u32, "three"), None);
        assert_eq!(map.insert(1, "one"), None);
        assert_eq!(map.insert(2, "two"), None);
        assert_eq!(map.len(), 3);
        assert_eq!(map.get(&2), Some(&"two"));
        assert_eq!(map.get(&4), None);
        assert_eq!(map.insert(2, "TWO"), Some("two"));
        assert_eq!(map.len(), 3, "replacement does not grow the map");
        assert_eq!(map.get(&2), Some(&"TWO"));
    }

    #[test]
    fn iteration_is_in_key_order() {
        // Sequential, reversed and shuffled insertions all iterate sorted.
        let orders: [&[u32]; 3] = [
            &[0, 1, 2, 3, 4, 5, 6, 7],
            &[7, 6, 5, 4, 3, 2, 1, 0],
            &[3, 7, 1, 0, 5, 2, 6, 4],
        ];
        for order in orders {
            let mut map = PMap::new();
            for &k in order {
                map.insert(k, k * 10);
            }
            let keys: Vec<u32> = map.iter().map(|(k, _)| *k).collect();
            assert_eq!(keys, vec![0, 1, 2, 3, 4, 5, 6, 7], "order {order:?}");
        }
    }

    #[test]
    fn remove_returns_values_and_keeps_order() {
        let mut map = from_pairs(&[(5, "e"), (3, "c"), (8, "h"), (1, "a"), (4, "d"), (7, "g")]);
        assert_eq!(map.remove(&9), None);
        assert_eq!(map.remove(&5), Some("e"), "two-child removal");
        assert_eq!(map.remove(&1), Some("a"), "leaf removal");
        assert_eq!(map.remove(&8), Some("h"), "one-child removal");
        assert_eq!(map.len(), 3);
        let keys: Vec<u32> = map.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![3, 4, 7]);
        assert_eq!(map.remove(&5), None, "already gone");
    }

    #[test]
    fn balanced_under_sequential_insertion() {
        // The heap allocates sequential `Loc`s, the worst case for an
        // unbalanced tree; AVL keeps the height logarithmic.
        let mut map = PMap::new();
        for k in 0u32..1024 {
            map.insert(k, k);
        }
        fn depth<K, V>(link: &Link<K, V>) -> usize {
            link.as_ref()
                .map_or(0, |n| 1 + depth(&n.left).max(depth(&n.right)))
        }
        let d = depth(&map.root);
        assert!(d <= 15, "height {d} for 1024 sequential keys");
        assert_eq!(map.len(), 1024);
    }

    #[test]
    fn snapshots_are_isolated_from_later_writes() {
        let mut map = from_pairs(&[(1, "a"), (2, "b"), (3, "c")]);
        let snapshot = map.clone();
        map.insert(2, "B");
        map.insert(4, "d");
        map.remove(&1);
        // The writer sees its writes…
        assert_eq!(map.get(&2), Some(&"B"));
        assert_eq!(map.get(&4), Some(&"d"));
        assert_eq!(map.get(&1), None);
        // …and the snapshot still sees the original state.
        assert_eq!(snapshot.get(&2), Some(&"b"));
        assert_eq!(snapshot.get(&4), None);
        assert_eq!(snapshot.get(&1), Some(&"a"));
        assert_eq!(snapshot.len(), 3);
    }

    #[test]
    fn get_mut_copies_shared_paths_only() {
        let mut map = PMap::new();
        for k in 0u32..64 {
            map.insert(k, k);
        }
        let snapshot = map.clone();
        let before = sharing_totals().nodes_copied;
        *map.get_mut(&17).expect("present") = 1700;
        let copied = sharing_totals().nodes_copied - before;
        assert!(copied >= 1, "a shared write must copy at least the target");
        assert!(
            copied <= 8,
            "a shared write copies only the search path, not the tree: {copied}"
        );
        assert_eq!(snapshot.get(&17), Some(&17), "the snapshot is untouched");
        assert_eq!(map.get(&17), Some(&1700));
        // A second write to the same (now exclusively owned) path copies
        // nothing further.
        let before = sharing_totals().nodes_copied;
        *map.get_mut(&17).expect("present") = 1701;
        assert_eq!(
            sharing_totals().nodes_copied - before,
            0,
            "unshared writes mutate in place"
        );
    }

    #[test]
    fn misses_do_not_copy_shared_nodes() {
        let mut map = PMap::new();
        for k in 0u32..32 {
            map.insert(k, k);
        }
        let snapshot = map.clone();
        let before = sharing_totals().nodes_copied;
        assert_eq!(map.get_mut(&999), None);
        assert_eq!(map.remove(&999), None);
        assert_eq!(
            sharing_totals().nodes_copied - before,
            0,
            "a miss must not copy-on-write the search path"
        );
        drop(snapshot);
    }

    #[test]
    fn equality_compares_content_not_structure() {
        let a = from_pairs(&[(1, "a"), (2, "b"), (3, "c")]);
        let b = from_pairs(&[(3, "c"), (1, "a"), (2, "b")]);
        assert_eq!(a, b, "insertion order must not affect equality");
        let mut c = a.clone();
        assert_eq!(a, c, "snapshots compare equal (shared root fast path)");
        c.insert(2, "B");
        assert_ne!(a, c);
    }

    #[test]
    fn randomized_against_btreemap_oracle() {
        use std::collections::BTreeMap;
        // A deterministic LCG keeps the test self-contained.
        let mut state = 0x2545_F491_4F6C_DD1D_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let mut map: PMap<u32, u32> = PMap::new();
        let mut oracle: BTreeMap<u32, u32> = BTreeMap::new();
        let mut snapshots: Vec<(PMap<u32, u32>, BTreeMap<u32, u32>)> = Vec::new();
        for step in 0..4000 {
            let key = next() % 256;
            match next() % 4 {
                0 => {
                    assert_eq!(map.remove(&key), oracle.remove(&key), "step {step}");
                }
                1 if snapshots.len() < 8 => {
                    snapshots.push((map.clone(), oracle.clone()));
                }
                _ => {
                    let value = next();
                    assert_eq!(map.insert(key, value), oracle.insert(key, value));
                }
            }
            assert_eq!(map.len(), oracle.len(), "step {step}");
        }
        assert!(map.iter().map(|(k, v)| (*k, *v)).eq(oracle.into_iter()));
        for (snapshot, oracle) in snapshots {
            assert!(
                snapshot
                    .iter()
                    .map(|(k, v)| (*k, *v))
                    .eq(oracle.into_iter()),
                "a snapshot diverged from its oracle"
            );
        }
    }
}
